//! Command-line demo driver — the library stand-in for the paper's demo
//! UI: load a coordination-rules file, run updates and queries at chosen
//! nodes, inspect databases and the super-peer's statistical report, and
//! (with `--data-dir`) persist node state across invocations.
//!
//! ```text
//! codb-demo [--data-dir DIR] [--codec json|binary] [--sync POLICY] [--trace FILE]
//!           CONFIG_FILE COMMAND...
//! codb-demo trace dump FILE
//! codb-demo trace inspect FILE
//!
//! Options:
//!   --data-dir DIR                durable stores under DIR/<node>; nodes
//!                                 with saved state recover it on startup
//!   --codec json|binary           on-disk payload encoding for new store
//!                                 files (default binary); existing stores
//!                                 recover either format and convert to the
//!                                 chosen codec at their next save
//!   --sync POLICY                 WAL fsync policy (default always):
//!                                 always | never | everyN:N |
//!                                 group[:RECORDS[,BATCH]] — group shares
//!                                 one fsync scheduler across every node's
//!                                 store (see docs/DURABILITY.md)
//!   --trace FILE                  record a binary flight-recorder trace of
//!                                 the whole run (net, protocol and storage
//!                                 events; each command becomes a phase);
//!                                 read it back with `trace dump`/`inspect`
//!
//! Commands (executed in order):
//!   update NODE                   start a global update at NODE
//!   scoped-update NODE REL[,REL]  query-dependent update for relations
//!   query NODE 'ans(X) :- r(X).'  query-time (network) answering
//!   local-query NODE 'QUERY'      answer from the local database only
//!   show NODE                     print NODE's local database
//!   save NODE                     checkpoint NODE's store (snapshot +
//!                                 WAL compaction; needs --data-dir)
//!   recover NODE                  crash NODE and restore it from disk
//!                                 (needs --data-dir)
//!   stats                         super-peer statistics report (JSON)
//!
//! Trace mode (first argument `trace`; no CONFIG_FILE):
//!   trace dump FILE               print every recorded event
//!   trace inspect FILE            per-phase time breakdown, per-peer
//!                                 traffic and fsync histogram
//! ```
//!
//! Example:
//! `cargo run --bin codb-demo -- examples/university.codb update portal show portal`

use codb::prelude::*;
use codb::relational::pretty::render_relation;
use codb::trace::TraceSink as _;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: codb-demo [--data-dir DIR] [--codec json|binary] \
    [--sync always|never|everyN:N|group[:RECORDS[,BATCH]]] [--trace FILE] CONFIG_FILE COMMAND...\n\
    \x20      codb-demo trace dump FILE | trace inspect FILE\n\
    commands: update NODE | scoped-update NODE REL[,REL] | query NODE 'Q' |\n\
    local-query NODE 'Q' | show NODE | save NODE | recover NODE | stats";

fn fail(msg: &str) -> ExitCode {
    eprintln!("codb-demo: {msg}");
    ExitCode::FAILURE
}

/// `codb-demo trace dump|inspect FILE` — offline readers for a recorded
/// flight-recorder file; no CONFIG_FILE, no network.
fn trace_mode(args: &[String]) -> ExitCode {
    let (Some(sub), Some(path)) = (args.first(), args.get(1)) else {
        return fail(&format!("trace needs a subcommand and FILE\n{USAGE}"));
    };
    if args.len() > 2 {
        return fail(&format!("trace {sub} takes exactly one FILE\n{USAGE}"));
    }
    let trace = match codb::trace::read_trace_file(path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read trace {path}: {e}")),
    };
    match sub.as_str() {
        "dump" => print!("{}", codb::trace::dump(&trace)),
        "inspect" => print!("{}", codb::trace::Summary::from_trace(&trace).render()),
        other => return fail(&format!("unknown trace subcommand {other:?} (dump|inspect)")),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // Offline trace readers bypass the config/network machinery entirely.
    if args.first().map(String::as_str) == Some("trace") {
        return trace_mode(&args[1..]);
    }

    // Options first (any order, before the config file).
    let mut data_dir: Option<PathBuf> = None;
    let mut codec = Codec::default();
    let mut sync = SyncPolicy::Always;
    let mut trace_path: Option<PathBuf> = None;
    while let Some(first) = args.first() {
        match first.as_str() {
            "--data-dir" => {
                args.remove(0);
                if args.is_empty() {
                    return fail(&format!("--data-dir needs a DIR argument\n{USAGE}"));
                }
                data_dir = Some(PathBuf::from(args.remove(0)));
            }
            "--codec" => {
                args.remove(0);
                if args.is_empty() {
                    return fail(&format!("--codec needs json or binary\n{USAGE}"));
                }
                codec = match args.remove(0).parse() {
                    Ok(c) => c,
                    Err(e) => return fail(&format!("{e}\n{USAGE}")),
                };
            }
            "--sync" => {
                args.remove(0);
                if args.is_empty() {
                    return fail(&format!("--sync needs a policy argument\n{USAGE}"));
                }
                sync = match args.remove(0).parse() {
                    Ok(p) => p,
                    Err(e) => return fail(&format!("{e}\n{USAGE}")),
                };
            }
            "--trace" => {
                args.remove(0);
                if args.is_empty() {
                    return fail(&format!("--trace needs a FILE argument\n{USAGE}"));
                }
                trace_path = Some(PathBuf::from(args.remove(0)));
            }
            flag if flag.starts_with("--") => {
                return fail(&format!("unknown option {flag:?}\n{USAGE}"));
            }
            _ => break,
        }
    }
    let Some((config_path, rest)) = args.split_first() else {
        return fail(USAGE);
    };
    let text = match std::fs::read_to_string(config_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {config_path}: {e}")),
    };
    let config = match NetworkConfig::parse(&text) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    let mut net = match CoDbNetwork::build_with_superpeer(config, SimConfig::default()) {
        Ok(n) => n,
        Err(e) => return fail(&e.to_string()),
    };
    // Attach the flight recorder before persistence opens so the stores
    // inherit it; each command below becomes a named phase in the trace.
    let (tracer, recorder) = match &trace_path {
        Some(path) => match Tracer::to_file(path) {
            Ok((t, r)) => (t, Some(r)),
            Err(e) => return fail(&format!("cannot create trace {}: {e}", path.display())),
        },
        None => (Tracer::disabled(), None),
    };
    net.attach_tracer(&tracer);
    if let Some(dir) = &data_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            return fail(&format!("cannot create data dir {}: {e}", dir.display()));
        }
        match net.open_persistence_all(dir, sync, codec) {
            Ok(recovered) => {
                for name in recovered {
                    eprintln!("codb-demo: recovered {name} from {}", dir.display());
                }
            }
            Err(e) => return fail(&format!("persistence setup failed: {e}")),
        }
    }

    let node_arg = |net: &CoDbNetwork, name: &str| -> Option<codb::core::NodeId> {
        let id = net.node_id(name);
        if id.is_none() {
            eprintln!("codb-demo: unknown node {name:?}");
        }
        id
    };

    let mut it = rest.iter();
    while let Some(cmd) = it.next() {
        // Every command is a trace phase; a command that fails hard exits
        // before its `phase_end`, which `trace inspect` reports as open.
        tracer.phase_begin(cmd);
        match cmd.as_str() {
            "update" => {
                let Some(name) = it.next() else { return fail("update needs NODE") };
                let Some(id) = node_arg(&net, name) else { return ExitCode::FAILURE };
                let o = net.run_update(id);
                println!(
                    "update {} at {name}: {} tuples in {} ({} msgs, {} bytes, longest path {})",
                    o.update,
                    o.summary.tuples_added,
                    o.duration,
                    o.messages,
                    o.bytes,
                    o.summary.longest_path
                );
            }
            "scoped-update" => {
                let (Some(name), Some(rels)) = (it.next(), it.next()) else {
                    return fail("scoped-update needs NODE REL[,REL]");
                };
                let Some(id) = node_arg(&net, name) else { return ExitCode::FAILURE };
                let relations: Vec<String> =
                    rels.split(',').map(str::trim).map(str::to_owned).collect();
                let o = net.run_scoped_update(id, relations);
                println!(
                    "scoped update {} at {name}: {} tuples in {} ({} msgs)",
                    o.update, o.summary.tuples_added, o.duration, o.messages
                );
            }
            "query" | "local-query" => {
                let fetch = cmd == "query";
                let (Some(name), Some(q)) = (it.next(), it.next()) else {
                    return fail("query needs NODE 'QUERY'");
                };
                let Some(id) = node_arg(&net, name) else { return ExitCode::FAILURE };
                match net.run_query_text(id, q, fetch) {
                    Ok(out) => {
                        println!(
                            "{} answers in {} ({} msgs):",
                            out.result.answers.len(),
                            out.duration,
                            out.messages
                        );
                        for t in &out.result.answers {
                            println!("  {t}");
                        }
                    }
                    Err(e) => return fail(&format!("bad query: {e}")),
                }
            }
            "show" => {
                let Some(name) = it.next() else { return fail("show needs NODE") };
                let Some(id) = node_arg(&net, name) else { return ExitCode::FAILURE };
                println!("== {name} ==");
                for rel in net.node(id).ldb().relations() {
                    print!("{}", render_relation(rel));
                }
            }
            "save" => {
                let Some(name) = it.next() else { return fail("save needs NODE") };
                if data_dir.is_none() {
                    return fail("save needs --data-dir");
                }
                let Some(id) = node_arg(&net, name) else { return ExitCode::FAILURE };
                match net.checkpoint_node(id) {
                    Ok(true) => {
                        let node = net.node(id);
                        let generation =
                            node.store().map(codb::store::Store::generation).unwrap_or(0);
                        println!(
                            "saved {name}: generation {generation}, {} tuples",
                            node.ldb().tuple_count()
                        );
                    }
                    Ok(false) => return fail(&format!("{name} has no store attached")),
                    Err(e) => return fail(&format!("save {name} failed: {e}")),
                }
            }
            "recover" => {
                let Some(name) = it.next() else { return fail("recover needs NODE") };
                let Some(dir) = &data_dir else {
                    return fail("recover needs --data-dir");
                };
                let Some(id) = node_arg(&net, name) else { return ExitCode::FAILURE };
                net.crash_node(id);
                let node_dir = CoDbNetwork::node_data_dir(dir, name);
                match net.restart_node_from_disk(id, &node_dir, sync, codec) {
                    Ok(stats) => println!(
                        "recovered {name} from {}: {} tuples (generation {}, {} WAL records{})",
                        node_dir.display(),
                        net.node(id).ldb().tuple_count(),
                        stats.generation,
                        stats.wal_records_replayed,
                        if stats.torn_tail { ", torn tail truncated" } else { "" }
                    ),
                    Err(e) => return fail(&format!("recover {name} failed: {e}")),
                }
            }
            "stats" => {
                let report = net.collect_stats();
                match serde_json::to_string_pretty(&report) {
                    Ok(js) => println!("{js}"),
                    Err(e) => return fail(&format!("stats serialisation: {e}")),
                }
            }
            other => return fail(&format!("unknown command {other:?}\n{USAGE}")),
        }
        tracer.phase_end(cmd);
    }
    if let Some(rec) = &recorder {
        let flushed = rec.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).flush();
        if let Err(e) = flushed {
            return fail(&format!("trace flush failed: {e}"));
        }
        if let Some(path) = &trace_path {
            eprintln!("codb-demo: wrote trace to {}", path.display());
        }
    }
    ExitCode::SUCCESS
}
