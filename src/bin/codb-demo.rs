//! Command-line demo driver — the library stand-in for the paper's demo
//! UI: load a coordination-rules file, run updates and queries at chosen
//! nodes, inspect databases and the super-peer's statistical report.
//!
//! ```text
//! codb-demo CONFIG_FILE COMMAND...
//!
//! Commands (executed in order):
//!   update NODE                   start a global update at NODE
//!   scoped-update NODE REL[,REL]  query-dependent update for relations
//!   query NODE 'ans(X) :- r(X).'  query-time (network) answering
//!   local-query NODE 'QUERY'      answer from the local database only
//!   show NODE                     print NODE's local database
//!   stats                         super-peer statistics report (JSON)
//! ```
//!
//! Example:
//! `cargo run --bin codb-demo -- examples/university.codb update portal show portal`

use codb::prelude::*;
use codb::relational::pretty::render_relation;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("codb-demo: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((config_path, rest)) = args.split_first() else {
        return fail("usage: codb-demo CONFIG_FILE COMMAND...");
    };
    let text = match std::fs::read_to_string(config_path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {config_path}: {e}")),
    };
    let config = match NetworkConfig::parse(&text) {
        Ok(c) => c,
        Err(e) => return fail(&e.to_string()),
    };
    let mut net = match CoDbNetwork::build_with_superpeer(config, SimConfig::default()) {
        Ok(n) => n,
        Err(e) => return fail(&e.to_string()),
    };

    let node_arg = |net: &CoDbNetwork, name: &str| -> Option<codb::core::NodeId> {
        let id = net.node_id(name);
        if id.is_none() {
            eprintln!("codb-demo: unknown node {name:?}");
        }
        id
    };

    let mut it = rest.iter();
    while let Some(cmd) = it.next() {
        match cmd.as_str() {
            "update" => {
                let Some(name) = it.next() else { return fail("update needs NODE") };
                let Some(id) = node_arg(&net, name) else { return ExitCode::FAILURE };
                let o = net.run_update(id);
                println!(
                    "update {} at {name}: {} tuples in {} ({} msgs, {} bytes, longest path {})",
                    o.update,
                    o.summary.tuples_added,
                    o.duration,
                    o.messages,
                    o.bytes,
                    o.summary.longest_path
                );
            }
            "scoped-update" => {
                let (Some(name), Some(rels)) = (it.next(), it.next()) else {
                    return fail("scoped-update needs NODE REL[,REL]");
                };
                let Some(id) = node_arg(&net, name) else { return ExitCode::FAILURE };
                let relations: Vec<String> =
                    rels.split(',').map(str::trim).map(str::to_owned).collect();
                let o = net.run_scoped_update(id, relations);
                println!(
                    "scoped update {} at {name}: {} tuples in {} ({} msgs)",
                    o.update, o.summary.tuples_added, o.duration, o.messages
                );
            }
            "query" | "local-query" => {
                let fetch = cmd == "query";
                let (Some(name), Some(q)) = (it.next(), it.next()) else {
                    return fail("query needs NODE 'QUERY'");
                };
                let Some(id) = node_arg(&net, name) else { return ExitCode::FAILURE };
                match net.run_query_text(id, q, fetch) {
                    Ok(out) => {
                        println!(
                            "{} answers in {} ({} msgs):",
                            out.result.answers.len(),
                            out.duration,
                            out.messages
                        );
                        for t in &out.result.answers {
                            println!("  {t}");
                        }
                    }
                    Err(e) => return fail(&format!("bad query: {e}")),
                }
            }
            "show" => {
                let Some(name) = it.next() else { return fail("show needs NODE") };
                let Some(id) = node_arg(&net, name) else { return ExitCode::FAILURE };
                println!("== {name} ==");
                for rel in net.node(id).ldb().relations() {
                    print!("{}", render_relation(rel));
                }
            }
            "stats" => {
                let report = net.collect_stats();
                match serde_json::to_string_pretty(&report) {
                    Ok(js) => println!("{js}"),
                    Err(e) => return fail(&format!("stats serialisation: {e}")),
                }
            }
            other => return fail(&format!("unknown command {other:?}")),
        }
    }
    ExitCode::SUCCESS
}
