//! # coDB — a peer-to-peer database system
//!
//! A from-scratch Rust reproduction of **"Queries and Updates in the coDB
//! Peer to Peer Database System"** (Franconi, Kuper, Lopatenko, Zaihrayeu;
//! VLDB 2004): a network of autonomous databases with heterogeneous
//! schemas, interconnected by **GLAV coordination rules** — inclusions of
//! conjunctive queries, possibly with existential head variables
//! (materialised as *marked nulls*), possibly cyclic.
//!
//! The system supports two modes of data access:
//!
//! * **query-time answering** — a query at one node transparently fetches
//!   relevant data from acquaintances along coordination rules, over
//!   simple paths (a diffusing computation with node-id path labels);
//! * **global updates** — a batch materialisation: one node floods an
//!   update request, every node pushes (semi-naive, duplicate-suppressed)
//!   rule firings to its acquaintances until the network-wide fixpoint is
//!   reached; termination combines the paper's open/closed link-state
//!   protocol with Dijkstra–Scholten quiescence detection for cycles.
//!
//! ## Quickstart
//!
//! ```
//! use codb::prelude::*;
//!
//! let config = NetworkConfig::parse(r#"
//!     node hr
//!     node portal
//!     schema hr: emp(str, int)
//!     schema portal: person(str, int)
//!     data hr: emp("alice", 30). emp("bob", 17).
//!     rule r1 @ hr -> portal: person(N, A) <- emp(N, A), A >= 18.
//! "#).unwrap();
//!
//! let mut net = CoDbNetwork::build(config, SimConfig::default()).unwrap();
//! let portal = net.node_id("portal").unwrap();
//!
//! // Batch materialisation: the paper's global update.
//! let outcome = net.run_update(portal);
//! assert_eq!(outcome.summary.tuples_added, 1); // alice only
//!
//! // Afterwards the data is local.
//! let q = net.run_query_text(portal, "ans(N) :- person(N, A).", false).unwrap();
//! assert_eq!(q.result.answers.len(), 1);
//! ```
//!
//! The workspace crates are re-exported here: [`relational`] (the
//! relational engine with marked nulls and GLAV rules), [`net`] (the
//! deterministic discrete-event P2P simulator standing in for JXTA),
//! [`core`] (the coDB node and its distributed algorithms), [`store`]
//! (the durable storage engine: WAL + snapshots + crash recovery +
//! shared group-commit fsync scheduling), [`trace`] (the binary flight
//! recorder every layer emits events into) and [`workload`]
//! (topology/data/crash-scenario generators for the experiments).
//!
//! The crate map with a data-flow diagram lives in [`architecture`]
//! (`docs/ARCHITECTURE.md`); the normative durability contract in
//! [`codb_store::durability`] (`docs/DURABILITY.md`).

pub use codb_core as core;
pub use codb_net as net;
pub use codb_relational as relational;
pub use codb_store as store;
pub use codb_trace as trace;
pub use codb_workload as workload;

// In scope so the [`architecture`] page's intra-doc links resolve
// (module docs resolve names in the parent scope).
#[allow(unused_imports)]
use codb_store::FsyncScheduler;

/// The common imports for using coDB as a library.
pub mod prelude {
    pub use codb_core::{
        Body, CoDbNetwork, CoDbNode, ConfigError, CoordinationRule, NetworkConfig, NetworkReport,
        NodeConfig, NodeId, NodeSettings, QueryOutcome, QueryResult, UpdateId, UpdateOutcome,
        UpdateSummary,
    };
    pub use codb_net::{PipeConfig, SimConfig, SimTime};
    pub use codb_relational::{
        parse_facts, parse_query, parse_rule, ConjunctiveQuery, DatabaseSchema, GlavRule, Instance,
        Relation, RelationSchema, Tuple, Value, ValueType,
    };
    pub use codb_store::{
        Codec, FsyncScheduler, FsyncSchedulerStats, ProtocolCounters, Store, StoreError,
        SyncPolicy, WalRecord,
    };
    pub use codb_trace::{
        read_trace_file, FileRecorder, RingRecorder, Summary, TraceEvent, TraceFile, Tracer,
    };
    pub use codb_workload::{
        run_crash_restart, run_fault_plan, run_fault_plan_differential, CodecDifferentialReport,
        CrashRestartPlan, CrashRestartReport, DataDist, FaultPlan, FaultPlanReport, RuleStyle,
        Scenario, Topology,
    };
}

/// The crate map and data-flow architecture, rendered from
/// `docs/ARCHITECTURE.md` so `cargo doc -D warnings` keeps its intra-doc
/// links honest.
#[doc = include_str!("../docs/ARCHITECTURE.md")]
pub mod architecture {}
