//! Dynamic networks: the super-peer re-broadcasts a coordination-rules
//! file at runtime, rewiring the topology ("a super-peer can dynamically
//! change the network topology at runtime"), and then collects the final
//! statistical report from all peers.
//!
//! Run with: `cargo run --example dynamic_superpeer`

use codb::prelude::*;

fn config_v(version: u64, edges: &[(usize, usize)], n: usize) -> NetworkConfig {
    let mut s = format!("version {version}\n");
    for i in 0..n {
        s.push_str(&format!("node n{i}\nschema n{i}: r(int)\n"));
    }
    s.push_str("data n0: ");
    for t in 0..20 {
        s.push_str(&format!("r({t}). "));
    }
    s.push('\n');
    for (k, (a, b)) in edges.iter().enumerate() {
        s.push_str(&format!("rule v{version}e{k} @ n{a} -> n{b}: r(X) <- r(X).\n"));
    }
    NetworkConfig::parse(&s).expect("valid config")
}

fn main() {
    let n = 5;
    // Phase 1: a chain 0 → 1 → 2 → 3 → 4.
    let chain: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let mut net = CoDbNetwork::build_with_superpeer(config_v(1, &chain, n), SimConfig::default())
        .expect("builds");

    let n0 = net.node_id("n0").unwrap();
    let n4 = net.node_id("n4").unwrap();
    let first = net.run_update(n0);
    println!(
        "chain update: {} in {} — n4 now holds {} tuples (longest path {})",
        first.update,
        first.duration,
        net.node(n4).ldb().get("r").unwrap().len(),
        first.summary.longest_path
    );

    // Phase 2: the super-peer rewires the network into a star: every node
    // feeds n4 directly. Old pipes are dropped, new ones created.
    let star: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, n - 1)).collect();
    let took = net.broadcast_rules(config_v(2, &star, n)).expect("valid config");
    println!("\nsuper-peer re-broadcast rules (star topology) in {took}");
    println!(
        "pipe n0-n1 still open? {}   pipe n0-n4 open? {}",
        net.sim().has_pipe(n0.peer(), net.node_id("n1").unwrap().peer()),
        net.sim().has_pipe(n0.peer(), n4.peer()),
    );

    let second = net.run_update(n4);
    println!(
        "star update: {} in {} — longest path {} (was {} on the chain)",
        second.update, second.duration, second.summary.longest_path, first.summary.longest_path
    );

    // Final statistical report, collected over the network.
    let report = net.collect_stats();
    println!("\n== super-peer final report ==");
    for update in report.update_ids() {
        let s = report.summarise(update).unwrap();
        println!(
            "{update}: nodes={} data-msgs={} bytes={} longest-path={} total-time={}",
            s.nodes, s.data_messages, s.data_bytes, s.longest_path, s.total_time
        );
    }
    for (id, node) in &report.nodes {
        println!(
            "  {id}: ldb={} tuples, sent={:?}",
            node.ldb_tuples,
            node.messages_sent.get("update_data").copied().unwrap_or(0)
        );
    }
}
