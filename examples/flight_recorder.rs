//! Flight recorder at simulator scale: record a fixed-seed 1000-node
//! E19-style flood run to a `.trc` file, then read it back and print the
//! postmortem summary — the programmatic equivalent of
//! `codb-demo trace inspect`.
//!
//! Run with: `cargo run --release --example flight_recorder`

use codb::prelude::*;
use codb::trace::read_trace_file;
use codb::workload::run_flood_traced;

fn main() {
    let path = std::env::temp_dir().join("codb-flight-recorder-example.trc");

    // A file-backed tracer; `run_flood_traced` brackets the run into
    // `build` and `flood` phases and the simulator stamps every
    // send/deliver with sim time.
    let (tracer, recorder) = Tracer::to_file(&path).expect("create trace file");
    let report = run_flood_traced(
        &Topology::ScaleFree { n: 1000, m: 2, seed: 7 },
        PipeConfig::lan(),
        None,
        4,
        0xE19,
        &tracer,
    );
    drop(tracer);
    {
        use codb::trace::TraceSink as _;
        let mut rec = recorder.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        rec.flush().expect("flush trace");
        println!(
            "recorded {} events over a {}-node / {}-edge flood ({} sim messages)\n",
            rec.recorded(),
            report.nodes,
            report.edges,
            report.messages
        );
    }

    // Postmortem: decode the file and summarise — per-phase host time,
    // busiest peers, event counts.
    let trace = read_trace_file(&path).expect("read trace back");
    print!("{}", Summary::from_trace(&trace).render());
    println!(
        "\ntrace file: {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path).unwrap().len()
    );
}
