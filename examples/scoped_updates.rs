//! Query-dependent (scoped) updates: materialise only the slice of the
//! network a query actually needs — the paper's "query-dependent update
//! requests", demonstrated against a full global update.
//!
//! Run with: `cargo run --example scoped_updates`

use codb::prelude::*;

const CONFIG: &str = r#"
    node sensors_eu
    node sensors_us
    node archive_eu
    node archive_us
    node dashboard

    schema sensors_eu: reading(str, int)
    schema sensors_us: reading(str, int)
    schema archive_eu: reading(str, int)
    schema archive_us: reading(str, int)
    schema dashboard: eu(str, int)
    schema dashboard: us(str, int)

    data sensors_eu: reading("ber", 21). reading("par", 19). reading("rom", 25).
    data sensors_us: reading("nyc", 17). reading("sfo", 15).

    % regional archives mirror their sensors…
    rule eu_arch @ sensors_eu -> archive_eu: reading(S, V) <- reading(S, V).
    rule us_arch @ sensors_us -> archive_us: reading(S, V) <- reading(S, V).
    % …and the dashboard imports each archive into its own relation.
    rule eu_dash @ archive_eu -> dashboard: eu(S, V) <- reading(S, V).
    rule us_dash @ archive_us -> dashboard: us(S, V) <- reading(S, V).
"#;

fn main() {
    // A user at the dashboard only cares about the EU series right now.
    // Scoped update: demand `eu` — the demand propagates transitively
    // (dashboard → archive_eu → sensors_eu) and leaves the US branch
    // untouched.
    let mut net =
        CoDbNetwork::build(NetworkConfig::parse(CONFIG).unwrap(), SimConfig::default()).unwrap();
    let dashboard = net.node_id("dashboard").unwrap();

    let scoped = net.run_scoped_update(dashboard, vec!["eu".to_owned()]);
    println!(
        "scoped update (demand `eu`): {} tuples, {} messages, {} bytes",
        scoped.summary.tuples_added, scoped.messages, scoped.bytes
    );
    let node = net.node(dashboard);
    println!(
        "  dashboard: eu={} tuples, us={} tuples (US branch untouched)",
        node.ldb().get("eu").unwrap().len(),
        node.ldb().get("us").unwrap().len(),
    );
    let archive_us = net.node_id("archive_us").unwrap();
    println!(
        "  archive_us: {} tuples (nothing materialised there either)",
        net.node(archive_us).ldb().get("reading").unwrap().len()
    );

    // Compare with the full global update on a fresh network.
    let mut full_net =
        CoDbNetwork::build(NetworkConfig::parse(CONFIG).unwrap(), SimConfig::default()).unwrap();
    let full = full_net.run_update(dashboard);
    println!(
        "\nglobal update:              {} tuples, {} messages, {} bytes",
        full.summary.tuples_added, full.messages, full.bytes
    );
    println!("scoped/global message ratio: {:.2}", scoped.messages as f64 / full.messages as f64);

    // The scoped slice answers the scoping query locally afterwards.
    let q = net.run_query_text(dashboard, "ans(S, V) :- eu(S, V), V >= 20.", false).unwrap();
    println!("\nwarm EU cities (local query, {} messages): {:?}", q.messages, q.result.answers);
}
