//! Quickstart: a two-node coDB network — an HR database and a public
//! portal with different schemas, bridged by one GLAV coordination rule.
//!
//! Run with: `cargo run --example quickstart`

use codb::prelude::*;
use codb::relational::pretty::render_relation;

fn main() {
    // A coordination-rules file, exactly what the paper's super-peer
    // would broadcast: two nodes, their shared schemas, seed data, and
    // one rule mapping HR's `emp` into the portal's `person`, keeping
    // adults only.
    let config = NetworkConfig::parse(
        r#"
        % --- the network ---
        node hr
        node portal

        % --- shared database schemas (DBS) ---
        schema hr: emp(str, int)
        schema portal: person(str, int)

        % --- local data ---
        data hr: emp("alice", 30). emp("bob", 17). emp("carol", 45).

        % --- GLAV coordination rules ---
        rule adults @ hr -> portal: person(N, A) <- emp(N, A), A >= 18.
        "#,
    )
    .expect("valid configuration");

    let mut net = CoDbNetwork::build(config, SimConfig::default()).expect("network builds");
    let portal = net.node_id("portal").unwrap();

    println!("== before any update: the portal is empty ==");
    println!("{}", render_relation(net.node(portal).ldb().get("person").unwrap()));

    // 1. Query-time answering: the portal fetches from HR on demand,
    //    materialising nothing.
    let q = net.run_query_text(portal, "ans(N, A) :- person(N, A).", true).unwrap();
    println!(
        "query-time answering: {} answers in {} using {} messages",
        q.result.answers.len(),
        q.duration,
        q.messages
    );
    for t in &q.result.answers {
        println!("  {t}");
    }
    assert!(net.node(portal).ldb().get("person").unwrap().is_empty());

    // 2. Global update: batch materialisation à la coDB.
    let outcome = net.run_update(portal);
    println!(
        "\nglobal update {}: {} tuples materialised in {} ({} messages, {} bytes)",
        outcome.update,
        outcome.summary.tuples_added,
        outcome.duration,
        outcome.messages,
        outcome.bytes
    );
    println!("\n== after the update: the portal holds the adults locally ==");
    println!("{}", render_relation(net.node(portal).ldb().get("person").unwrap()));

    // 3. Local queries are now free of network traffic.
    let local = net.run_query_text(portal, "ans(N) :- person(N, A), A >= 40.", false).unwrap();
    println!(
        "local query after materialisation: {:?} ({} messages)",
        local.result.answers, local.messages
    );
}
