//! A heterogeneous university data-sharing network, in the spirit of the
//! coDB paper's motivating setting (the authors' institutes in Bolzano,
//! Trento and Manchester sharing people data under different schemas).
//!
//! Three universities publish staff under three different schemas; a
//! fourth node — a research portal — integrates them with GLAV rules,
//! including an existential rule that invents marked nulls for unknown
//! affiliation identifiers. A cyclic pair of rules keeps two universities
//! mutually synchronised.
//!
//! Run with: `cargo run --example university_network`

use codb::prelude::*;
use codb::relational::pretty::render_relation;

const CONFIG: &str = r#"
    node bolzano
    node trento
    node manchester
    node portal

    % Bolzano: researchers with name and age.
    schema bolzano: researcher(str, int)
    data bolzano: researcher("franconi", 45). researcher("lopatenko", 30).

    % Trento: staff with name and department string.
    schema trento: staff(str, str)
    data trento: staff("kuper", "dit"). staff("zaihrayeu", "dit").

    % Manchester: visiting researchers by name only.
    schema manchester: visitor(str)
    data manchester: visitor("lopatenko").

    % The portal integrates everyone: person(name, affiliation_id) where
    % the affiliation id is an invented (marked null) identifier, plus an
    % affiliation registry keyed by those ids.
    schema portal: person(str, int)
    schema portal: affiliation(int)

    % GLAV rules with existential head variables: the portal does not know
    % the universities' internal ids, so fresh marked nulls are invented,
    % shared between person and affiliation within each firing.
    rule from_bz @ bolzano -> portal: person(N, F), affiliation(F) <- researcher(N, A).
    rule from_tn @ trento -> portal: person(N, F), affiliation(F) <- staff(N, D).
    rule from_mc @ manchester -> portal: person(N, F), affiliation(F) <- visitor(N).

    % Bolzano and Manchester mutually exchange visiting researchers: a
    % cyclic coordination-rule pair (the fixpoint case).
    schema bolzano: visiting(str)
    schema manchester: hosted(str)
    rule bz_mc @ bolzano -> manchester: hosted(N) <- visiting(N).
    rule mc_bz @ manchester -> bolzano: visiting(N) <- hosted(N).
    data bolzano: visiting("kuper").
    data manchester: hosted("franconi").
"#;

fn main() {
    let config = NetworkConfig::parse(CONFIG).expect("valid configuration");
    println!("rule graph cyclic: {}", codb::core::rule_graph_is_cyclic(&config.rules));

    let mut net = CoDbNetwork::build_with_superpeer(config, SimConfig::default()).expect("builds");
    let portal = net.node_id("portal").unwrap();
    let bolzano = net.node_id("bolzano").unwrap();
    let manchester = net.node_id("manchester").unwrap();

    // Global update started at the portal.
    let outcome = net.run_update(portal);
    println!(
        "update {} finished in {} — {} tuples materialised, longest path {}",
        outcome.update,
        outcome.duration,
        outcome.summary.tuples_added,
        outcome.summary.longest_path
    );

    println!("\n== portal after integration ==");
    println!("{}", render_relation(net.node(portal).ldb().get("person").unwrap()));
    println!("{}", render_relation(net.node(portal).ldb().get("affiliation").unwrap()));

    println!("== cyclic exchange reached its fixpoint ==");
    println!("{}", render_relation(net.node(bolzano).ldb().get("visiting").unwrap()));
    println!("{}", render_relation(net.node(manchester).ldb().get("hosted").unwrap()));

    // Certain answers: people whose affiliation is *known* — none, since
    // all affiliations are invented nulls; every answer is merely possible.
    let q = net.run_query_text(portal, "ans(N, F) :- person(N, F).", false).unwrap();
    println!(
        "person query: {} possible answers, {} certain",
        q.result.answers.len(),
        q.result.certain.len()
    );

    // The super-peer aggregates the statistics the demo would display.
    let report = net.collect_stats();
    let summary = report.summarise(outcome.update).unwrap();
    println!(
        "\nsuper-peer report: {} nodes, {} data messages, {} bytes, total time {}",
        summary.nodes, summary.data_messages, summary.data_bytes, summary.total_time
    );
    println!("report as JSON (excerpt): {:.120}…", serde_json_string(&summary));
}

fn serde_json_string<T: serde::Serialize>(t: &T) -> String {
    serde_json::to_string(t).unwrap_or_default()
}
