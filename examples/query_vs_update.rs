//! The paper's central trade-off, measured: query-time answering fetches
//! data over the network on *every* query, while a global update pays the
//! materialisation cost once and answers all subsequent queries locally.
//!
//! This example sweeps chain length and prints the crossover: after how
//! many queries does the batch update amortise?
//!
//! Run with: `cargo run --example query_vs_update`

use codb::prelude::*;

fn main() {
    println!(
        "{:>8} | {:>14} {:>9} | {:>14} {:>9} | {:>10}",
        "chain n", "query-time", "msgs", "update", "msgs", "amortise@"
    );
    println!("{}", "-".repeat(78));

    for n in [2usize, 4, 8, 12, 16] {
        let scenario = Scenario {
            topology: Topology::Chain(n),
            tuples_per_node: 200,
            rule_style: RuleStyle::CopyGav,
            dist: DataDist::Uniform { domain: 1_000_000 },
            seed: 7,
        };

        // Network A: answer at the chain end by query-time fetching.
        let mut fetch_net =
            CoDbNetwork::build(scenario.build_config(), SimConfig::default()).unwrap();
        let q = fetch_net.run_query(scenario.sink(), scenario.sink_query(), true);

        // Network B: global update first, then a purely local query.
        let mut mat_net =
            CoDbNetwork::build(scenario.build_config(), SimConfig::default()).unwrap();
        let outcome = mat_net.run_update(scenario.sink());
        let local = mat_net.run_query(scenario.sink(), scenario.sink_query(), false);

        assert_eq!(
            q.result.answers.len(),
            local.result.answers.len(),
            "query-time and materialised answers must agree on a chain"
        );

        // After how many queries is the one-off update cheaper than
        // repeated query-time fetching (by simulated wall time)?
        let amortise = outcome.duration.as_nanos().div_ceil(q.duration.as_nanos().max(1));

        println!(
            "{:>8} | {:>14} {:>9} | {:>14} {:>9} | {:>10}",
            n,
            q.duration.to_string(),
            q.messages,
            outcome.duration.to_string(),
            outcome.messages,
            amortise,
        );
    }

    println!(
        "\n(local queries after the update use 0 messages and ~0 simulated time —\n\
         the coDB argument for batch global updates.)"
    );
}
