//! Updates over unreliable pipes: the simulator drops a fraction of all
//! messages; the nodes' ARQ layer (per-message acks + retransmission +
//! duplicate suppression) still drives the global update to the exact
//! fixpoint — JXTA's reliable pipes, rebuilt.
//!
//! Run with: `cargo run --example lossy_network`

use codb::prelude::*;

fn main() {
    let scenario = Scenario {
        topology: Topology::Grid { w: 3, h: 2 },
        tuples_per_node: 100,
        rule_style: RuleStyle::CopyGav,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 1,
    };

    // Reference run on perfect pipes.
    let mut clean = CoDbNetwork::build(scenario.build_config(), SimConfig::default()).unwrap();
    let reference = clean.run_update(scenario.sink());

    println!(
        "{:>7} | {:>11} {:>9} {:>12} {:>9} | {:>8}",
        "loss %", "sim time", "msgs", "retransmits", "dropped", "fixpoint"
    );
    println!("{}", "-".repeat(70));

    for loss in [0.0, 0.05, 0.10, 0.20, 0.30] {
        let pipe = PipeConfig::lan().with_loss(loss);
        let sim = SimConfig { seed: 7, default_pipe: pipe, max_events: 10_000_000 };
        let settings =
            NodeSettings { retransmit_after: SimTime::from_millis(25), pipe, ..Default::default() };
        let mut net =
            CoDbNetwork::build_with(scenario.build_config(), sim, settings, false).unwrap();
        let outcome = net.run_update(scenario.sink());

        let retransmits: u64 = net
            .network_report()
            .nodes
            .values()
            .map(|n| n.messages_sent.get("retransmit").copied().unwrap_or(0))
            .sum();

        // The fixpoint must match the clean run exactly (GAV rules: ground
        // data, so plain equality per node).
        let same = scenario
            .build_config()
            .node_ids()
            .iter()
            .all(|&id| net.node(id).ldb() == clean.node(id).ldb());

        println!(
            "{:>7.0} | {:>11} {:>9} {:>12} {:>9} | {:>8}",
            loss * 100.0,
            outcome.duration.to_string(),
            outcome.messages,
            retransmits,
            net.sim().stats().dropped,
            if same { "exact" } else { "DIVERGED" }
        );
        assert!(same, "loss must never change the result");
        assert_eq!(outcome.summary.tuples_added, reference.summary.tuples_added);
    }

    println!(
        "\nEvery row reaches the identical fixpoint; only time and message\n\
         counts degrade — the cost of reliability under loss."
    );
}
