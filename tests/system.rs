//! Cross-crate system tests: scenario-driven runs, the threaded runtime,
//! statistics plumbing and dynamic reconfiguration under load.

use codb::core::{Body, Envelope, ParallelCoDbNet};
use codb::net::RuntimeConfig;
use codb::prelude::*;
use std::time::Duration;

#[test]
fn all_topologies_run_to_the_expected_tuple_counts() {
    // CopyGav over disjoint domains: the sink accumulates every tuple on a
    // path to it; with a huge domain, cross-node collisions are absent for
    // the seeds used here.
    for topology in [
        Topology::Chain(6),
        Topology::Ring(5),
        Topology::Star { leaves: 5 },
        Topology::Tree { height: 2 },
        Topology::Grid { w: 3, h: 2 },
        Topology::RandomDag { n: 6, p_percent: 40, seed: 9 },
        Topology::Clique(3),
    ] {
        let scenario = Scenario {
            topology,
            tuples_per_node: 7,
            rule_style: RuleStyle::CopyGav,
            dist: DataDist::Uniform { domain: 1 << 40 },
            seed: 11,
        };
        let mut net = CoDbNetwork::build(scenario.build_config(), SimConfig::default())
            .unwrap_or_else(|e| panic!("{topology}: {e}"));
        let outcome = net.run_update(scenario.sink());
        assert_eq!(
            outcome.summary.nodes,
            topology.node_count() as u64,
            "{topology}: all nodes participate"
        );
        // On a ring/clique every node ends with everything.
        if topology.is_cyclic() {
            let total = topology.node_count() * 7;
            for i in 0..topology.node_count() {
                let rel = Scenario::relation_of(i);
                assert_eq!(
                    net.node(codb::core::NodeId(i as u64)).ldb().get(&rel).unwrap().len(),
                    total,
                    "{topology}: node {i} reaches the fixpoint"
                );
            }
        }
        // The longest propagation path is at least the depth to the sink
        // (except on random DAGs, where shortcut edges can deliver data
        // first, so the longest *new-data* path is shorter than the
        // backbone).
        if !matches!(topology, Topology::RandomDag { .. }) {
            assert!(
                outcome.summary.longest_path >= topology.depth_to_sink() as u64,
                "{topology}: longest path {} < depth {}",
                outcome.summary.longest_path,
                topology.depth_to_sink()
            );
        }
    }
}

#[test]
fn threaded_runtime_reaches_the_same_fixpoint() {
    // The same CoDbNode state machines, scheduled by the sharded worker
    // pool instead of the simulator. Two worker threads and a small
    // mailbox exercise cross-shard sends and backpressure on the real
    // protocol traffic.
    let scenario = Scenario {
        topology: Topology::Ring(4),
        tuples_per_node: 10,
        rule_style: RuleStyle::CopyGav,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 21,
    };
    let config = scenario.build_config();

    // Expected fixpoint from the simulator.
    let mut sim_net = CoDbNetwork::build(config.clone(), SimConfig::default()).unwrap();
    sim_net.run_update(scenario.sink());

    // Threaded run over the core builder: nodes open their own pipes
    // from on_start, no manual pipe wiring.
    let rt = RuntimeConfig { workers: 2, mailbox_depth: 64, quantum: 16 };
    let par = ParallelCoDbNet::build(config.clone(), rt).unwrap();
    par.start_update(scenario.sink());
    assert!(
        par.await_quiescence(Duration::from_millis(300), Duration::from_secs(30)),
        "threaded update must quiesce"
    );
    assert_eq!(par.undeliverable(), 0, "protocol traffic must all deliver");
    let nodes = par.shutdown();
    for nc in &config.nodes {
        let threaded = &nodes[&nc.id];
        let expected = sim_net.node(nc.id).ldb();
        assert_eq!(
            threaded.ldb(),
            expected,
            "node {} differs between threaded and simulated runs",
            nc.name
        );
    }
}

#[test]
fn statistics_account_every_data_byte() {
    let scenario = Scenario {
        topology: Topology::Chain(4),
        tuples_per_node: 20,
        rule_style: RuleStyle::CopyGav,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 5,
    };
    let mut net = CoDbNetwork::build(scenario.build_config(), SimConfig::default()).unwrap();
    let outcome = net.run_update(scenario.sink());
    let report = net.network_report();

    // Receiver-side and sender-side traffic agree per rule.
    let mut sent_by_rule = std::collections::BTreeMap::new();
    let mut recv_by_rule = std::collections::BTreeMap::new();
    for node in report.nodes.values() {
        let r = &node.updates[&outcome.update];
        for (rule, t) in &r.sent {
            let e = sent_by_rule.entry(rule.clone()).or_insert((0u64, 0u64));
            e.0 += t.messages;
            e.1 += t.bytes;
        }
        for (rule, t) in &r.received {
            let e = recv_by_rule.entry(rule.clone()).or_insert((0u64, 0u64));
            e.0 += t.messages;
            e.1 += t.bytes;
        }
    }
    assert_eq!(sent_by_rule, recv_by_rule, "no data lost on reliable pipes");

    // Simulator ground truth: update_data messages counted by the node
    // statistics equal the per-kind counters.
    let data_msgs: u64 = report
        .nodes
        .values()
        .map(|n| n.messages_sent.get("update_data").copied().unwrap_or(0))
        .sum();
    assert_eq!(data_msgs, outcome.summary.data_messages);
}

#[test]
fn glav_chain_propagates_nulls_transitively() {
    // ProjectGlav drops the second column and invents a null at every hop;
    // nulls must flow through intermediate nodes without collapsing.
    let scenario = Scenario {
        topology: Topology::Chain(3),
        tuples_per_node: 5,
        rule_style: RuleStyle::ProjectGlav,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 31,
    };
    let mut net = CoDbNetwork::build(scenario.build_config(), SimConfig::default()).unwrap();
    net.run_update(scenario.sink());
    let sink_rel = Scenario::relation_of(2);
    let rel = net.node(scenario.sink()).ldb().get(&sink_rel).unwrap();
    // 5 own tuples + 5 from node1 + 5 relayed from node0.
    assert_eq!(rel.len(), 15);
    let with_null = rel.iter().filter(|t| t.has_null()).count();
    assert_eq!(with_null, 10, "imported tuples carry invented nulls");
}

#[test]
fn rebroadcast_mid_flight_update_still_terminates() {
    // Dynamic network: rules are replaced while an update is in flight.
    // The paper: "even if nodes and coordination rules appear or disappear
    // during the computation, the proposed algorithm will eventually
    // terminate".
    let scenario = Scenario {
        topology: Topology::Chain(5),
        tuples_per_node: 30,
        rule_style: RuleStyle::CopyGav,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 17,
    };
    let mut config = scenario.build_config();
    config.version = 1;
    let mut net = CoDbNetwork::build_with_superpeer(config.clone(), SimConfig::default()).unwrap();

    // Kick off the update but do NOT run to quiescence.
    net.sim_mut().inject(
        codb::core::HARNESS_PEER,
        scenario.sink().peer(),
        Envelope::control(Body::StartUpdate),
    );
    for _ in 0..40 {
        net.sim_mut().step();
    }

    // Re-broadcast a different topology mid-flight: a star where every
    // other node feeds node 4 (schemas are per-node, so the star edges
    // (i -> 4) must be rebuilt as rules r4 <- r_i).
    let mut v2 = config.clone();
    v2.rules = (0..4u64)
        .map(|i| {
            let rule =
                codb::relational::parse_rule(&format!("rule star{i}: r4(X, Y) <- r{i}(X, Y)."))
                    .unwrap();
            codb::core::CoordinationRule {
                rule,
                source: codb::core::NodeId(i),
                target: codb::core::NodeId(4),
            }
        })
        .collect();
    v2.version = 2;
    net.broadcast_rules(v2).unwrap();

    // The network must quiesce (broadcast_rules ran it to quiescence) and
    // a fresh update on the new topology must work.
    assert!(net.sim().is_quiescent());
    let outcome = net.run_update(codb::core::NodeId(4));
    assert_eq!(outcome.summary.nodes, 5);
    // The new star topology materialised everything at node 4.
    let r4 = net.node(codb::core::NodeId(4)).ldb().get("r4").unwrap().len();
    assert!(r4 >= 5 * 30, "star sink should hold all data, has {r4}");
}

#[test]
fn node_crash_mid_update_still_quiesces_for_others() {
    // Remove a leaf node mid-update: in-flight messages to it are dropped
    // by the simulator; the rest of the network still reaches quiescence
    // (outstanding retransmissions to the dead node are forgotten when the
    // simulator reports undeliverable sends — here pipes close on removal,
    // so sends become undeliverable and DS never completes for the
    // initiator; the run still quiesces because timers only rearm while
    // messages are outstanding... this test pins the *current* documented
    // behaviour: quiescence with possibly-incomplete completion flood).
    let scenario = Scenario {
        topology: Topology::Star { leaves: 3 },
        tuples_per_node: 10,
        rule_style: RuleStyle::CopyGav,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 23,
    };
    let mut net = CoDbNetwork::build(scenario.build_config(), SimConfig::default()).unwrap();
    net.sim_mut().inject(
        codb::core::HARNESS_PEER,
        scenario.sink().peer(),
        Envelope::control(Body::StartUpdate),
    );
    net.sim_mut().step();
    net.sim_mut().step();
    // Crash leaf 3.
    net.sim_mut().remove_peer(codb::core::NodeId(3).peer());
    // Bounded run: must not loop forever.
    let mut guard = 0;
    while net.sim_mut().step() {
        guard += 1;
        assert!(guard < 1_000_000, "simulation must quiesce after a crash");
    }
    // The surviving leaves' data made it to the hub.
    let hub = net.node(codb::core::NodeId(0));
    let imported = hub.ldb().get("r0").unwrap().len();
    assert!(imported >= 10 + 20, "hub got data from surviving leaves, has {imported}");
}

#[test]
fn query_reports_track_requests_and_answers() {
    let scenario = Scenario {
        topology: Topology::Star { leaves: 4 },
        tuples_per_node: 6,
        rule_style: RuleStyle::CopyGav,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 2,
    };
    let mut net = CoDbNetwork::build(scenario.build_config(), SimConfig::default()).unwrap();
    let q = net.run_query(scenario.sink(), scenario.sink_query(), true);
    let report = net.node(scenario.sink()).report();
    let qr = &report.queries[&q.query];
    assert_eq!(qr.requests_sent, 4);
    assert_eq!(qr.answers_received, 4);
    assert_eq!(qr.answers, 30);
    assert!(qr.bytes_received > 0);
    assert!(qr.duration().is_some());
}
