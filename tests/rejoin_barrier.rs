//! Committed rejoin-barrier postmortem: a `.trc` flight recording of the
//! forwarded-but-unsynced window-(a) schedule, pinned **semantically**.
//!
//! `tests/fixtures/rejoin_barrier.trc` is a real capture of
//! [`build_capture`]: a chain-4 network under `GroupCommit` loses node 1
//! mid-update *after* it forwarded records downstream but *before* its
//! group-commit batch drained (`lose_unsynced_tail` chops the WAL back
//! to the durable watermark). Survivor traffic toward the victim
//! exhausts retransmission and parks behind the rejoin barrier; the
//! restart's announcement releases it and pushes a `RejoinRepair`
//! re-send that restores the rolled-back records **at the handshake** —
//! the schedule has no follow-up update round, so convergence can come
//! from nowhere else.
//!
//! Unlike `golden.trc` this fixture cannot be byte-pinned — `Fsync`
//! durations are measured wall-clock — so the test decodes the committed
//! bytes and asserts the *story*: hold strictly before release, release
//! only after the victim's new incarnation announces itself, repair data
//! applied at the victim after the release, and a clean (untorn) tail.
//! Regenerate (after an intentional protocol or schedule change) with:
//!
//! ```sh
//! cargo test --test rejoin_barrier -- --ignored regenerate
//! ```

use codb::prelude::*;
use codb::store::{Codec, ScratchDir, SyncPolicy};
use codb::trace::{read_trace, TraceEvent, Tracer};
use codb::workload::{
    run_fault_plan_traced, Fault, FaultKind, FaultPlan, Round, Scenario, Topology,
};
use std::path::{Path, PathBuf};

/// The crashing node. On the chain `0 -> 1 -> 2 -> 3` node 1 both
/// receives repairable data (node 0's link targets it) and forwards
/// records downstream — the window-(a) shape.
const VICTIM: u64 = 1;

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/rejoin_barrier.trc")
}

/// The pinned window-(a) schedule (mirrors the fixed-seed regression in
/// `codb-workload`): one round, sink-initiated, node 1 killed at event
/// 16 — empirically inside the window where survivor traffic toward it
/// is still unacked, so the barrier genuinely engages.
fn window_a_plan() -> FaultPlan {
    let s = Scenario { tuples_per_node: 12, ..Scenario::quick(Topology::Chain(4)) };
    FaultPlan {
        scenario: s,
        seed: 5,
        loss: 0.0,
        sync: SyncPolicy::GroupCommit { max_batch: 4, max_records: 32 },
        lose_unsynced_tail: true,
        codec: Codec::Binary,
        rounds: vec![Round {
            initiator: s.sink(),
            faults: vec![Fault { at_event: 16, node: NodeId(VICTIM), kind: FaultKind::Crash }],
        }],
    }
}

/// Runs the schedule with a flight recorder on `path` and sanity-checks
/// the report before the capture is worth committing.
fn build_capture(path: &Path) {
    let tmp = ScratchDir::new("rejoin-barrier-capture");
    let (tracer, recorder) = Tracer::to_file(path).expect("capture path is writable");
    let report =
        run_fault_plan_traced(&window_a_plan(), tmp.path(), &tracer).expect("scratch store i/o");
    tracer.flush().expect("trace flushes");
    drop(tracer);
    drop(recorder);
    assert!(report.barrier_parked > 0, "capture must park survivor traffic: {report:?}");
    assert!(report.barrier_released > 0, "capture must release at the handshake: {report:?}");
    assert!(report.repair_messages > 0, "capture must push a repair: {report:?}");
    assert!(report.acked_records_preserved, "{report:?}");
    assert!(report.converged, "repair at release must reconverge the network: {report:?}");
}

/// The committed capture tells the window-(a) story in order.
#[test]
fn committed_capture_holds_releases_and_repairs_in_order() {
    let bytes = std::fs::read(fixture_path())
        .expect("fixture missing — run the ignored `regenerate` test once");
    let trace = read_trace(&bytes).unwrap();
    assert!(!trace.torn, "committed capture must end on a sealed block (clean tail)");

    let position =
        |pred: &dyn Fn(&TraceEvent) -> bool| trace.events.iter().position(|(_, ev)| pred(ev));

    let hold = position(&|ev| {
        matches!(ev, TraceEvent::BarrierHold { toward, held, .. } if *toward == VICTIM && *held > 0)
    })
    .expect("a survivor parks traffic for the victim");
    let announce =
        position(&|ev| matches!(ev, TraceEvent::RejoinAnnounce { peer, .. } if *peer == VICTIM))
            .expect("the victim's new incarnation announces itself");
    let release = position(&|ev| {
        matches!(ev, TraceEvent::BarrierRelease { toward, released, .. }
            if *toward == VICTIM && *released > 0)
    })
    .expect("the parked traffic is released");
    let repair_applied = trace.events.iter().skip(release).any(
        |(_, ev)| matches!(ev, TraceEvent::UpdateApply { peer, tuples, .. } if *peer == VICTIM && *tuples > 0),
    );

    assert!(hold < release, "traffic parks while the victim is down, not after");
    assert!(
        announce < release,
        "release is triggered by hearing the peer again, never spontaneously"
    );
    assert!(repair_applied, "the rolled-back records land at the victim after the barrier lifts");
}

/// Rewrites the committed capture. Run explicitly after an *intentional*
/// protocol or schedule change:
/// `cargo test --test rejoin_barrier -- --ignored regenerate`
#[test]
#[ignore = "rewrites the committed rejoin-barrier capture"]
fn regenerate() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    build_capture(&path);
    println!("rewrote {}", path.display());
}
