//! Scenario tests tracking the paper's narrative claims one by one —
//! each test cites the claim it pins down.

use codb::prelude::*;
use codb::relational::{homomorphic, isomorphic};

fn build(src: &str) -> CoDbNetwork {
    CoDbNetwork::build(NetworkConfig::parse(src).unwrap(), SimConfig::default()).unwrap()
}

/// "A network of databases, possibly with different schemas, are
/// interconnected by means of GLAV coordination rules, which are
/// inclusions of conjunctive queries, with possibly existential variables
/// in the head."
#[test]
fn heterogeneous_schemas_with_existential_glav() {
    let mut net = build(
        r#"
        node store
        node catalog
        schema store: sale(str, int)
        schema catalog: product(str, int, int)
        data store: sale("mug", 8). sale("pen", 2).
        % catalog's product(name, price, supplier_id): supplier unknown.
        rule cat @ store -> catalog: product(N, P, S) <- sale(N, P).
        "#,
    );
    let catalog = net.node_id("catalog").unwrap();
    net.run_update(catalog);
    let product = net.node(catalog).ldb().get("product").unwrap();
    assert_eq!(product.len(), 2);
    for t in product.iter() {
        assert!(!t[0].is_null() && !t[1].is_null());
        assert!(t[2].is_null(), "supplier is an invented unknown");
    }
}

/// "Each node can be queried in its schema for data, which the node can
/// fetch from its neighbours, if a coordination rule is involved."
#[test]
fn node_queried_in_its_own_schema_fetches_from_neighbours() {
    let mut net = build(
        r#"
        node warehouse
        node shop
        schema warehouse: stock(str, int)
        schema shop: available(str)
        data warehouse: stock("mug", 3). stock("pen", 0).
        rule av @ warehouse -> shop: available(N) <- stock(N, Q), Q > 0.
        "#,
    );
    let shop = net.node_id("shop").unwrap();
    // The shop's schema knows nothing about quantities; its query is in
    // its own vocabulary.
    let q = net.run_query_text(shop, "ans(N) :- available(N).", true).unwrap();
    assert_eq!(q.result.answers, vec![codb::relational::tup!["mug"]]);
    // Nothing was materialised by the query.
    assert!(net.node(shop).ldb().get("available").unwrap().is_empty());
}

/// "Note that rules can be cyclic, i.e., a fix-point computation may be
/// needed among the nodes in order to get all the data that is needed to
/// answer a query."
#[test]
fn cyclic_fixpoint_needed_for_full_answer() {
    // a <-> b exchange: querying a *after the update* sees b's data and
    // vice versa; a 3-cycle requires two propagation rounds of the cycle.
    let mut net = build(
        r#"
        node a
        node b
        node c
        schema a: r(int)
        schema b: r(int)
        schema c: r(int)
        data a: r(1).
        rule ab @ a -> b: r(X) <- r(X).
        rule bc @ b -> c: r(X) <- r(X).
        rule ca @ c -> a: r(X) <- r(X).
        "#,
    );
    let c = net.node_id("c").unwrap();
    net.run_update(c);
    // Data seeded only at a; it must traverse a→b→c.
    assert_eq!(net.node(c).ldb().get("r").unwrap().len(), 1);
    let a = net.node_id("a").unwrap();
    assert_eq!(net.node(a).ldb().get("r").unwrap().len(), 1);
}

/// "a 'batch' update algorithm will be such that all the nodes
/// consistently and optimally propagate all the relevant data to their
/// neighbours, allowing for subsequent local queries to be answered
/// locally within a node, without fetching data from other nodes at
/// query time."
#[test]
fn after_batch_update_queries_are_local_everywhere() {
    let scenario = Scenario {
        topology: Topology::Grid { w: 3, h: 2 },
        tuples_per_node: 20,
        rule_style: RuleStyle::CopyGav,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 4,
    };
    let mut net = CoDbNetwork::build(scenario.build_config(), SimConfig::default()).unwrap();
    net.run_update(scenario.sink());
    // Every node answers its own relation locally with zero traffic.
    for i in 0..scenario.topology.node_count() {
        let id = codb::core::NodeId(i as u64);
        let rel = Scenario::relation_of(i);
        let q = net.run_query_text(id, &format!("ans(X, Y) :- {rel}(X, Y)."), false).unwrap();
        assert_eq!(q.messages, 0, "node {i} answers locally");
        assert!(!q.result.answers.is_empty());
    }
}

/// "local inconsistency does not propagate" — a node whose data
/// contradicts another's (same key, different values) simply contributes
/// both tuples under set semantics; nothing downstream breaks.
#[test]
fn conflicting_sources_coexist_without_breaking_anyone() {
    let mut net = build(
        r#"
        node src1
        node src2
        node sink
        schema src1: fact(str, int)
        schema src2: fact(str, int)
        schema sink: fact(str, int)
        data src1: fact("pi", 3).
        data src2: fact("pi", 4).
        rule a @ src1 -> sink: fact(N, V) <- fact(N, V).
        rule b @ src2 -> sink: fact(N, V) <- fact(N, V).
        "#,
    );
    let sink = net.node_id("sink").unwrap();
    let outcome = net.run_update(sink);
    assert_eq!(outcome.summary.tuples_added, 2);
    let q = net.run_query_text(sink, r#"ans(V) :- fact("pi", V)."#, false).unwrap();
    assert_eq!(q.result.answers.len(), 2, "both claims coexist");
}

/// Two independent runs of the same update produce isomorphic databases
/// (identical up to marked-null renaming) — the well-definedness of the
/// materialised state.
#[test]
fn independent_runs_are_null_isomorphic() {
    let scenario = Scenario {
        topology: Topology::Chain(4),
        tuples_per_node: 12,
        rule_style: RuleStyle::ProjectGlav,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 99,
    };
    let run = |latency: u64| {
        let pipe = PipeConfig::lan().with_latency(SimTime::from_millis(latency));
        let sim = SimConfig { seed: latency, default_pipe: pipe, max_events: 0 };
        let settings = codb::core::NodeSettings { pipe, ..Default::default() };
        let mut net =
            CoDbNetwork::build_with(scenario.build_config(), sim, settings, false).unwrap();
        net.run_update(scenario.sink());
        net.node(scenario.sink()).ldb().clone()
    };
    let a = run(1);
    let b = run(9);
    assert!(isomorphic(&a, &b), "fixpoints differ only in null labels");
    assert!(homomorphic(&a, &b) && homomorphic(&b, &a));
}

/// The super-peer's aggregated report contains what the demo displays:
/// total execution time, per-rule messages/volumes and the longest
/// propagation path.
#[test]
fn superpeer_report_has_the_demo_fields() {
    let scenario = Scenario {
        topology: Topology::Tree { height: 2 },
        tuples_per_node: 10,
        rule_style: RuleStyle::CopyGav,
        dist: DataDist::Uniform { domain: 1 << 40 },
        seed: 8,
    };
    let mut net =
        CoDbNetwork::build_with_superpeer(scenario.build_config(), SimConfig::default()).unwrap();
    let outcome = net.run_update(codb::core::NodeId(0));
    let report = net.collect_stats();
    let summary = report.summarise(outcome.update).unwrap();
    assert!(summary.total_time > SimTime::ZERO, "total execution time of an update");
    assert!(!summary.per_rule.is_empty(), "messages per coordination rule");
    assert!(summary.per_rule.values().all(|t| t.bytes > 0), "volume per message");
    assert_eq!(summary.longest_path, 2, "longest update propagation path");
    // And it serialises — the "final statistical report".
    let js = serde_json::to_string(&summary).unwrap();
    assert!(js.contains("longest_path"));
}
