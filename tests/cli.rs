//! Integration tests for the `codb-demo` command-line driver.

use std::io::Write as _;
use std::process::Command;

fn write_config() -> tempfileish::TempPath {
    let mut f = tempfileish::NamedTemp::new("codb-demo-test");
    writeln!(
        f.file,
        r#"
        node hr
        node portal
        schema hr: emp(str, int)
        schema portal: person(str, int)
        data hr: emp("alice", 30). emp("bob", 17).
        rule adults @ hr -> portal: person(N, A) <- emp(N, A), A >= 18.
        "#
    )
    .unwrap();
    f.into_path()
}

/// Minimal self-cleaning temp files (std-only; no external crates).
mod tempfileish {
    use std::fs::File;
    use std::path::PathBuf;

    pub struct NamedTemp {
        pub file: File,
        path: PathBuf,
    }

    pub struct TempPath(PathBuf);

    impl NamedTemp {
        pub fn new(prefix: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "{prefix}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            NamedTemp { file: File::create(&path).unwrap(), path }
        }

        pub fn into_path(self) -> TempPath {
            TempPath(self.path)
        }
    }

    impl TempPath {
        pub fn as_str(&self) -> &str {
            self.0.to_str().unwrap()
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

fn demo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_codb-demo"))
}

#[test]
fn update_then_show_prints_materialised_data() {
    let config = write_config();
    let out =
        demo().args([config.as_str(), "update", "portal", "show", "portal"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 tuples"), "one adult materialised:\n{stdout}");
    assert!(stdout.contains("\"alice\""));
    assert!(!stdout.contains("\"bob\""));
}

#[test]
fn query_answers_over_the_network() {
    let config = write_config();
    let out = demo()
        .args([config.as_str(), "query", "portal", "ans(N) :- person(N, A)."])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 answers"), "{stdout}");
    assert!(stdout.contains("\"alice\""));
}

#[test]
fn scoped_update_command_works() {
    let config = write_config();
    let out = demo()
        .args([config.as_str(), "scoped-update", "portal", "person", "show", "portal"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scoped update"));
    assert!(stdout.contains("\"alice\""));
}

#[test]
fn stats_emits_json() {
    let config = write_config();
    let out = demo().args([config.as_str(), "update", "portal", "stats"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json_start = stdout.find('{').expect("json present");
    let v: serde_json::Value = serde_json::from_str(stdout[json_start..].trim()).unwrap();
    assert!(v.get("nodes").is_some());
}

#[test]
fn bad_inputs_fail_cleanly() {
    // Missing file.
    let out = demo().args(["/nonexistent.codb", "stats"]).output().unwrap();
    assert!(!out.status.success());
    // Unknown command.
    let config = write_config();
    let out = demo().args([config.as_str(), "frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
    // Unknown node.
    let out = demo().args([config.as_str(), "update", "nope"]).output().unwrap();
    assert!(!out.status.success());
    // Bad query.
    let out =
        demo().args([config.as_str(), "query", "portal", "ans(X) :- nope((("]).output().unwrap();
    assert!(!out.status.success());
}

/// Self-cleaning scratch dirs come from codb-store; this wraps one with
/// the &str accessor the Command args want.
struct TempDir(codb::store::ScratchDir);

impl TempDir {
    fn new(prefix: &str) -> Self {
        TempDir(codb::store::ScratchDir::new(prefix))
    }

    fn as_str(&self) -> &str {
        self.0.path().to_str().unwrap()
    }
}

#[test]
fn save_then_separate_invocation_recovers_state() {
    let config = write_config();
    let data = TempDir::new("codb-demo-data");
    // First invocation: materialise at portal and checkpoint it.
    let out = demo()
        .args(["--data-dir", data.as_str(), config.as_str(), "update", "portal", "save", "portal"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("saved portal"), "{stdout}");

    // Second invocation (fresh process): no update, yet alice is there —
    // recovered from the store at startup.
    let out = demo()
        .args(["--data-dir", data.as_str(), config.as_str(), "show", "portal"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"alice\""), "recovered data visible:\n{stdout}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("recovered portal"),
        "startup recovery reported"
    );
}

#[test]
fn recover_command_restores_node_in_process() {
    let config = write_config();
    let data = TempDir::new("codb-demo-recover");
    let out = demo()
        .args([
            "--data-dir",
            data.as_str(),
            config.as_str(),
            "update",
            "portal",
            "recover",
            "portal",
            "show",
            "portal",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("recovered portal"), "{stdout}");
    assert!(stdout.contains("\"alice\""), "WAL replay restored the materialised tuple:\n{stdout}");
}

#[test]
fn save_and_recover_require_data_dir() {
    let config = write_config();
    let out = demo().args([config.as_str(), "save", "portal"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data-dir"));
    let out = demo().args([config.as_str(), "recover", "portal"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data-dir"));
    // Unknown options are rejected with usage, not ignored.
    let out = demo().args(["--bogus", config.as_str(), "stats"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

/// The snapshot files under a node's store directory, by magic prefix.
fn snap_magics(store_dir: &std::path::Path) -> Vec<[u8; 8]> {
    let mut magics = Vec::new();
    for entry in std::fs::read_dir(store_dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("snap") {
            let bytes = std::fs::read(&path).unwrap();
            magics.push(bytes[..8].try_into().unwrap());
        }
    }
    magics
}

#[test]
fn codec_flag_picks_the_on_disk_format_and_interops() {
    let config = write_config();
    let data = TempDir::new("codb-demo-codec");
    // Life 1: write a JSON store (the legacy format, via the flag).
    let out = demo()
        .args([
            "--data-dir",
            data.as_str(),
            "--codec",
            "json",
            config.as_str(),
            "update",
            "portal",
            "save",
            "portal",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let store_dir = std::path::Path::new(data.as_str()).join("portal");
    assert_eq!(snap_magics(&store_dir), vec![*b"CODBSNP1"], "json format byte on disk");

    // Life 2: reopen under the binary codec — the JSON store recovers
    // unchanged, and `save` (a checkpoint) converts it in place.
    let out = demo()
        .args([
            "--data-dir",
            data.as_str(),
            "--codec",
            "binary",
            config.as_str(),
            "save",
            "portal",
            "show",
            "portal",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"alice\""), "JSON store recovered under binary target:\n{stdout}");
    assert_eq!(snap_magics(&store_dir), vec![*b"CODBSNP2"], "save rotated the store to binary");

    // Life 3: the binary store recovers under the default codec.
    let out = demo()
        .args(["--data-dir", data.as_str(), config.as_str(), "show", "portal"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"alice\""));

    // A bogus codec fails cleanly with usage.
    let out = demo().args(["--codec", "yaml", config.as_str(), "stats"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown codec"));
}

/// The usage text and the flags the binary actually accepts must stay in
/// sync, in both directions: every flag named in the usage string is
/// accepted (asking for its argument, not rejected as unknown), and
/// every flag the binary accepts is named in the usage string.
#[test]
fn usage_text_stays_in_sync_with_accepted_flags() {
    // Provoke the usage text with an unknown option.
    let out = demo().args(["--definitely-not-a-flag"]).output().unwrap();
    assert!(!out.status.success());
    let usage = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(usage.contains("usage:"), "{usage}");

    // Direction 1: every `--flag` the usage advertises is accepted. A
    // flag passed with no argument must answer "<flag> needs ..." — an
    // unknown flag would answer "unknown option" instead.
    let mut advertised: Vec<String> = usage
        .split(|c: char| c.is_whitespace() || "[]|".contains(c))
        .filter(|w| w.starts_with("--"))
        .map(|w| w.trim_end_matches(|c: char| !c.is_ascii_alphanumeric()).to_string())
        .collect();
    advertised.sort();
    advertised.dedup();
    assert_eq!(
        advertised,
        vec!["--codec", "--data-dir", "--sync", "--trace"],
        "the usage text advertises exactly the known flags:\n{usage}"
    );
    for flag in &advertised {
        let out = demo().args([flag.as_str()]).output().unwrap();
        assert!(!out.status.success());
        let err = String::from_utf8_lossy(&out.stderr).to_string();
        assert!(
            err.contains(&format!("{flag} needs")),
            "{flag} is advertised but not accepted: {err}"
        );
        assert!(!err.contains("unknown option"), "{flag}: {err}");
    }

    // Direction 2: every command the dispatcher knows is listed too,
    // including the offline trace subcommands.
    for cmd in [
        "update",
        "scoped-update",
        "query",
        "local-query",
        "show",
        "save",
        "recover",
        "stats",
        "trace dump",
        "trace inspect",
    ] {
        assert!(usage.contains(cmd), "command {cmd} missing from usage:\n{usage}");
    }
}

/// `--trace` records a run, and the offline `trace dump` / `trace
/// inspect` subcommands read it back — the whole flight-recorder loop
/// through one binary.
#[test]
fn trace_flag_records_and_subcommands_read_back() {
    let config = write_config();
    let data = TempDir::new("codb-demo-trace");
    let trace_path = std::path::Path::new(data.as_str()).join("run.trc");
    let trace = trace_path.to_str().unwrap();
    let out = demo()
        .args([
            "--data-dir",
            data.as_str(),
            "--trace",
            trace,
            config.as_str(),
            "update",
            "portal",
            "save",
            "portal",
            "query",
            "portal",
            "ans(N) :- person(N, A).",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("wrote trace"), "flush reported");
    let magic = &std::fs::read(&trace_path).unwrap()[..8];
    assert_eq!(magic, b"CODBTRC1", "trace file magic");

    // dump prints one line per event, including layer-spanning kinds.
    let out = demo().args(["trace", "dump", trace]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let dump = String::from_utf8_lossy(&out.stdout).to_string();
    for needle in ["phase-begin update", "send", "wal", "fsync", "apply"] {
        assert!(dump.contains(needle), "dump misses {needle}:\n{dump}");
    }

    // inspect summarises phases (one per command) and traffic.
    let out = demo().args(["trace", "inspect", trace]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let inspect = String::from_utf8_lossy(&out.stdout).to_string();
    for needle in ["phases (3)", "update", "save", "query", "per-peer traffic", "tail clean"] {
        assert!(inspect.contains(needle), "inspect misses {needle}:\n{inspect}");
    }

    // Offline mode fails cleanly on garbage.
    let out = demo().args(["trace", "inspect", "/nonexistent.trc"]).output().unwrap();
    assert!(!out.status.success());
    let out = demo().args(["trace", "frobnicate", trace]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown trace subcommand"));
    let out = demo().args(["trace"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    // A non-trace file is rejected as bad magic, not misparsed.
    let out = demo().args(["trace", "dump", config.as_str()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("magic"));
}

#[test]
fn sync_flag_selects_the_policy_and_rejects_garbage() {
    let config = write_config();
    let data = TempDir::new("codb-demo-sync");
    // Group commit end to end: materialise, checkpoint, then recover in
    // a second invocation — the shared-scheduler policy must persist and
    // recover exactly like `always`.
    let out = demo()
        .args([
            "--data-dir",
            data.as_str(),
            "--sync",
            "group:16,4",
            config.as_str(),
            "update",
            "portal",
            "save",
            "portal",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = demo()
        .args([
            "--data-dir",
            data.as_str(),
            "--sync",
            "group:16,4",
            config.as_str(),
            "show",
            "portal",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("\"alice\""),
        "group-commit store recovered"
    );

    // everyN needs its N; garbage policies fail cleanly with usage.
    for bad in ["everyN", "fsync", "group:x"] {
        let out = demo().args(["--sync", bad, config.as_str(), "stats"]).output().unwrap();
        assert!(!out.status.success(), "--sync {bad} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage:"), "--sync {bad}: {err}");
    }
}
