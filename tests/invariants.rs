//! Property-based invariants (DESIGN.md §6): the distributed global update
//! must agree with a centralized chase oracle, be independent of network
//! timing, and the relational engine must agree with its reference
//! evaluator.

use codb::core::NodeId;
use codb::prelude::*;
use codb::relational::eval::evaluate_body_reference;
use codb::relational::{apply_firings, evaluate_body, GlavRule, Instance, NullFactory, RuleFiring};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Case count honouring the `PROPTEST_CASES` env var (for soak runs)
/// with a CI-friendly default.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

// ---------------------------------------------------------------------
// Centralized chase oracle: apply all rules round-robin until fixpoint,
// with the same firing-level dedup the nodes use.
// ---------------------------------------------------------------------

fn central_chase(config: &NetworkConfig, max_rounds: usize) -> BTreeMap<NodeId, Instance> {
    let mut instances: BTreeMap<NodeId, Instance> = config
        .nodes
        .iter()
        .map(|n| {
            let mut inst = Instance::with_schema(&n.schema);
            for (rel, t) in &n.data {
                inst.insert(rel, t.clone()).unwrap();
            }
            (n.id, inst)
        })
        .collect();
    let mut fired: BTreeMap<String, BTreeSet<RuleFiring>> = BTreeMap::new();
    let mut nulls = NullFactory::new(u64::MAX - 1);
    for _ in 0..max_rounds {
        let mut changed = false;
        for rule in &config.rules {
            let firings: Vec<RuleFiring> = rule
                .rule
                .fire(&instances[&rule.source])
                .unwrap()
                .into_iter()
                .filter(|f| fired.entry(rule.name().to_owned()).or_default().insert(f.clone()))
                .collect();
            if firings.is_empty() {
                continue;
            }
            let target = instances.get_mut(&rule.target).unwrap();
            let deltas = apply_firings(target, &firings, &mut nulls).unwrap();
            if !deltas.is_empty() {
                changed = true;
            }
        }
        if !changed {
            return instances;
        }
    }
    panic!("central chase did not converge within {max_rounds} rounds");
}

/// Canonical rendering of an instance with every marked null collapsed to
/// `_` — adequate for comparing runs whose only difference is null naming
/// when nulls are never shared across tuples (our ProjectGlav workloads).
fn canonical(inst: &Instance) -> BTreeMap<String, BTreeSet<Vec<String>>> {
    inst.relations()
        .map(|rel| {
            let tuples = rel
                .iter()
                .map(|t| {
                    t.values()
                        .map(|v| if v.is_null() { "_".to_owned() } else { v.to_string() })
                        .collect::<Vec<_>>()
                })
                .collect();
            (rel.name().to_owned(), tuples)
        })
        .collect()
}

fn run_distributed(
    config: &NetworkConfig,
    sim: SimConfig,
    origin: NodeId,
) -> BTreeMap<NodeId, Instance> {
    let mut net = CoDbNetwork::build(config.clone(), sim).unwrap();
    net.run_update(origin);
    config.nodes.iter().map(|n| (n.id, net.node(n.id).ldb().clone())).collect()
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (2usize..7).prop_map(Topology::Chain),
        (2usize..6).prop_map(Topology::Ring),
        (1usize..5).prop_map(|leaves| Topology::Star { leaves }),
        (1usize..3).prop_map(|height| Topology::Tree { height }),
        ((2usize..4), (2usize..3)).prop_map(|(w, h)| Topology::Grid { w, h }),
        ((3usize..7), (0u8..60), any::<u64>()).prop_map(|(n, p, seed)| Topology::RandomDag {
            n,
            p_percent: p,
            seed
        }),
        (2usize..4).prop_map(Topology::Clique),
    ]
}

fn arb_rule_style() -> impl Strategy<Value = RuleStyle> {
    prop_oneof![
        Just(RuleStyle::CopyGav),
        (0i64..50).prop_map(|threshold| RuleStyle::FilterGav { threshold }),
        Just(RuleStyle::ProjectGlav),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: crate::cases(24), ..ProptestConfig::default() })]

    /// Soundness + completeness: the distributed fixpoint equals the
    /// centralized chase, for arbitrary topologies (cyclic included) and
    /// rule styles, modulo null renaming.
    #[test]
    fn distributed_update_matches_central_chase(
        topology in arb_topology(),
        style in arb_rule_style(),
        tuples in 1usize..12,
        seed in any::<u64>(),
    ) {
        let scenario = Scenario {
            topology,
            tuples_per_node: tuples,
            rule_style: style,
            dist: DataDist::Uniform { domain: 60 },
            seed,
        };
        let config = scenario.build_config();
        let oracle = central_chase(&config, 10_000);
        let distributed = run_distributed(&config, SimConfig::default(), scenario.sink());
        for node in config.node_ids() {
            prop_assert_eq!(
                canonical(&distributed[&node]),
                canonical(&oracle[&node]),
                "node {} diverged from the chase oracle", node
            );
        }
    }

    /// Convergence: the fixpoint is independent of message timing — runs
    /// with different latencies and loss (plus retransmission) agree.
    #[test]
    fn update_fixpoint_is_timing_independent(
        topology in arb_topology(),
        tuples in 1usize..10,
        seed in any::<u64>(),
        latency_ms in 1u64..20,
        loss_seed in any::<u64>(),
    ) {
        let scenario = Scenario {
            topology,
            tuples_per_node: tuples,
            rule_style: RuleStyle::CopyGav, // GAV: exact comparison
            dist: DataDist::Uniform { domain: 50 },
            seed,
        };
        let config = scenario.build_config();
        let a = run_distributed(&config, SimConfig::default(), scenario.sink());

        let lossy_pipe = PipeConfig::lan()
            .with_latency(SimTime::from_millis(latency_ms))
            .with_loss(0.10);
        let sim = SimConfig { seed: loss_seed, default_pipe: lossy_pipe, max_events: 5_000_000 };
        let settings = NodeSettings {
            retransmit_after: SimTime::from_millis(40),
            pipe: lossy_pipe,
            ..Default::default()
        };
        let mut net = CoDbNetwork::build_with(config.clone(), sim, settings, false).unwrap();
        net.run_update(scenario.sink());

        for node in config.node_ids() {
            prop_assert_eq!(
                canonical(net.node(node).ldb()),
                canonical(&a[&node]),
                "node {} diverged under loss/latency", node
            );
        }
    }

    /// Query/update agreement on acyclic topologies: query-time answering
    /// returns exactly what a local query returns after materialisation.
    #[test]
    fn query_time_matches_materialised_on_dags(
        n in 2usize..6,
        p in 0u8..50,
        tuples in 1usize..10,
        seed in any::<u64>(),
    ) {
        let scenario = Scenario {
            topology: Topology::RandomDag { n, p_percent: p, seed },
            tuples_per_node: tuples,
            rule_style: RuleStyle::CopyGav,
            dist: DataDist::Uniform { domain: 40 },
            seed,
        };
        let config = scenario.build_config();
        let mut net1 = CoDbNetwork::build(config.clone(), SimConfig::default()).unwrap();
        let q = net1.run_query(scenario.sink(), scenario.sink_query(), true);

        let mut net2 = CoDbNetwork::build(config, SimConfig::default()).unwrap();
        net2.run_update(scenario.sink());
        let local = net2.run_query(scenario.sink(), scenario.sink_query(), false);

        prop_assert_eq!(q.result.answers, local.result.answers);
    }

    /// Query-time answering is *sound* (a subset of the fixpoint) on every
    /// topology, cyclic ones included.
    #[test]
    fn query_time_is_sound_subset(
        topology in arb_topology(),
        tuples in 1usize..8,
        seed in any::<u64>(),
    ) {
        let scenario = Scenario {
            topology,
            tuples_per_node: tuples,
            rule_style: RuleStyle::CopyGav,
            dist: DataDist::Uniform { domain: 40 },
            seed,
        };
        let config = scenario.build_config();
        let mut net1 = CoDbNetwork::build(config.clone(), SimConfig::default()).unwrap();
        let q = net1.run_query(scenario.sink(), scenario.sink_query(), true);

        let mut net2 = CoDbNetwork::build(config, SimConfig::default()).unwrap();
        net2.run_update(scenario.sink());
        let local = net2.run_query(scenario.sink(), scenario.sink_query(), false);

        let fixpoint: BTreeSet<_> = local.result.answers.into_iter().collect();
        for t in &q.result.answers {
            prop_assert!(fixpoint.contains(t), "{t} answered but not in fixpoint");
        }
    }

    /// Every update terminates with every node closed and every link
    /// accounted (the summary sees all participating nodes).
    #[test]
    fn updates_terminate_with_all_nodes_closed(
        topology in arb_topology(),
        seed in any::<u64>(),
    ) {
        let scenario = Scenario {
            topology,
            tuples_per_node: 3,
            rule_style: RuleStyle::CopyGav,
            dist: DataDist::Uniform { domain: 30 },
            seed,
        };
        let config = scenario.build_config();
        let n = config.nodes.len() as u64;
        let mut net = CoDbNetwork::build(config, SimConfig::default()).unwrap();
        let outcome = net.run_update(scenario.sink());
        prop_assert_eq!(outcome.summary.nodes, n);
        let report = net.network_report();
        for (id, node) in &report.nodes {
            let r = &node.updates[&outcome.update];
            prop_assert!(r.closed_at.is_some(), "node {} never closed", id);
        }
    }
}

// ---------------------------------------------------------------------
// Relational-engine invariants.
// ---------------------------------------------------------------------

mod relational_props {
    use super::*;
    use codb::relational::{
        Atom, CmpOp, Comparison, CqBody, RelationSchema, Term, Tuple, Value, ValueType, Var,
    };

    fn arb_instance(max_tuples: usize) -> impl Strategy<Value = Instance> {
        // Two binary relations over a small int domain.
        (
            proptest::collection::vec((0i64..8, 0i64..8), 0..max_tuples),
            proptest::collection::vec((0i64..8, 0i64..8), 0..max_tuples),
        )
            .prop_map(|(e, f)| {
                let mut inst = Instance::new();
                inst.add_relation(RelationSchema::with_types(
                    "e",
                    &[ValueType::Int, ValueType::Int],
                ));
                inst.add_relation(RelationSchema::with_types(
                    "f",
                    &[ValueType::Int, ValueType::Int],
                ));
                for (a, b) in e {
                    inst.insert("e", Tuple::new(vec![Value::Int(a), Value::Int(b)])).unwrap();
                }
                for (a, b) in f {
                    inst.insert("f", Tuple::new(vec![Value::Int(a), Value::Int(b)])).unwrap();
                }
                inst
            })
    }

    fn arb_term(vars: u32) -> impl Strategy<Value = Term> {
        prop_oneof![
            (0..vars).prop_map(|v| Term::Var(Var(v))),
            (0i64..8).prop_map(|c| Term::Const(Value::Int(c))),
        ]
    }

    fn arb_body() -> impl Strategy<Value = CqBody> {
        let atom = (prop_oneof![Just("e"), Just("f")], arb_term(4), arb_term(4))
            .prop_map(|(r, t1, t2)| Atom::new(r, vec![t1, t2]));
        let cmp = (
            arb_term(4),
            arb_term(4),
            prop_oneof![
                Just(CmpOp::Eq),
                Just(CmpOp::Ne),
                Just(CmpOp::Lt),
                Just(CmpOp::Le),
                Just(CmpOp::Gt),
                Just(CmpOp::Ge),
            ],
        )
            .prop_map(|(l, r, op)| Comparison { lhs: l, op, rhs: r });
        (proptest::collection::vec(atom, 1..4), proptest::collection::vec(cmp, 0..3))
            .prop_map(|(atoms, comparisons)| CqBody::new(atoms, comparisons))
            .prop_filter("range-restricted", |b| b.check_safe().is_ok())
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: crate::cases(128), ..ProptestConfig::default() })]

        /// The production evaluator agrees with the naive reference
        /// evaluator on random instances and bodies.
        #[test]
        fn evaluator_matches_reference(inst in arb_instance(12), body in arb_body()) {
            let mut a = evaluate_body(&body, &inst).unwrap();
            let mut b = evaluate_body_reference(&body, &inst).unwrap();
            a.sort(); a.dedup();
            b.sort(); b.dedup();
            prop_assert_eq!(a, b);
        }

        /// Semi-naive delta evaluation produces exactly the derivations
        /// that use the delta: eval(I ∪ Δ) = eval(I) ∪ delta-eval(Δ).
        #[test]
        fn delta_evaluation_is_exact(
            inst in arb_instance(10),
            body in arb_body(),
            delta in proptest::collection::vec((0i64..8, 0i64..8), 1..5),
        ) {
            // Full evaluation over I ∪ Δ (Δ inserted into relation e).
            let mut with_delta = inst.clone();
            let delta_tuples: Vec<Tuple> = delta
                .iter()
                .map(|(a, b)| Tuple::new(vec![Value::Int(*a), Value::Int(*b)]))
                .collect();
            let new: Vec<Tuple> =
                with_delta.insert_all("e", delta_tuples.clone()).unwrap();

            let mut full: Vec<_> = evaluate_body(&body, &with_delta).unwrap();
            full.sort(); full.dedup();

            // Old evaluation ∪ semi-naive delta evaluation.
            let mut combined: Vec<_> = evaluate_body(&body, &inst).unwrap();
            combined.extend(
                codb::relational::evaluate_body_delta(&body, &with_delta, "e", &new).unwrap()
            );
            combined.sort(); combined.dedup();

            prop_assert_eq!(full, combined);
        }

        /// Rule firing + instantiation is idempotent under template dedup:
        /// re-applying the same firings adds nothing.
        #[test]
        fn rule_application_idempotent(inst in arb_instance(10), seed in any::<u64>()) {
            let rule = GlavRule::new(
                "p",
                vec![Atom::new("f", vec![Term::Var(Var(0)), Term::Var(Var(2))])],
                CqBody::new(vec![Atom::new("e", vec![Term::Var(Var(0)), Term::Var(Var(1))])], vec![]),
                vec!["X".into(), "Y".into(), "Z".into()],
            ).unwrap();
            let firings = rule.fire(&inst).unwrap();
            let mut target = Instance::new();
            target.add_relation(
                codb::relational::RelationSchema::with_types("f", &[ValueType::Int, ValueType::Int])
            );
            let mut nulls = NullFactory::new(seed % 1000);
            let d1 = apply_firings(&mut target, &firings, &mut nulls).unwrap();
            let before = target.tuple_count();
            // The node-level recv-cache drops duplicate templates before
            // apply; emulate by not re-applying — but even a raw re-apply
            // of *ground* firings must add nothing.
            let ground: Vec<RuleFiring> =
                firings.iter().filter(|f| f.is_ground()).cloned().collect();
            let d2 = apply_firings(&mut target, &ground, &mut nulls).unwrap();
            prop_assert!(d2.is_empty());
            prop_assert_eq!(target.tuple_count(), before);
            let _ = d1;
        }
    }
}

#[test]
fn central_chase_smoke() {
    let scenario = Scenario {
        topology: Topology::Ring(3),
        tuples_per_node: 4,
        rule_style: RuleStyle::CopyGav,
        dist: DataDist::Uniform { domain: 100 },
        seed: 3,
    };
    let config = scenario.build_config();
    let oracle = central_chase(&config, 1000);
    // Ring of copies: every node holds the union (12 tuples, barring
    // collisions which the 100-domain may produce).
    let count = oracle[&NodeId(0)].get("r0").unwrap().len();
    assert!((10..=12).contains(&count), "got {count}");
}

// ---------------------------------------------------------------------
// Algebra ↔ CQ-evaluator cross-validation.
// ---------------------------------------------------------------------

mod algebra_props {
    use super::*;
    use codb::relational::algebra;
    use codb::relational::{
        Atom, CmpOp, ConjunctiveQuery, CqBody, Relation, RelationSchema, Term, Tuple, Value,
        ValueType, Var,
    };

    fn rel_from(pairs: &[(i64, i64)], name: &str) -> Relation {
        let mut r =
            Relation::new(RelationSchema::with_types(name, &[ValueType::Int, ValueType::Int]));
        for (a, b) in pairs {
            r.insert(Tuple::new(vec![Value::Int(*a), Value::Int(*b)])).unwrap();
        }
        r
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: crate::cases(64), ..ProptestConfig::default() })]

        /// σ by comparison equals the CQ `ans(X,Y) :- r(X,Y), Y op c`.
        #[test]
        fn select_matches_cq(
            pairs in proptest::collection::vec((0i64..10, 0i64..10), 0..20),
            c in 0i64..10,
        ) {
            let r = rel_from(&pairs, "r");
            let selected = algebra::select(&r, 1, CmpOp::Ge, &Value::Int(c)).unwrap();

            let mut inst = Instance::new();
            inst.insert_relation(r.clone());
            let q = ConjunctiveQuery::new(
                Atom::new("ans", vec![Term::Var(Var(0)), Term::Var(Var(1))]),
                CqBody::new(
                    vec![Atom::new("r", vec![Term::Var(Var(0)), Term::Var(Var(1))])],
                    vec![codb::relational::Comparison::new(Var(1), CmpOp::Ge, Value::Int(c))],
                ),
                vec!["X".into(), "Y".into()],
            ).unwrap();
            let answers = codb::relational::answer_query(&q, &inst).unwrap();
            prop_assert_eq!(selected.sorted(), answers);
        }

        /// ⋈ equals the CQ `ans(X,Y,Z) :- a(X,Y), b(Y,Z)`.
        #[test]
        fn join_matches_cq(
            pa in proptest::collection::vec((0i64..6, 0i64..6), 0..15),
            pb in proptest::collection::vec((0i64..6, 0i64..6), 0..15),
        ) {
            let a = rel_from(&pa, "a");
            let b = rel_from(&pb, "b");
            let joined = algebra::join(&a, &b, "j", &[(1, 0)]).unwrap();

            let mut inst = Instance::new();
            inst.insert_relation(a);
            inst.insert_relation(b);
            let q = codb::relational::parse_query(
                "ans(X, Y, Z) :- a(X, Y), b(Y, Z)."
            ).unwrap();
            let answers = codb::relational::answer_query(&q, &inst).unwrap();
            prop_assert_eq!(joined.sorted(), answers);
        }

        /// π onto column 0 equals the CQ `ans(X) :- r(X, Y)`.
        #[test]
        fn project_matches_cq(
            pairs in proptest::collection::vec((0i64..10, 0i64..10), 0..20),
        ) {
            let r = rel_from(&pairs, "r");
            let projected = algebra::project(&r, "p", &[0]).unwrap();
            let mut inst = Instance::new();
            inst.insert_relation(r);
            let q = codb::relational::parse_query("ans(X) :- r(X, Y).").unwrap();
            let answers = codb::relational::answer_query(&q, &inst).unwrap();
            prop_assert_eq!(projected.sorted(), answers);
        }

        /// Snapshot round-trip is lossless for arbitrary instances.
        #[test]
        fn snapshot_round_trip(
            pairs in proptest::collection::vec((0i64..50, 0i64..50), 0..30),
            invented in 0u64..20,
        ) {
            let mut inst = Instance::new();
            inst.insert_relation(rel_from(&pairs, "r"));
            let mut nulls = NullFactory::new(3);
            for _ in 0..invented {
                let label = nulls.fresh();
                inst.get_mut("r").unwrap().insert(Tuple::new(vec![
                    Value::Null(label),
                    Value::Int(0),
                ])).unwrap();
            }
            let snap = codb::relational::Snapshot::capture(&inst, &nulls);
            let restored = codb::relational::Snapshot::from_bytes(&snap.to_bytes().unwrap()).unwrap();
            prop_assert_eq!(restored.instance, inst);
            prop_assert_eq!(restored.nulls.invented(), invented);
        }
    }
}

// ---------------------------------------------------------------------
// Text-format round trips.
// ---------------------------------------------------------------------

mod text_props {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: crate::cases(48), ..ProptestConfig::default() })]

        /// Generated network configurations survive the text format:
        /// `parse(to_text(c))` reaches a fixed point and preserves the
        /// network's structure (variable indices may be re-interned, so
        /// the comparison is on the rendered form and the shape).
        #[test]
        fn config_text_format_is_a_fixed_point(
            topology in arb_topology(),
            style in arb_rule_style(),
            tuples in 0usize..6,
            seed in any::<u64>(),
        ) {
            let scenario = Scenario {
                topology,
                tuples_per_node: tuples.max(1),
                rule_style: style,
                dist: DataDist::Uniform { domain: 50 },
                seed,
            };
            let config = scenario.build_config();
            let text = config.to_text();
            let parsed = NetworkConfig::parse(&text)
                .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
            prop_assert_eq!(parsed.to_text(), text);
            prop_assert_eq!(parsed.nodes.len(), config.nodes.len());
            prop_assert_eq!(parsed.rules.len(), config.rules.len());
            for (a, b) in parsed.nodes.iter().zip(&config.nodes) {
                prop_assert_eq!(&a.schema, &b.schema);
                prop_assert_eq!(a.data.len(), b.data.len());
            }
            prop_assert!(parsed.validate().is_ok());
        }

        /// Rule display is a parse fixed point: `parse(display(r))`
        /// renders identically.
        #[test]
        fn rule_display_is_a_parse_fixed_point(
            topology in arb_topology(),
            style in arb_rule_style(),
        ) {
            let scenario = Scenario {
                topology,
                tuples_per_node: 1,
                rule_style: style,
                dist: DataDist::Uniform { domain: 10 },
                seed: 1,
            };
            for rule in &scenario.build_config().rules {
                let text = rule.rule.to_string();
                let parsed = codb::relational::parse_rule(&text)
                    .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
                prop_assert_eq!(parsed.to_string(), text);
            }
        }

        /// Parsed user queries evaluated against generated instances never
        /// panic and agree with the reference evaluator.
        #[test]
        fn parsed_queries_evaluate_safely(
            pairs in proptest::collection::vec((0i64..9, 0i64..9), 0..12),
            threshold in 0i64..9,
        ) {
            let mut inst = Instance::new();
            inst.add_relation(codb::relational::RelationSchema::with_types(
                "e",
                &[codb::relational::ValueType::Int, codb::relational::ValueType::Int],
            ));
            for (a, b) in &pairs {
                inst.insert("e", codb::relational::Tuple::new(vec![
                    codb::relational::Value::Int(*a),
                    codb::relational::Value::Int(*b),
                ])).unwrap();
            }
            let q = codb::relational::parse_query(
                &format!("ans(X) :- e(X, Y), Y >= {threshold}.")
            ).unwrap();
            let fast = codb::relational::answer_query(&q, &inst).unwrap();
            let mut slow: Vec<_> = evaluate_body_reference(&q.body, &inst)
                .unwrap()
                .into_iter()
                .map(|b| b[0].clone().unwrap())
                .collect();
            slow.sort();
            slow.dedup();
            let fast_vals: Vec<_> = fast.iter().map(|t| t[0].clone()).collect();
            prop_assert_eq!(fast_vals, slow);
        }
    }
}
