//! Golden-file tests: committed store directories in **both** on-disk
//! formats, pinned against byte drift.
//!
//! `tests/fixtures/golden-json/` is a store exactly as the seed/PR-3 JSON
//! format wrote it (format byte `'1'`); `tests/fixtures/golden-binary/`
//! is the same logical store in the binary codec (format byte `'2'`).
//! Both were produced by [`build_golden`] (re-runnable via the `#[ignore]`d
//! regeneration test below) and hold a snapshot, a WAL tail with applied /
//! local-insert / counter records, and the `codb.epoch` file.
//!
//! The tests assert that both fixtures recover to the **identical**
//! instance / null factory / receive caches / protocol counters / epoch —
//! the meaning of the bytes is pinned in [`expected_final`], so a future
//! encoder+decoder pair that silently agrees on *different* semantics
//! still fails here, and an old disk written by either format keeps
//! recovering forever. A second test pins the upgrade story: opening the
//! JSON fixture with a binary target converts it to binary at the first
//! checkpoint, in place, losslessly.

use codb::prelude::*;
use codb::relational::glav::TField;
use codb::relational::tup;
use codb::relational::{apply_firings, NullFactory, RuleFiring, Snapshot};
use codb::store::{RecvCaches, ScratchDir};
use std::path::{Path, PathBuf};

fn fixture_dir(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// Recursive-free flat copy (store dirs hold only regular files).
fn copy_store(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// A firing already materialised before the snapshot (sits in the receive
/// cache and in the instance).
fn firing_seen() -> RuleFiring {
    RuleFiring {
        atoms: vec![(
            "emp".to_owned(),
            vec![TField::Const(Value::str("carol")), TField::Const(Value::Int(25))],
        )],
    }
}

/// A firing applied *after* the snapshot (lives only in the WAL tail; its
/// existential field makes replay consult the null factory).
fn firing_tail() -> RuleFiring {
    RuleFiring {
        atoms: vec![("emp".to_owned(), vec![TField::Const(Value::str("dave")), TField::Fresh(0)])],
    }
}

/// The state captured in the fixtures' generation-0 snapshot, plus the
/// caches and counters checkpointed into the WAL head.
fn base_state() -> (Instance, NullFactory, RecvCaches, ProtocolCounters) {
    let mut inst = Instance::new();
    inst.add_relation(RelationSchema::with_types("emp", &[ValueType::Str, ValueType::Int]));
    inst.add_relation(RelationSchema::with_types("flags", &[ValueType::Bool, ValueType::Int]));
    inst.insert("emp", tup!["alice", 30]).unwrap();
    inst.insert("emp", tup!["carol", 25]).unwrap();
    inst.insert("flags", tup![true, 1]).unwrap();
    let mut nulls = NullFactory::new(7);
    let n = nulls.fresh();
    inst.get_mut("emp").unwrap().insert(Tuple::new(vec![Value::Null(n), Value::Int(41)])).unwrap();
    let mut recv = RecvCaches::new();
    recv.insert("r_in".to_owned(), [firing_seen()].into_iter().collect());
    let counters = ProtocolCounters { update_seq: 3, query_seq: 1, req_seq: 9 };
    (inst, nulls, recv, counters)
}

/// Builds one golden store directory: generation-0 snapshot of
/// [`base_state`] plus a WAL tail of one applied firing, one local insert
/// and one counter bump. Epoch stays 0 (no reopen).
fn build_golden(dir: &Path, codec: Codec) {
    let (inst, nulls, recv, counters) = base_state();
    let mut store = Store::create(
        dir,
        &Snapshot::capture(&inst, &nulls),
        &recv,
        &counters,
        SyncPolicy::Always,
        codec,
    )
    .unwrap();
    store
        .append(&WalRecord::Applied { rule: "r_in".into(), firings: vec![firing_tail()] })
        .unwrap();
    store
        .append(&WalRecord::LocalInsert { relation: "flags".into(), tuple: tup![false, 2] })
        .unwrap();
    store
        .append(&WalRecord::Counters { counters: ProtocolCounters { update_seq: 4, ..counters } })
        .unwrap();
    store.sync().unwrap();
}

/// What recovery of a golden store must reconstruct — the byte meaning
/// both formats are pinned to.
fn expected_final() -> (Instance, NullFactory, RecvCaches, ProtocolCounters) {
    let (mut inst, mut nulls, mut recv, counters) = base_state();
    // The WAL tail replays on top: the tail firing instantiates its
    // existential as the factory's next null (#7:1)...
    recv.get_mut("r_in").unwrap().insert(firing_tail());
    apply_firings(&mut inst, &[firing_tail()], &mut nulls).unwrap();
    // ...the local insert lands in `flags`, and the last counter record
    // wins.
    inst.insert("flags", tup![false, 2]).unwrap();
    (inst, nulls, recv, ProtocolCounters { update_seq: 4, ..counters })
}

/// Regenerates the committed fixtures. Run explicitly after an
/// *intentional* format change (and say so in the PR):
/// `cargo test --test golden -- --ignored regenerate`
#[test]
#[ignore = "rewrites the committed golden fixtures"]
fn regenerate_golden_fixtures() {
    for (name, codec) in [("golden-json", Codec::Json), ("golden-binary", Codec::Binary)] {
        let dir = fixture_dir(name);
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        build_golden(&dir, codec);
        println!("rewrote {}", dir.display());
    }
}

/// Both committed formats recover to the identical pinned state: same
/// instance, same null factory, same receive caches, same counters, same
/// epoch. This is what lets every future PR change the codec code with
/// confidence that old disks still mean the same thing.
#[test]
fn golden_stores_recover_identical_pinned_state() {
    let scratch = ScratchDir::new("golden-recover");
    let (want_inst, want_nulls, want_recv, want_counters) = expected_final();
    let mut recovered = Vec::new();
    for (name, codec) in [("golden-json", Codec::Json), ("golden-binary", Codec::Binary)] {
        // Fixtures are opened from a copy: recovery legitimately writes
        // (epoch bump, torn-tail truncation) and must not dirty git.
        let copy = scratch.path().join(name);
        copy_store(&fixture_dir(name), &copy);
        let (_store, rec) = Store::open(&copy, SyncPolicy::Always, Codec::Binary).unwrap();
        assert_eq!(rec.snapshot_codec, codec, "{name}: format byte detected");
        assert_eq!(rec.wal_codec, codec, "{name}: WAL format byte detected");
        assert_eq!(rec.instance, want_inst, "{name}: instance pinned");
        assert_eq!(rec.nulls.invented(), want_nulls.invented(), "{name}: factory pinned");
        assert_eq!(rec.nulls.origin(), want_nulls.origin(), "{name}: factory origin pinned");
        assert_eq!(rec.recv_cache, want_recv, "{name}: receive caches pinned");
        assert_eq!(rec.counters, want_counters, "{name}: counters pinned");
        assert_eq!(rec.epoch, 1, "{name}: first open of an epoch-0 fixture");
        assert_eq!(rec.generation, 0);
        assert_eq!(rec.wal_records_replayed, 5, "caches + counters + 3 tail records");
        assert!(!rec.torn_tail);
        recovered.push(rec);
    }
    // Belt and braces: the two recoveries agree with each other too.
    let b = recovered.pop().unwrap();
    let a = recovered.pop().unwrap();
    assert_eq!(a.instance, b.instance);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.epoch, b.epoch);
    assert_eq!(a.recv_cache, b.recv_cache);
}

/// The acceptance criterion's upgrade half: a store written by the
/// seed/PR-3 JSON format recovers unchanged under a binary-target open,
/// and one checkpoint converts it to binary **in place** — after which it
/// still recovers the same state (now through the binary decoder).
#[test]
fn legacy_json_fixture_converts_to_binary_at_checkpoint() {
    let scratch = ScratchDir::new("golden-upgrade");
    let copy = scratch.path().join("store");
    copy_store(&fixture_dir("golden-json"), &copy);

    let (mut store, rec) = Store::open(&copy, SyncPolicy::Always, Codec::Binary).unwrap();
    assert_eq!(rec.snapshot_codec, Codec::Json);
    assert_eq!(store.wal_codec(), Codec::Json, "appends continue in the legacy format");
    let (want_inst, want_nulls, want_recv, want_counters) = expected_final();
    assert_eq!(rec.instance, want_inst, "legacy store recovers unchanged");

    // The checkpoint is the conversion point.
    store
        .checkpoint(&Snapshot::capture(&rec.instance, &rec.nulls), &rec.recv_cache, &rec.counters)
        .unwrap();
    assert_eq!(store.wal_codec(), Codec::Binary);
    drop(store);
    for entry in std::fs::read_dir(&copy).unwrap() {
        let path = entry.unwrap().path();
        let header = std::fs::read(&path).unwrap();
        match path.extension().and_then(|e| e.to_str()) {
            Some("snap") => assert_eq!(Codec::detect_snap(&header), Some(Codec::Binary)),
            Some("wal") => assert_eq!(Codec::detect_wal(&header), Some(Codec::Binary)),
            _ => {} // codb.epoch
        }
    }

    // Same state, now decoded from binary files.
    let (_store, rec2) = Store::open(&copy, SyncPolicy::Always, Codec::Binary).unwrap();
    assert_eq!(rec2.snapshot_codec, Codec::Binary);
    assert_eq!(rec2.instance, want_inst);
    assert_eq!(rec2.nulls.invented(), want_nulls.invented());
    assert_eq!(rec2.recv_cache, want_recv);
    assert_eq!(rec2.counters, want_counters);
    assert_eq!(rec2.epoch, 2, "epoch keeps counting across the conversion");
}

/// The committed binary fixture is strictly smaller than its JSON twin —
/// the size lever, pinned on real bytes rather than a synthetic bench.
#[test]
fn golden_binary_fixture_is_smaller_on_disk() {
    let size = |name: &str| -> u64 {
        std::fs::read_dir(fixture_dir(name))
            .unwrap()
            .map(|e| e.unwrap().metadata().unwrap().len())
            .sum()
    };
    let json = size("golden-json");
    let binary = size("golden-binary");
    assert!(binary < json, "binary {binary} bytes vs json {json} bytes");
}
