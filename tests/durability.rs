//! System-level durability tests: the acceptance scenario for the
//! `codb-store` subsystem — a node killed mid-update, reopened from its
//! data directory, recovers snapshot + WAL state exactly and reconverges
//! to the network fixpoint of a never-crashed control network.

use codb::core::NodeId;
use codb::prelude::*;
use codb::store::ScratchDir;

/// The headline acceptance scenario: kill a chain node mid-flood, recover
/// from disk, verify exact (instance + null factory) equality with a
/// control node after reconvergence.
#[test]
fn crashed_node_recovers_exactly_and_reconverges() {
    let tmp = ScratchDir::new("durability-accept");
    let scenario = Scenario { tuples_per_node: 30, ..Scenario::quick(Topology::Chain(5)) };
    let plan = CrashRestartPlan::new(scenario, NodeId(2));
    let report = run_crash_restart(&plan, tmp.path()).unwrap();
    assert!(report.killed_mid_update, "kill must land mid-update: {report:?}");
    assert!(report.instances_equal, "instance equality: {report:?}");
    assert!(report.factories_equal, "null-factory equality: {report:?}");
    assert!(report.all_nodes_equal, "whole-network fixpoint: {report:?}");
    assert!(
        report.victim_tuples_final >= report.victim_tuples_at_recovery,
        "reconvergence only adds: {report:?}"
    );
}

/// The crash-rejoin acceptance scenario (ISSUE 3): with incremental
/// updates ON, the update *initiator* crashes mid-own-update, recovers,
/// runs the rejoin handshake, and initiates the reconvergence update
/// itself — its persisted counters resume the id space, its new epoch
/// keys the id, and the network still reaches the control fixpoint.
#[test]
fn recovered_initiator_rejoins_first_class_with_incremental_updates() {
    let tmp = ScratchDir::new("durability-rejoin");
    let scenario = Scenario { tuples_per_node: 25, ..Scenario::quick(Topology::Chain(4)) };
    let victim = scenario.sink();
    let plan =
        CrashRestartPlan { recovered_initiates: true, ..CrashRestartPlan::new(scenario, victim) };
    assert!(plan.incremental_updates, "incremental updates are the default");
    let report = run_crash_restart(&plan, tmp.path()).unwrap();
    assert!(report.killed_mid_update, "{report:?}");
    assert!(report.rejoin_messages >= 2, "handshake must run: {report:?}");
    assert_eq!(report.reconverge_origin, victim, "{report:?}");
    assert_eq!(report.recovered_update.epoch, report.victim_epoch, "{report:?}");
    assert!(report.recovered_update.seq >= 1, "counters resumed: {report:?}");
    assert!(report.recovered_exactly(), "{report:?}");
    assert!(report.all_nodes_equal, "{report:?}");
}

/// Seeded fault-injection schedules reconverge: the system-level pin of
/// the `codb_workload::faultplan` property (a fixed seed here; the full
/// property test lives in the workload crate, `PROPTEST_CASES`-scalable).
#[test]
fn seeded_fault_schedule_reconverges_to_control() {
    let tmp = ScratchDir::new("durability-faultplan");
    let scenario = Scenario { tuples_per_node: 10, ..Scenario::quick(Topology::Ring(4)) };
    let plan = codb::workload::FaultPlan::generate(scenario, 2);
    assert!(plan.crash_count() > 0, "seed 2 schedules at least one crash: {plan:?}");
    let report = codb::workload::run_fault_plan(&plan, tmp.path()).unwrap();
    assert!(report.converged, "replay with seed {}: {report:?}", report.seed);
}

/// Recovery through `open_persistence_all` on an *already-started*
/// network (no restart, so no `on_start`) must still run the rejoin
/// handshake: the announcement goes out lazily on the node's next
/// activity, neighbors drop their incremental sent-caches toward it, and
/// the data the recovered node rolled back past is re-sent. Without the
/// lazy announce, hr's sent-cache would suppress "alice" forever.
#[test]
fn live_open_recovery_still_triggers_rejoin_invalidation() {
    let tmp = ScratchDir::new("durability-liveopen");
    let config_text = r#"
        node hr
        node portal
        schema hr: emp(str, int)
        schema portal: person(str, int)
        data hr: emp("alice", 30).
        rule adults @ hr -> portal: person(N, A) <- emp(N, A), A >= 18.
    "#;
    let config = NetworkConfig::parse(config_text).unwrap();

    // Life 1: persist the *seed* state only (no update), tear down.
    {
        let mut net = CoDbNetwork::build(config.clone(), SimConfig::default()).unwrap();
        net.open_persistence_all(tmp.path(), SyncPolicy::Always, Codec::Binary).unwrap();
    }

    // Life 2: run an update first — hr's incremental sent-cache toward
    // portal now holds alice — then open persistence on the live
    // network, rolling portal back to the empty seed state.
    let mut net = CoDbNetwork::build(config, SimConfig::default()).unwrap();
    let portal = net.node_id("portal").unwrap();
    net.run_update(portal);
    assert_eq!(net.node(portal).ldb().tuple_count(), 1, "alice materialised");
    let recovered =
        net.open_persistence_all(tmp.path(), SyncPolicy::Always, Codec::Binary).unwrap();
    assert_eq!(recovered.len(), 2, "{recovered:?}");
    assert_eq!(net.node(portal).ldb().tuple_count(), 0, "rolled back to seed state");
    assert!(net.node(portal).rejoin_pending(), "handshake owed");

    // The first update races the lazy announcement (its quiescent drain
    // completes the handshake); the second re-sends what the caches had
    // been suppressing.
    net.run_update(portal);
    assert!(!net.node(portal).rejoin_pending(), "announced on first activity");
    net.run_update(portal);
    assert_eq!(net.node(portal).ldb().tuple_count(), 1, "alice re-materialised after rejoin");
}

/// GLAV rules invent marked nulls whose labels depend on apply order; a
/// recovered node must reach an isomorphic fixpoint with equal factory
/// counters (no null is ever minted twice for the same template).
#[test]
fn glav_crash_recovery_is_isomorphic_with_equal_factories() {
    let tmp = ScratchDir::new("durability-glav");
    let scenario = Scenario {
        rule_style: RuleStyle::ProjectGlav,
        tuples_per_node: 15,
        ..Scenario::quick(Topology::Chain(4))
    };
    let plan = CrashRestartPlan::new(scenario, NodeId(1));
    let report = run_crash_restart(&plan, tmp.path()).unwrap();
    assert!(report.isomorphic, "{report:?}");
    assert!(report.factories_equal, "{report:?}");
}

/// Persistence survives a full process-style lifecycle driven through the
/// library API: update, checkpoint, "exit" (drop the network), rebuild
/// from config, recover from disk — the materialised state is back
/// without re-running the update.
#[test]
fn state_survives_network_teardown_and_rebuild() {
    let tmp = ScratchDir::new("durability-teardown");
    let config_text = r#"
        node hr
        node portal
        schema hr: emp(str, int)
        schema portal: person(str, int)
        data hr: emp("alice", 30). emp("bob", 17).
        rule adults @ hr -> portal: person(N, A) <- emp(N, A), A >= 18.
    "#;
    let config = NetworkConfig::parse(config_text).unwrap();

    // First life: materialise, checkpoint, tear down.
    let (portal_tuples, portal_id) = {
        let mut net = CoDbNetwork::build(config.clone(), SimConfig::default()).unwrap();
        net.open_persistence_all(tmp.path(), SyncPolicy::Always, Codec::Binary).unwrap();
        let portal = net.node_id("portal").unwrap();
        net.run_update(portal);
        assert!(net.checkpoint_node(portal).unwrap());
        (net.node(portal).ldb().tuple_count(), portal)
    };
    assert_eq!(portal_tuples, 1, "alice materialised at portal");

    // Second life: the seed config alone would leave portal empty; the
    // store brings the materialised tuple back.
    let mut net = CoDbNetwork::build(config, SimConfig::default()).unwrap();
    assert_eq!(net.node(portal_id).ldb().tuple_count(), 0);
    let recovered =
        net.open_persistence_all(tmp.path(), SyncPolicy::Always, Codec::Binary).unwrap();
    assert!(recovered.contains(&"portal".to_owned()), "{recovered:?}");
    assert_eq!(net.node(portal_id).ldb().tuple_count(), 1);
    let q = net.run_query_text(portal_id, "ans(N) :- person(N, A).", false).unwrap();
    assert_eq!(q.result.answers.len(), 1);
}

/// Local inserts are WAL-logged too: a write between checkpoints survives
/// a crash (WAL replay), not just a checkpoint.
#[test]
fn local_insert_survives_via_wal_replay_alone() {
    let tmp = ScratchDir::new("durability-local");
    let config_text = r#"
        node solo
        schema solo: r(int, int)
        data solo: r(1, 2).
    "#;
    let config = NetworkConfig::parse(config_text).unwrap();
    let solo = {
        let mut net = CoDbNetwork::build(config.clone(), SimConfig::default()).unwrap();
        net.open_persistence_all(tmp.path(), SyncPolicy::Always, Codec::Binary).unwrap();
        let solo = net.node_id("solo").unwrap();
        // No checkpoint after this insert: only the WAL has it.
        net.sim_mut()
            .peer_mut(solo.peer())
            .unwrap()
            .insert_local("r", codb::relational::Tuple::new(vec![Value::Int(7), Value::Int(8)]))
            .unwrap();
        solo
    };
    let mut net = CoDbNetwork::build(config, SimConfig::default()).unwrap();
    net.open_persistence_all(tmp.path(), SyncPolicy::Always, Codec::Binary).unwrap();
    assert_eq!(net.node(solo).ldb().tuple_count(), 2, "seed + WAL-replayed insert");
}

/// The group-commit acceptance scenario (ISSUE 5): an 8-node single-host
/// network persists through **one shared fsync scheduler**, the host
/// dies mid-update with every store's unsynced WAL tail destroyed (the
/// crash lands between batch formation and drain), and after the
/// restarts no acked record is lost and the network reconverges to the
/// never-crashed control. The fewer-fsyncs half of the claim is
/// asserted by experiment E18 (`codb_bench::experiments::e18`).
#[test]
fn host_crash_under_shared_group_commit_loses_no_acked_record() {
    let tmp = ScratchDir::new("durability-groupcommit");
    let scenario = Scenario { tuples_per_node: 12, ..Scenario::quick(Topology::Chain(8)) };
    let plan = FaultPlan::host_crash_group_commit(scenario, 5);
    assert!(
        matches!(plan.sync, SyncPolicy::GroupCommit { max_batch: 8, max_records: 64 }),
        "{plan:?}"
    );
    assert!(plan.lose_unsynced_tail, "the crash must destroy unsynced tails");
    let report = run_fault_plan(&plan, tmp.path()).unwrap();
    assert_eq!(report.crashes, 1, "the host crash landed: {report:?}");
    assert!(report.acked_records_preserved, "replay with seed {}: {report:?}", report.seed);
    assert!(report.converged, "replay with seed {}: {report:?}", report.seed);
    assert!(report.rejoin_messages >= 2, "restarts ran the handshake: {report:?}");
}

/// The shared scheduler is one object across the network: opening
/// persistence under a group-commit policy exposes it, and appends from
/// different nodes coalesce into common drains.
#[test]
fn open_persistence_all_shares_one_scheduler() {
    let tmp = ScratchDir::new("durability-sched");
    let scenario = Scenario { tuples_per_node: 5, ..Scenario::quick(Topology::Chain(8)) };
    let mut net = CoDbNetwork::build(scenario.build_config(), SimConfig::default()).unwrap();
    assert!(net.fsync_scheduler().is_none(), "no scheduler before a group-commit open");
    net.open_persistence_all(
        tmp.path(),
        SyncPolicy::GroupCommit { max_batch: 64, max_records: 16 },
        Codec::Binary,
    )
    .unwrap();
    let sched = net.fsync_scheduler().expect("group-commit open built the shared scheduler");
    assert_eq!(sched.stats().registered, 8, "every node's WAL registered");
    net.run_update(scenario.sink());
    let stats = net.fsync_scheduler().unwrap().stats();
    assert!(stats.appends > 0, "the update's WAL traffic went through the scheduler: {stats:?}");

    // A later open asking for *different* group-commit thresholds must
    // be refused, not silently handed the existing scheduler's (larger
    // or smaller) ack window.
    let err = net
        .open_node_persistence(
            NodeId(0),
            &tmp.path().join("n0-again"),
            SyncPolicy::GroupCommit { max_batch: 64, max_records: 8 },
            Codec::Binary,
        )
        .unwrap_err();
    assert!(matches!(err, StoreError::SchedulerMismatch { .. }), "{err}");
    assert!(err.to_string().contains("group:8,64"), "{err}");
}

/// A node that was never persisted cannot be restarted from an empty
/// directory — the error is typed, not a silent empty rejoin.
#[test]
fn restart_from_empty_dir_is_refused() {
    let tmp = ScratchDir::new("durability-empty");
    let scenario = Scenario { tuples_per_node: 5, ..Scenario::quick(Topology::Chain(2)) };
    let mut net = CoDbNetwork::build(scenario.build_config(), SimConfig::default()).unwrap();
    net.crash_node(NodeId(0));
    let err = net
        .restart_node_from_disk(
            NodeId(0),
            &tmp.path().join("node0"),
            SyncPolicy::Always,
            Codec::Binary,
        )
        .unwrap_err();
    assert!(matches!(err, StoreError::NoState { .. }), "{err}");
}
