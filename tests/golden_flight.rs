//! Golden flight-recorder fixture: a committed `.trc` file pinned byte
//! for byte against format drift.
//!
//! `tests/fixtures/golden.trc` is produced by [`build_golden_trace`]: a
//! fixed-seed three-node cyclic-rule network runs one global update with
//! a small-block [`FileRecorder`] attached (real net/protocol events,
//! sim-time stamps, multiple sealed blocks), then a synthetic coda emits
//! every remaining [`TraceEvent`] variant with fixed values — phase
//! markers included, with pinned `host_nanos` so the bytes never depend
//! on wall time. Together the fixture covers all 20 event kinds.
//!
//! The byte-equality test is the drift tripwire: any change to the event
//! tags, varint encoding, delta-timestamp scheme, block framing or the
//! recorder's block-seal policy rewrites these bytes and fails here —
//! which is the prompt to bump the magic, not to silently reinterpret
//! old traces. Regenerate (only after an *intentional* format change,
//! and say so in the PR) with:
//!
//! ```sh
//! cargo test --test golden_flight -- --ignored regenerate
//! ```

use codb::prelude::*;
use codb::trace::read_trace;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Three nodes with a rule cycle (hr -> portal -> campus -> hr), so the
/// update exercises the Dijkstra–Scholten machinery alongside plain rule
/// flooding. The `A >= 18` guard breaks the data cycle and guarantees a
/// fixpoint.
const CONFIG: &str = r#"
    node hr
    node portal
    node campus
    schema hr: emp(str, int)
    schema portal: person(str, int)
    schema campus: member(str)
    data hr: emp("alice", 30). emp("bob", 17).
    rule r1 @ hr -> portal: person(N, A) <- emp(N, A), A >= 18.
    rule r2 @ portal -> campus: member(N) <- person(N, A).
    rule r3 @ campus -> hr: emp(N, 0) <- member(N).
"#;

/// Tiny block threshold so even this small fixture seals several blocks —
/// the multi-block layout (absolute base timestamp per block) is on the
/// pinned path.
const BLOCK_BYTES: usize = 256;

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden.trc")
}

/// Records the deterministic run + synthetic coda into `path` and returns
/// the file's bytes.
fn build_golden_trace(path: &Path) -> Vec<u8> {
    let recorder = Arc::new(Mutex::new(FileRecorder::with_block_bytes(path, BLOCK_BYTES).unwrap()));
    let tracer = Tracer::new(recorder.clone());

    // Real portion: fixed-seed update flood, stamped with sim time.
    let config = NetworkConfig::parse(CONFIG).unwrap();
    let mut net = CoDbNetwork::build(config, SimConfig::default()).unwrap();
    net.attach_tracer(&tracer);
    let portal = net.node_id("portal").unwrap();
    let outcome = net.run_update(portal);
    assert_eq!(outcome.summary.tuples_added, 3, "alice flows around the cycle");

    // Synthetic coda: every variant the run does not produce, with fixed
    // values (host_nanos pinned — wall time must not reach the bytes).
    tracer.set_clock(5_000_000_000);
    let phase = tracer.intern("golden-phase");
    let store = tracer.intern("golden-store");
    for ev in [
        TraceEvent::PhaseBegin { name: phase, host_nanos: 1_000 },
        TraceEvent::NetDrop { from: 0, to: 1, bytes: 96 },
        TraceEvent::NetTimer { peer: 2, timer: 7 },
        TraceEvent::RejoinAnnounce { peer: 1, epoch: 3 },
        TraceEvent::RejoinRecv { peer: 0, from: 1, invalidated: 2 },
        TraceEvent::RejoinAck { peer: 1, from: 0, pending: 1 },
        TraceEvent::BarrierHold { peer: 0, toward: 1, held: 2 },
        TraceEvent::BarrierRelease { peer: 0, toward: 1, released: 2 },
        TraceEvent::WalAppend { store, bytes: 128 },
        TraceEvent::Fsync { store, nanos: 42_000 },
        TraceEvent::GroupDrain { stores: 2, records: 5, fsyncs: 1 },
        TraceEvent::Checkpoint { store, generation: 1 },
        TraceEvent::PhaseEnd { name: phase, host_nanos: 2_501_000 },
    ] {
        tracer.emit(ev);
    }
    tracer.flush().unwrap();
    drop(tracer);
    drop(net);
    drop(recorder);
    std::fs::read(path).unwrap()
}

/// The committed fixture is byte-identical to a fresh recording of the
/// same run — encoder determinism and format stability in one assertion.
#[test]
fn golden_trace_fixture_is_byte_stable() {
    let scratch = codb::store::ScratchDir::new("golden-flight");
    let got = build_golden_trace(&scratch.path().join("fresh.trc"));
    let want = std::fs::read(fixture_path())
        .expect("fixture missing — run the ignored `regenerate` test once");
    assert!(
        got == want,
        "trace bytes diverged from the committed fixture (first diff at byte {}; got {} bytes, \
         want {}) — if the format change is intentional, bump the magic and regenerate",
        got.iter().zip(want.iter()).position(|(a, b)| a != b).unwrap_or(got.len().min(want.len())),
        got.len(),
        want.len(),
    );
}

/// The committed bytes also *mean* the right thing: they decode cleanly,
/// span several blocks, cover every event kind, and summarise with the
/// pinned phase timing. A future decoder that accepts the bytes but
/// reads them differently fails here.
#[test]
fn golden_trace_fixture_decodes_to_pinned_meaning() {
    let bytes = std::fs::read(fixture_path())
        .expect("fixture missing — run the ignored `regenerate` test once");
    assert!(bytes.len() > 8 + 3 * 12, "large enough for several 12-byte block headers");
    let trace = read_trace(&bytes).unwrap();
    assert!(!trace.torn, "committed fixture ends on a sealed block");

    let kinds: std::collections::BTreeSet<&str> =
        trace.events.iter().map(|(_, ev)| ev.kind()).collect();
    for kind in [
        "Intern",
        "PhaseBegin",
        "PhaseEnd",
        "NetSend",
        "NetDeliver",
        "NetDrop",
        "NetTimer",
        "UpdateApply",
        "RuleFire",
        "DsAck",
        "DsCredit",
        "RejoinAnnounce",
        "RejoinRecv",
        "RejoinAck",
        "BarrierHold",
        "BarrierRelease",
        "WalAppend",
        "Fsync",
        "GroupDrain",
        "Checkpoint",
    ] {
        assert!(kinds.contains(kind), "fixture must cover event kind {kind}");
    }

    let summary = Summary::from_trace(&trace);
    assert_eq!(
        summary.phase_host_nanos("golden-phase"),
        Some(2_500_000),
        "pinned synthetic phase duration"
    );
    let rendered = summary.render();
    assert!(rendered.contains("golden-phase"), "summary names the phase:\n{rendered}");
}

/// Rewrites the committed fixture. Run explicitly after an *intentional*
/// format change: `cargo test --test golden_flight -- --ignored regenerate`
#[test]
#[ignore = "rewrites the committed golden trace fixture"]
fn regenerate() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    let bytes = build_golden_trace(&path);
    println!("rewrote {} ({} bytes)", path.display(), bytes.len());
}
