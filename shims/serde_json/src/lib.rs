//! Vendored minimal stand-in for `serde_json`, matching the API surface
//! this workspace uses: `to_string`, `to_string_pretty`, `to_vec`,
//! `from_str`, `from_slice` and the generic [`Value`].
//!
//! Serialisation goes through the serde shim's [`Value`] tree; this crate
//! owns the JSON text encoding (RFC 8259 subset: no `\uXXXX` surrogate
//! pairs are emitted, non-BMP characters are written verbatim as UTF-8,
//! which every JSON parser accepts).

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serialises `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as human-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialises `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text into any deserialisable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let value = p.parse_root()?;
    T::from_value(&value)
}

/// Parses JSON bytes into any deserialisable type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error::custom(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep a decimal point so the value re-parses as a float.
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Object(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            if !members.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_root(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut members = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("input validated as UTF-8"),
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            let cp = self.parse_unicode_escape()?;
                            s.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor on the `u`), including
    /// UTF-16 surrogate pairs.
    fn parse_unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1; // consume `u`
        let hi = self.parse_hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            self.eat(b'\\')?;
            self.eat(b'u')?;
            let lo = self.parse_hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let digits =
            self.bytes.get(self.pos..end).ok_or_else(|| self.err("truncated unicode escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number text");
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let src = r#"{"a": [1, -2, 3.5], "b": "x\ny", "c": null, "d": true}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "x\ny");
        let printed = to_string(&v).unwrap();
        let again: Value = from_str(&printed).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn u64_max_round_trips() {
        let s = to_string(&u64::MAX).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, u64::MAX);
    }

    #[test]
    fn pretty_output_parses() {
        let v: Value = from_str(r#"{"k": [1, 2], "m": {"n": "s"}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<u8>("300").is_err());
    }
}
