//! Vendored minimal stand-in for `crossbeam`, mapping the
//! `crossbeam::channel` unbounded-channel API onto `std::sync::mpsc`.
//! Sufficient for single-consumer channels (each receiver is owned by one
//! thread), which is how this workspace uses them.

/// MPMC-ish channels (here: std mpsc, single consumer).
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel (clonable).
    pub type Sender<T> = std::sync::mpsc::Sender<T>;

    /// The receiving half of an unbounded channel.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        assert!(rx.recv_timeout(Duration::from_millis(1)).is_err());
    }
}
