//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Because the build runs offline, `syn`/`quote` are unavailable; the item
//! is parsed directly from the `proc_macro` token stream and the generated
//! impls are assembled as source text. The supported grammar is exactly
//! what this workspace uses: non-generic structs (named, tuple, unit) and
//! enums (unit, tuple and struct variants), plus the field attribute
//! `#[serde(with = "module")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    with: Option<String>,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<Option<String>>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    data: Data,
}

/// Derives `serde::Serialize` (shim: `fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (shim: `fn from_value(&Value) -> Result<Self, Error>`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kw = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    let data = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
            other => panic!("serde_derive shim: unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: unexpected enum body: {other:?}"),
        },
        other => panic!("serde_derive shim: expected struct or enum, got `{other}`"),
    };

    Item { name, data }
}

/// Skips any `#[...]` attributes, returning the `with = "..."` path if one
/// of them is `#[serde(with = "path")]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> Option<String> {
    let mut with = None;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                if let Some(w) = parse_serde_with(g.stream()) {
                    with = Some(w);
                }
                *i += 1;
            }
            other => panic!("serde_derive shim: malformed attribute: {other:?}"),
        }
    }
    with
}

/// For a bracket-group token stream `serde(with = "path")`, returns the path.
fn parse_serde_with(attr: TokenStream) -> Option<String> {
    let toks: Vec<TokenTree> = attr.into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        if let TokenTree::Ident(id) = &inner[j] {
            if id.to_string() == "with" {
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (inner.get(j + 1), inner.get(j + 2))
                {
                    if eq.as_char() == '=' {
                        let s = lit.to_string();
                        return Some(s.trim_matches('"').to_owned());
                    }
                }
            }
            // Any other serde attribute is beyond this shim.
            panic!(
                "serde_derive shim: unsupported serde attribute `{}` (only `with` is known)",
                id
            );
        }
        j += 1;
    }
    None
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive shim: expected identifier, got {other:?}"),
    }
}

/// Skips a type, stopping at a comma that sits outside all `<...>` pairs.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let with = skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
        // Now at a comma or the end.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field { name, with });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Option<String>> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let with = skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(with);
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(parse_tuple_fields(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn ser_field_expr(with: &Option<String>, access: &str) -> String {
    match with {
        Some(path) => format!("{path}::to_value({access})"),
        None => format!("::serde::Serialize::to_value({access})"),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let mut s = String::from("let mut __m = ::std::collections::BTreeMap::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert(::std::string::String::from(\"{n}\"), {e});\n",
                    n = f.name,
                    e = ser_field_expr(&f.with, &format!("&self.{}", f.name)),
                ));
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        Data::TupleStruct(withs) if withs.len() == 1 => ser_field_expr(&withs[0], "&self.0"),
        Data::TupleStruct(withs) => {
            let elems: Vec<String> = withs
                .iter()
                .enumerate()
                .map(|(k, w)| ser_field_expr(w, &format!("&self.{k}")))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Data::UnitStruct => String::from("::serde::Value::Null"),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::__variant(\"{vn}\", ::serde::Serialize::to_value(__f0)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({b}) => ::serde::__variant(\"{vn}\", ::serde::Value::Array(vec![{e}])),\n",
                            b = binds.join(", "),
                            e = elems.join(", "),
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut __m = ::std::collections::BTreeMap::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__m.insert(::std::string::String::from(\"{n}\"), {e});\n",
                                n = f.name,
                                e = ser_field_expr(&f.with, &f.name),
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {b} }} => {{ {inner} ::serde::__variant(\"{vn}\", ::serde::Value::Object(__m)) }}\n",
                            b = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn de_field_expr(with: &Option<String>, obj: &str, key: &str) -> String {
    match with {
        Some(path) => {
            format!("{path}::from_value({obj}.get(\"{key}\").unwrap_or(&::serde::Value::Null))?")
        }
        None => format!("::serde::__from_field({obj}, \"{key}\")?"),
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{n}: {e},\n",
                    n = f.name,
                    e = de_field_expr(&f.with, "__o", &f.name),
                ));
            }
            format!(
                "let __o = __v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Data::TupleStruct(withs) if withs.len() == 1 => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Data::TupleStruct(withs) => {
            let n = withs.len();
            let elems: Vec<String> =
                (0..n).map(|k| format!("::serde::Deserialize::from_value(&__a[{k}])?")).collect();
            format!(
                "let __a = ::serde::__tuple(__v, {n})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Data::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__a[{k}])?"))
                            .collect();
                        arms.push_str(&format!(
                            "\"{vn}\" => {{ let __a = ::serde::__tuple(__payload, {n})?; ::std::result::Result::Ok({name}::{vn}({e})) }}\n",
                            e = elems.join(", "),
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{n}: {e},\n",
                                n = f.name,
                                e = de_field_expr(&f.with, "__o", &f.name),
                            ));
                        }
                        arms.push_str(&format!(
                            "\"{vn}\" => {{ let __o = __payload.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}::{vn}\"))?; ::std::result::Result::Ok({name}::{vn} {{\n{inits}}}) }}\n"
                        ));
                    }
                }
            }
            format!(
                "let (__tag, __payload) = ::serde::__untag(__v)?;\n\
                 match __tag {{\n{arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}
