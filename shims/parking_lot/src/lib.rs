//! Vendored minimal stand-in for `parking_lot`, wrapping `std::sync`
//! primitives behind parking_lot's panic-free (non-`Result`) locking API.
//! Poisoned locks are recovered rather than propagated, matching
//! parking_lot's behaviour of not poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(vec![1]);
        rw.write().push(2);
        assert_eq!(rw.read().len(), 2);
    }
}
