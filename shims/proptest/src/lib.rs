//! Vendored minimal stand-in for `proptest`, used because this build runs
//! without network access to crates.io.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_filter`, range / tuple /
//! [`Just`] / [`any`] / `collection::vec` strategies, `prop_oneof!`, the
//! `proptest!` test-declaration macro, `prop_assert!` / `prop_assert_eq!`,
//! [`ProptestConfig`] and [`TestCaseError`]. Failing inputs are printed but
//! **not shrunk**. Generation is deterministic; set `PROPTEST_SEED` to vary
//! runs and `PROPTEST_CASES` (read by the callers' own config) for soaks.

use std::fmt;

/// Deterministic generator feeding every strategy (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from `PROPTEST_SEED` (default: fixed seed).
    pub fn from_env() -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_u64);
        TestRng { state: seed }
    }

    /// The next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty choice");
        self.next_u64() % n
    }
}

/// Why a test case failed.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure carrying `msg`.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }

    /// Proptest-API alias for [`TestCaseError::fail`].
    pub fn reject(msg: impl fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration (only `cases` is honoured by the shim).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; unused by the shim.
    pub max_local_rejects: u32,
    /// Accepted for API compatibility; unused by the shim.
    pub max_global_rejects: u32,
    /// Accepted for API compatibility; unused by the shim (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_local_rejects: 65_536,
            max_global_rejects: 1024,
            max_shrink_iters: 0,
        }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true (bounded retries).
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("proptest shim: filter `{}` rejected 10000 candidates in a row", self.reason);
    }
}

/// Strategy yielding a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        // 53 uniform mantissa bits scaled into the half-open range.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($t:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain; see [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

/// Uniform choice between boxed alternatives; built by `prop_oneof!`.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// A strategy choosing uniformly among `options`.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start < self.size.end {
                self.size.generate(rng)
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for ordered sets (length is *at most* the drawn size:
    /// duplicate draws collapse, as in real proptest).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` of roughly `size` elements drawn from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start < self.size.end {
                self.size.generate(rng)
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for ordered maps (length is *at most* the drawn size:
    /// duplicate keys collapse, as in real proptest).
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// A `BTreeMap` of roughly `size` entries drawn from `key`/`value`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start < self.size.end {
                self.size.generate(rng)
            } else {
                self.size.start
            };
            (0..len).map(|_| (self.key.generate(rng), self.value.generate(rng))).collect()
        }
    }
}

/// The glob-import surface used by property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
    /// Alias module mirroring proptest's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Property assertion: fails the current case without panicking the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Declares `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_env();
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),*),
                    $(&$arg),*
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs (NOT shrunk):\n{}",
                        case + 1, config.cases, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_maps(x in 1u32..10, v in crate::collection::vec(0i64..5, 0..8)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|e| (0..5).contains(e)));
        }

        #[test]
        fn oneof_and_filter(
            y in prop_oneof![Just(1u8), 5u8..8, Just(9u8)],
            even in (0u16..100).prop_filter("even", |n| n % 2 == 0),
        ) {
            prop_assert!(y == 1 || (5u8..8).contains(&y) || y == 9);
            prop_assert_eq!(even % 2, 0);
        }
    }

    #[test]
    fn empty_case_macro_compiles() {
        proptest! {}
    }
}
