//! Vendored minimal stand-in for `criterion`, used because this build runs
//! without network access to crates.io.
//!
//! The bench sources compile unchanged against this shim; at run time each
//! benchmark is executed a handful of times and a simple mean wall-time is
//! printed, instead of criterion's full sampling/analysis pipeline. Set
//! `CODB_BENCH_ITERS` to change the per-benchmark iteration count
//! (default 3); `--no-run`-style compile checks are unaffected.

use std::fmt;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser value laundering.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement backends (only wall time exists in the shim).
pub mod measurement {
    /// Wall-clock measurement marker.
    pub struct WallTime;
}

/// Benchmark identifier: a function name and an optional parameter label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: Some(name.into()), parameter: parameter.to_string() }
    }

    /// An id labelled only by a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: None, parameter: parameter.to_string() }
    }

    fn label(&self) -> String {
        match &self.name {
            Some(n) => format!("{n}/{}", self.parameter),
            None => self.parameter.clone(),
        }
    }
}

/// Conversion accepted by [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// The label under which the benchmark is reported.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

/// Throughput annotation (recorded but not analysed by the shim).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup { name: name.into(), _criterion: self, _measurement: PhantomData }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    _criterion: &'a mut Criterion,
    _measurement: PhantomData<M>,
}

fn shim_iters() -> u64 {
    std::env::var("CODB_BENCH_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(3).max(1)
}

impl<M> BenchmarkGroup<'_, M> {
    /// Criterion compatibility: recorded but not used by the shim.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Criterion compatibility: recorded but not used by the shim.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Criterion compatibility: recorded but not used by the shim.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Criterion compatibility: recorded but not used by the shim.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_benchmark_id(), |b| f(b));
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher { iters: shim_iters(), elapsed: Duration::ZERO };
        f(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
        println!(
            "{}/{}: mean {:.3} ms over {} iters",
            self.name,
            id.label(),
            mean * 1e3,
            bencher.iters
        );
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, n| b.iter(|| n * 2));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample(&mut c);
    }
}
