//! Vendored minimal stand-in for `rand`, used because this build runs
//! without network access to crates.io.
//!
//! Provides [`rngs::SmallRng`] (xoshiro-style, here splitmix64 — plenty for
//! simulation workloads), [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods this workspace calls: `gen`, `gen_range` over half-open integer
//! ranges, and `gen_bool`. Deterministic across platforms and runs.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, deterministic from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types uniformly samplable from a half-open range.
pub trait SampleUniform: Copy {
    /// Draws uniformly from `[lo, hi)`; panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! sample_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < 2^-64 * span: irrelevant for simulation.
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

sample_uniform_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from the half-open integer range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
