//! Vendored minimal stand-in for `serde`, used because this build runs
//! without network access to crates.io.
//!
//! The real serde is a zero-cost, visitor-based framework. This shim is a
//! much smaller thing: serialisation goes through an owned JSON-like
//! [`Value`] tree, and `#[derive(Serialize, Deserialize)]` (provided by the
//! sibling `serde_derive` shim) generates `to_value`/`from_value`
//! implementations with serde's external enum tagging, so round-trips
//! through `serde_json` behave the way the application code expects.
//!
//! Supported surface (grown on demand):
//! * `Serialize` / `Deserialize` for the primitives, `String`, `Option`,
//!   `Vec`, slices, tuples up to arity 4, string-keyed `BTreeMap`/`HashMap`,
//!   and `BTreeSet`/`HashSet`.
//! * field attribute `#[serde(with = "module")]`, resolved to
//!   `module::to_value` / `module::from_value`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-like value tree: the interchange format of this shim.
///
/// Integers are kept as `i128` so that the full `i64` and `u64` ranges
/// round-trip without loss.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON integer (covers the full i64 and u64 ranges).
    Int(i128),
    /// JSON non-integer number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` for any other variant.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an in-range integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The member map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True iff this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error raised by `from_value` conversions (and re-used by `serde_json`
/// for parse errors).
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl Error {
    /// An error carrying `msg`.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Compatibility alias module mirroring `serde::ser`.
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// Compatibility alias module mirroring `serde::de`.
pub mod de {
    pub use crate::{Deserialize, Error};
}

// ---------------------------------------------------------------------
// Derive-support helpers (referenced by serde_derive-generated code).
// ---------------------------------------------------------------------

/// Reads struct field `key` out of object `o`; an absent key deserialises
/// like an explicit `null` (so `Option` fields may be omitted) and anything
/// else reports a missing field.
pub fn __from_field<T: Deserialize>(o: &BTreeMap<String, Value>, key: &str) -> Result<T, Error> {
    match o.get(key) {
        Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
        None => {
            T::from_value(&Value::Null).map_err(|_| Error::custom(format!("missing field `{key}`")))
        }
    }
}

/// Externally-tagged enum payload: `{"Variant": value}`.
pub fn __variant(name: &str, payload: Value) -> Value {
    let mut m = BTreeMap::new();
    m.insert(name.to_owned(), payload);
    Value::Object(m)
}

/// The single `(tag, payload)` member of an externally-tagged enum object.
pub fn __untag(v: &Value) -> Result<(&str, &Value), Error> {
    match v {
        Value::String(s) => Ok((s.as_str(), &Value::Null)),
        Value::Object(m) if m.len() == 1 => {
            let (k, val) = m.iter().next().expect("len checked");
            Ok((k.as_str(), val))
        }
        other => Err(Error::expected("enum (string or 1-member object)", other)),
    }
}

/// The elements of an array of exactly `n` values.
pub fn __tuple(v: &Value, n: usize) -> Result<&[Value], Error> {
    let arr = v.as_array().ok_or_else(|| Error::expected("array", v))?;
    if arr.len() != n {
        return Err(Error::custom(format!("expected array of {n} elements, got {}", arr.len())));
    }
    Ok(arr)
}

// ---------------------------------------------------------------------
// Impls for std types.
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::custom(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::expected("number", v))
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array().ok_or_else(|| Error::expected("array", v))?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array().ok_or_else(|| Error::expected("array", v))?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize + std::hash::Hash + Eq> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array().ok_or_else(|| Error::expected("array", v))?.iter().map(T::from_value).collect()
    }
}

/// Maps serialise as arrays of `[key, value]` pairs so that non-string
/// keys (ids, tuples) round-trip losslessly. Deserialisation also accepts
/// JSON objects, for maps that did come from string keys.
fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Array(entries.map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect())
}

fn map_from_value<K: Deserialize, V: Deserialize, M>(v: &Value) -> Result<M, Error>
where
    M: FromIterator<(K, V)>,
{
    match v {
        Value::Array(items) => items
            .iter()
            .map(|pair| {
                let kv = __tuple(pair, 2)?;
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            })
            .collect(),
        Value::Object(members) => members
            .iter()
            .map(|(k, v)| Ok((K::from_value(&Value::String(k.clone()))?, V::from_value(v)?)))
            .collect(),
        other => Err(Error::expected("map (array of pairs or object)", other)),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_from_value(v)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_from_value(v)
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident)+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const N: usize = 0 $(+ { let _ = $n; 1 })+;
                let arr = __tuple(v, N)?;
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A 1 B)
    (0 A 1 B 2 C)
    (0 A 1 B 2 C 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u64).to_value(), Value::Int(3));
    }

    #[test]
    fn int_range_checks() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert_eq!(u64::from_value(&Value::Int(u64::MAX as i128)).unwrap(), u64::MAX);
    }

    #[test]
    fn tuples_are_arrays() {
        let v = (1u32, "x".to_owned()).to_value();
        let back: (u32, String) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, (1, "x".to_owned()));
    }
}
