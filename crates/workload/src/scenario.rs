//! End-to-end experiment scenarios: topology + schemas + rules + data →
//! a ready-to-run [`NetworkConfig`].

use crate::data_gen::{generate_distinct, DataDist};
use crate::topology::Topology;
use codb_core::{CoordinationRule, NetworkConfig, NodeConfig, NodeId};
use codb_relational::{
    Atom, CmpOp, Comparison, CqBody, DatabaseSchema, GlavRule, RelationSchema, Term, Value,
    ValueType, Var,
};
use serde::{Deserialize, Serialize};

/// How each topology edge is turned into a coordination rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleStyle {
    /// GAV copy: `r_tgt(X, Y) <- r_src(X, Y)`.
    CopyGav,
    /// GAV with a comparison: `r_tgt(X, Y) <- r_src(X, Y), Y >= k` —
    /// selectivity controlled by `k` relative to the data domain.
    FilterGav {
        /// The threshold `k`.
        threshold: i64,
    },
    /// Proper GLAV with an existential head variable:
    /// `r_tgt(X, E) <- r_src(X, Y)` — `E` becomes a fresh marked null per
    /// firing; exercises the labelled-null machinery.
    ProjectGlav,
    /// GAV with a join body over two source relations:
    /// `r_tgt(X, Z) <- r_src(X, Y), s_src(Y, Z)` — rule bodies are full
    /// conjunctive queries, not just copies. Every node gets an auxiliary
    /// relation `s{i}` keyed over a small join domain so joins are
    /// productive.
    JoinGav {
        /// Size of the shared join-key domain.
        join_domain: u64,
    },
}

/// A complete experiment scenario.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The acquaintance graph.
    pub topology: Topology,
    /// Distinct tuples seeded at every node.
    pub tuples_per_node: usize,
    /// Rule shape per edge.
    pub rule_style: RuleStyle,
    /// Data distribution.
    pub dist: DataDist,
    /// Master seed (per-node seeds derive from it).
    pub seed: u64,
}

impl Scenario {
    /// A small default scenario for quick tests.
    pub fn quick(topology: Topology) -> Self {
        Scenario {
            topology,
            tuples_per_node: 50,
            rule_style: RuleStyle::CopyGav,
            dist: DataDist::Uniform { domain: 1_000_000 },
            seed: 0xC0DB,
        }
    }

    /// The relation name of node `i` (schemas are heterogeneous: every node
    /// names its relation differently, as in a real P2P schema-mapping
    /// network).
    pub fn relation_of(node: usize) -> String {
        format!("r{node}")
    }

    /// The auxiliary (join) relation of node `i` (JoinGav scenarios only).
    pub fn aux_relation_of(node: usize) -> String {
        format!("s{node}")
    }

    /// Builds the rule for edge `(src, tgt)`.
    fn rule_for_edge(&self, idx: usize, src: usize, tgt: usize) -> CoordinationRule {
        let src_rel = Self::relation_of(src);
        let tgt_rel = Self::relation_of(tgt);
        let x = Term::Var(Var(0));
        let y = Term::Var(Var(1));
        let names = vec!["X".to_owned(), "Y".to_owned(), "E".to_owned()];
        let body_atom = Atom::new(src_rel, vec![x.clone(), y.clone()]);
        let rule = match self.rule_style {
            RuleStyle::JoinGav { .. } => GlavRule::new(
                format!("e{idx}"),
                vec![Atom::new(tgt_rel, vec![x, Term::Var(Var(2))])],
                CqBody::new(
                    vec![
                        body_atom,
                        Atom::new(Self::aux_relation_of(src), vec![y, Term::Var(Var(2))]),
                    ],
                    vec![],
                ),
                vec!["X".to_owned(), "Y".to_owned(), "Z".to_owned()],
            ),
            RuleStyle::CopyGav => GlavRule::new(
                format!("e{idx}"),
                vec![Atom::new(tgt_rel, vec![x, y])],
                CqBody::new(vec![body_atom], vec![]),
                names,
            ),
            RuleStyle::FilterGav { threshold } => GlavRule::new(
                format!("e{idx}"),
                vec![Atom::new(tgt_rel, vec![x, y])],
                CqBody::new(
                    vec![body_atom],
                    vec![Comparison::new(Var(1), CmpOp::Ge, Value::Int(threshold))],
                ),
                names,
            ),
            RuleStyle::ProjectGlav => GlavRule::new(
                format!("e{idx}"),
                vec![Atom::new(tgt_rel, vec![x, Term::Var(Var(2))])],
                CqBody::new(vec![body_atom], vec![]),
                names,
            ),
        }
        .expect("generated rules are well-formed");
        CoordinationRule { rule, source: NodeId(src as u64), target: NodeId(tgt as u64) }
    }

    /// Materialises the scenario as a validated [`NetworkConfig`].
    pub fn build_config(&self) -> NetworkConfig {
        let n = self.topology.node_count();
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let rel = Self::relation_of(i);
            let mut schema = DatabaseSchema::new()
                .with(RelationSchema::with_types(&rel, &[ValueType::Int, ValueType::Int]));
            let node_seed = self.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9);
            let mut data: Vec<(String, codb_relational::Tuple)> = match self.rule_style {
                RuleStyle::JoinGav { join_domain } => {
                    // r{i}: (unique key, join key); values of column 1 live
                    // in the shared join domain so the body join hits.
                    generate_distinct(node_seed, self.tuples_per_node, self.dist)
                        .into_iter()
                        .map(|t| {
                            let x = t[0].clone();
                            let y = match &t[1] {
                                codb_relational::Value::Int(v) => codb_relational::Value::Int(
                                    v.rem_euclid(join_domain.max(1) as i64),
                                ),
                                other => other.clone(),
                            };
                            (rel.clone(), codb_relational::Tuple::new(vec![x, y]))
                        })
                        .collect()
                }
                _ => generate_distinct(node_seed, self.tuples_per_node, self.dist)
                    .into_iter()
                    .map(|t| (rel.clone(), t))
                    .collect(),
            };
            if let RuleStyle::JoinGav { join_domain } = self.rule_style {
                let aux = Self::aux_relation_of(i);
                schema.add(RelationSchema::with_types(&aux, &[ValueType::Int, ValueType::Int]));
                // s{i}: one row per join key, mapping it to a value.
                for k in 0..join_domain.max(1) as i64 {
                    data.push((
                        aux.clone(),
                        codb_relational::Tuple::new(vec![
                            codb_relational::Value::Int(k),
                            codb_relational::Value::Int(k * 1000 + i as i64),
                        ]),
                    ));
                }
            }
            nodes.push(NodeConfig { id: NodeId(i as u64), name: format!("node{i}"), schema, data });
        }
        let rules = self
            .topology
            .edges()
            .into_iter()
            .enumerate()
            .map(|(idx, (s, t))| self.rule_for_edge(idx, s, t))
            .collect();
        let config = NetworkConfig { nodes, rules, version: 1 };
        config.validate().expect("generated configs are valid");
        config
    }

    /// The node where the experiment queries / starts updates.
    pub fn sink(&self) -> NodeId {
        NodeId(self.topology.sink() as u64)
    }

    /// A query over the sink's relation: `ans(X, Y) :- r_sink(X, Y).`
    pub fn sink_query(&self) -> codb_relational::ConjunctiveQuery {
        let rel = Self::relation_of(self.topology.sink());
        codb_relational::parse_query(&format!("ans(X, Y) :- {rel}(X, Y)."))
            .expect("well-formed query")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codb_core::CoDbNetwork;
    use codb_net::SimConfig;

    #[test]
    fn quick_scenario_builds_valid_config() {
        let s = Scenario::quick(Topology::Chain(4));
        let c = s.build_config();
        assert_eq!(c.nodes.len(), 4);
        assert_eq!(c.rules.len(), 3);
        assert_eq!(c.nodes[0].data.len(), 50);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn configs_are_deterministic() {
        let s = Scenario::quick(Topology::Grid { w: 2, h: 2 });
        assert_eq!(s.build_config(), s.build_config());
    }

    #[test]
    fn filter_rules_carry_comparisons() {
        let s = Scenario {
            rule_style: RuleStyle::FilterGav { threshold: 10 },
            ..Scenario::quick(Topology::Chain(2))
        };
        let c = s.build_config();
        assert_eq!(c.rules[0].rule.body.comparisons.len(), 1);
    }

    #[test]
    fn glav_rules_have_existentials() {
        let s =
            Scenario { rule_style: RuleStyle::ProjectGlav, ..Scenario::quick(Topology::Chain(2)) };
        let c = s.build_config();
        assert!(c.rules[0].rule.has_existentials());
    }

    #[test]
    fn chain_scenario_runs_end_to_end() {
        let s = Scenario { tuples_per_node: 10, ..Scenario::quick(Topology::Chain(3)) };
        let mut net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
        let outcome = net.run_update(s.sink());
        // The sink accumulates all upstream tuples (dedup may collapse a
        // few duplicates across nodes, but with a 10^6 domain collisions
        // are unlikely for 10-tuple sets).
        let sink_rel = Scenario::relation_of(2);
        assert_eq!(net.node(s.sink()).ldb().get(&sink_rel).unwrap().len(), 30);
        assert_eq!(outcome.summary.longest_path, 2);
    }

    #[test]
    fn ring_scenario_reaches_fixpoint() {
        let s = Scenario { tuples_per_node: 5, ..Scenario::quick(Topology::Ring(3)) };
        let mut net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
        net.run_update(s.sink());
        // Every node ends with all 15 tuples (copied around the ring).
        for i in 0..3 {
            let rel = Scenario::relation_of(i);
            assert_eq!(net.node(NodeId(i as u64)).ldb().get(&rel).unwrap().len(), 15, "node {i}");
        }
    }

    #[test]
    fn sink_query_parses_and_answers() {
        let s = Scenario { tuples_per_node: 8, ..Scenario::quick(Topology::Star { leaves: 3 }) };
        let mut net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
        let q = net.run_query(s.sink(), s.sink_query(), true);
        // Hub's own 8 tuples + 8 from each of the 3 leaves.
        assert_eq!(q.result.answers.len(), 32);
    }
}

#[cfg(test)]
mod join_tests {
    use super::*;
    use codb_core::CoDbNetwork;
    use codb_net::SimConfig;

    #[test]
    fn join_gav_builds_aux_relations() {
        let s = Scenario {
            rule_style: RuleStyle::JoinGav { join_domain: 8 },
            tuples_per_node: 20,
            ..Scenario::quick(Topology::Chain(3))
        };
        let c = s.build_config();
        assert!(c.validate().is_ok());
        for (i, node) in c.nodes.iter().enumerate() {
            assert!(node.schema.contains(&Scenario::aux_relation_of(i)));
            let aux_rows =
                node.data.iter().filter(|(r, _)| r == &Scenario::aux_relation_of(i)).count();
            assert_eq!(aux_rows, 8);
        }
        assert_eq!(c.rules[0].rule.body.atoms.len(), 2, "join body");
    }

    #[test]
    fn join_gav_chain_produces_joined_tuples() {
        let s = Scenario {
            rule_style: RuleStyle::JoinGav { join_domain: 4 },
            tuples_per_node: 10,
            ..Scenario::quick(Topology::Chain(2))
        };
        let mut net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
        let outcome = net.run_update(s.sink());
        // Every r0 tuple joins its key against s0 (total function over the
        // join domain), so 10 joined tuples land in r1.
        assert_eq!(outcome.summary.tuples_added, 10);
        let r1 = net.node(s.sink()).ldb().get("r1").unwrap();
        // r1 holds its own 10 tuples plus the 10 imported ones.
        assert_eq!(r1.len(), 10 + 10);
        // Joined values are from s0's value space (k*1000 + node_index 0).
        let imported = r1
            .iter()
            .filter(|t| matches!(t[1], codb_relational::Value::Int(v) if v % 1000 == 0))
            .count();
        assert!(imported >= 10);
    }

    #[test]
    fn join_gav_ring_terminates() {
        let s = Scenario {
            rule_style: RuleStyle::JoinGav { join_domain: 4 },
            tuples_per_node: 6,
            ..Scenario::quick(Topology::Ring(3))
        };
        let mut net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
        let outcome = net.run_update(s.sink());
        assert_eq!(outcome.summary.nodes, 3);
        // Joins transform values at each hop, so the fixpoint is richer
        // than a copy ring but still finite.
        assert!(outcome.summary.tuples_added > 0);
    }
}

#[cfg(test)]
mod zipf_tests {
    use super::*;
    use codb_core::CoDbNetwork;
    use codb_net::SimConfig;

    #[test]
    fn zipf_skew_increases_cross_node_duplicate_suppression() {
        // With a tiny skewed domain, different nodes draw overlapping
        // tuples; the sink stores strictly fewer tuples than arrived
        // firings — the duplicate-suppression path at work.
        let uniform = Scenario {
            topology: Topology::Star { leaves: 4 },
            tuples_per_node: 50,
            rule_style: RuleStyle::CopyGav,
            dist: DataDist::Uniform { domain: 1 << 40 },
            seed: 77,
        };
        let zipf = Scenario { dist: DataDist::Zipf { domain: 40, exponent_x100: 120 }, ..uniform };
        let run = |s: &Scenario| {
            let mut net = CoDbNetwork::build(s.build_config(), SimConfig::default()).unwrap();
            let o = net.run_update(s.sink());
            (o.summary.firings, o.summary.tuples_added)
        };
        let (u_firings, u_added) = run(&uniform);
        let (z_firings, z_added) = run(&zipf);
        assert_eq!(u_firings, u_added, "disjoint domains: nothing suppressed");
        assert_eq!(z_firings, 200, "every leaf ships its 50 tuples");
        assert!(
            z_added < z_firings,
            "skewed overlapping data must collapse: {z_added} !< {z_firings}"
        );
        let _ = u_added;
    }
}
