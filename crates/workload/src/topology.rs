//! Network topology generators.
//!
//! The demo "measure\[s\] the performance of various networks arranged in
//! different topologies"; these generators produce the directed
//! acquaintance graphs the experiments sweep over. An edge `(i, j)` means
//! *data flows from node `i` to node `j`* — i.e. a coordination rule with
//! source `i` and target `j`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A topology family, sized.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// `0 → 1 → … → n-1`. Diameter `n-1`; the classic update-depth
    /// stressor.
    Chain(usize),
    /// A directed cycle `0 → 1 → … → n-1 → 0`: the minimal cyclic rule
    /// graph; the update fixpoint is genuinely recursive.
    Ring(usize),
    /// `leaves` leaf nodes all feeding node `0` (the hub).
    Star {
        /// Number of leaves (total nodes = leaves + 1).
        leaves: usize,
    },
    /// Complete binary in-tree of the given height: leaves push towards
    /// the root (node 0). Height 0 is a single node.
    Tree {
        /// Tree height.
        height: usize,
    },
    /// `w × h` grid; each cell feeds its right and down neighbours —
    /// acyclic with many redundant paths (duplicate-suppression stressor).
    Grid {
        /// Columns.
        w: usize,
        /// Rows.
        h: usize,
    },
    /// Erdős–Rényi-style random DAG: each pair `i < j` gets edge `i → j`
    /// with probability `p_percent/100`; a chain backbone guarantees
    /// connectivity.
    RandomDag {
        /// Node count.
        n: usize,
        /// Edge probability in percent (0–100).
        p_percent: u8,
        /// RNG seed.
        seed: u64,
    },
    /// Every ordered pair is an edge: the densest (cyclic) topology.
    Clique(usize),
    /// Barabási–Albert preferential attachment: nodes arrive one at a
    /// time and each connects to `m` distinct earlier nodes chosen with
    /// probability proportional to their current degree. Produces the
    /// heavy-tailed degree distributions of real P2P overlays; hubs
    /// emerge without any global coordination. Edges point old ← new
    /// (`(i, t)` with `t < i`), so the graph is acyclic with sink-side
    /// flow toward the early hubs.
    ScaleFree {
        /// Node count.
        n: usize,
        /// Edges each arriving node attaches with (clamped to the
        /// number of earlier nodes).
        m: usize,
        /// RNG seed.
        seed: u64,
    },
    /// A ring with exponentially-spaced chords: node `i` additionally
    /// feeds `(i + 2^k) mod n` for `k = 1..=chords`. A deterministic
    /// small-world: diameter `O(n / 2^chords)` with uniform degree —
    /// the gradient between `Ring` and dense overlays.
    RingGradient {
        /// Node count.
        n: usize,
        /// Number of chord scales (`2, 4, 8, …, 2^chords`).
        chords: u32,
    },
}

impl Topology {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        match *self {
            Topology::Chain(n) | Topology::Ring(n) | Topology::Clique(n) => n,
            Topology::Star { leaves } => leaves + 1,
            Topology::Tree { height } => (1 << (height + 1)) - 1,
            Topology::Grid { w, h } => w * h,
            Topology::RandomDag { n, .. } => n,
            Topology::ScaleFree { n, .. } | Topology::RingGradient { n, .. } => n,
        }
    }

    /// Directed data-flow edges `(source, target)`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        match *self {
            Topology::Chain(n) => (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect(),
            Topology::Ring(n) => {
                if n < 2 {
                    return Vec::new();
                }
                (0..n).map(|i| (i, (i + 1) % n)).collect()
            }
            Topology::Star { leaves } => (1..=leaves).map(|i| (i, 0)).collect(),
            Topology::Tree { .. } => {
                // Nodes 0..2^(h+1)-1 in heap order; children feed parents.
                let n = self.node_count();
                (1..n).map(|i| (i, (i - 1) / 2)).collect()
            }
            Topology::Grid { w, h } => {
                let mut edges = Vec::new();
                for row in 0..h {
                    for col in 0..w {
                        let i = row * w + col;
                        if col + 1 < w {
                            edges.push((i, i + 1));
                        }
                        if row + 1 < h {
                            edges.push((i, i + w));
                        }
                    }
                }
                edges
            }
            Topology::RandomDag { n, p_percent, seed } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut edges = Vec::new();
                // Backbone for connectivity.
                for i in 0..n.saturating_sub(1) {
                    edges.push((i, i + 1));
                }
                for i in 0..n {
                    for j in (i + 1)..n {
                        if j != i + 1 && rng.gen_range(0u8..100) < p_percent {
                            edges.push((i, j));
                        }
                    }
                }
                edges
            }
            Topology::Clique(n) => {
                let mut edges = Vec::new();
                for i in 0..n {
                    for j in 0..n {
                        if i != j {
                            edges.push((i, j));
                        }
                    }
                }
                edges
            }
            Topology::ScaleFree { n, m, seed } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut edges = Vec::new();
                // Every edge endpoint is recorded twice in this list, so
                // sampling an element uniformly samples a node with
                // probability proportional to its degree — the classic
                // O(1)-per-draw preferential-attachment trick.
                let mut endpoints: Vec<usize> = Vec::new();
                for i in 1..n {
                    let want = m.max(1).min(i);
                    let mut targets: Vec<usize> = Vec::with_capacity(want);
                    while targets.len() < want {
                        // First node, or occasional uniform draw, keeps the
                        // endpoint list from locking in early hubs entirely.
                        let t = if endpoints.is_empty() {
                            rng.gen_range(0..i)
                        } else {
                            endpoints[rng.gen_range(0..endpoints.len())]
                        };
                        if t < i && !targets.contains(&t) {
                            targets.push(t);
                        } else {
                            // Resample collisions uniformly so the loop
                            // terminates even when hubs dominate.
                            let u = rng.gen_range(0..i);
                            if !targets.contains(&u) {
                                targets.push(u);
                            }
                        }
                    }
                    for t in targets {
                        edges.push((i, t));
                        endpoints.push(i);
                        endpoints.push(t);
                    }
                }
                edges
            }
            Topology::RingGradient { n, chords } => {
                if n < 2 {
                    return Vec::new();
                }
                let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
                for k in 1..=chords {
                    let step = 1usize << k;
                    if step >= n {
                        break;
                    }
                    for i in 0..n {
                        edges.push((i, (i + step) % n));
                    }
                }
                edges
            }
        }
    }

    /// The natural "sink" node where the experiments pose queries / start
    /// updates: the chain end, the hub, the tree root, the grid corner.
    pub fn sink(&self) -> usize {
        match *self {
            Topology::Chain(n) => n.saturating_sub(1),
            Topology::Ring(_) => 0,
            Topology::Star { .. } | Topology::Tree { .. } => 0,
            Topology::Grid { w, h } => w * h - 1,
            Topology::RandomDag { n, .. } => n.saturating_sub(1),
            Topology::Clique(_) => 0,
            Topology::ScaleFree { .. } | Topology::RingGradient { .. } => 0,
        }
    }

    /// True iff the edge set contains a directed cycle.
    pub fn is_cyclic(&self) -> bool {
        matches!(self, Topology::Ring(n) if *n >= 2)
            || matches!(self, Topology::Clique(n) if *n >= 2)
            || matches!(self, Topology::RingGradient { n, .. } if *n >= 2)
    }

    /// The directed diameter towards the sink (longest shortest path), a
    /// lower bound for the longest update propagation path.
    pub fn depth_to_sink(&self) -> usize {
        match *self {
            Topology::Chain(n) => n.saturating_sub(1),
            Topology::Ring(n) => n.saturating_sub(1),
            Topology::Star { leaves } => usize::from(leaves > 0),
            Topology::Tree { height } => height,
            Topology::Grid { w, h } => (w - 1) + (h - 1),
            Topology::RandomDag { n, .. } => n.saturating_sub(1), // backbone
            Topology::Clique(n) => usize::from(n > 1),
            // No closed form for the generated families: measure by BFS.
            Topology::ScaleFree { .. } | Topology::RingGradient { .. } => self.bfs_depth_to_sink(),
        }
    }

    /// Longest shortest path to the sink, measured on the actual edge
    /// set by reverse BFS from the sink. Nodes that cannot reach the
    /// sink don't count.
    fn bfs_depth_to_sink(&self) -> usize {
        let n = self.node_count();
        if n == 0 {
            return 0;
        }
        let mut reverse_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (src, dst) in self.edges() {
            reverse_adj[dst].push(src);
        }
        let mut dist = vec![usize::MAX; n];
        let mut frontier = std::collections::VecDeque::from([self.sink()]);
        dist[self.sink()] = 0;
        let mut deepest = 0;
        while let Some(v) = frontier.pop_front() {
            for &u in &reverse_adj[v] {
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    deepest = deepest.max(dist[u]);
                    frontier.push_back(u);
                }
            }
        }
        deepest
    }
}

/// Topologies drive [`codb_net::SimBuilder`] directly: the builder maps
/// node index `i` to `PeerId(i)` and opens one (bidirectional) pipe per
/// directed data-flow edge.
impl codb_net::EdgeSource for Topology {
    fn node_count(&self) -> usize {
        Topology::node_count(self)
    }
    fn edge_list(&self) -> Vec<(usize, usize)> {
        Topology::edges(self)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Topology::Chain(n) => write!(f, "chain-{n}"),
            Topology::Ring(n) => write!(f, "ring-{n}"),
            Topology::Star { leaves } => write!(f, "star-{leaves}"),
            Topology::Tree { height } => write!(f, "tree-h{height}"),
            Topology::Grid { w, h } => write!(f, "grid-{w}x{h}"),
            Topology::RandomDag { n, p_percent, .. } => write!(f, "random-{n}-p{p_percent}"),
            Topology::Clique(n) => write!(f, "clique-{n}"),
            Topology::ScaleFree { n, m, .. } => write!(f, "scalefree-{n}-m{m}"),
            Topology::RingGradient { n, chords } => write!(f, "ringgrad-{n}-c{chords}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn chain_shape() {
        let t = Topology::Chain(4);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.edges(), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(t.sink(), 3);
        assert!(!t.is_cyclic());
        assert_eq!(t.depth_to_sink(), 3);
    }

    #[test]
    fn ring_shape() {
        let t = Topology::Ring(3);
        assert_eq!(t.edges(), vec![(0, 1), (1, 2), (2, 0)]);
        assert!(t.is_cyclic());
        assert_eq!(Topology::Ring(1).edges(), vec![]);
    }

    #[test]
    fn star_shape() {
        let t = Topology::Star { leaves: 3 };
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.edges(), vec![(1, 0), (2, 0), (3, 0)]);
        assert_eq!(t.sink(), 0);
        assert_eq!(t.depth_to_sink(), 1);
    }

    #[test]
    fn tree_shape() {
        let t = Topology::Tree { height: 2 };
        assert_eq!(t.node_count(), 7);
        let edges = t.edges();
        assert_eq!(edges.len(), 6);
        assert!(edges.contains(&(1, 0)) && edges.contains(&(2, 0)));
        assert!(edges.contains(&(3, 1)) && edges.contains(&(6, 2)));
        assert_eq!(t.depth_to_sink(), 2);
    }

    #[test]
    fn grid_shape() {
        let t = Topology::Grid { w: 2, h: 2 };
        let edges: BTreeSet<_> = t.edges().into_iter().collect();
        assert_eq!(edges, [(0, 1), (0, 2), (1, 3), (2, 3)].into());
        assert_eq!(t.sink(), 3);
        assert_eq!(t.depth_to_sink(), 2);
    }

    #[test]
    fn random_dag_is_connected_and_deterministic() {
        let t = Topology::RandomDag { n: 10, p_percent: 30, seed: 7 };
        let e1 = t.edges();
        let e2 = t.edges();
        assert_eq!(e1, e2);
        // Backbone present.
        for i in 0..9 {
            assert!(e1.contains(&(i, i + 1)));
        }
        // All edges i < j (acyclic).
        assert!(e1.iter().all(|(i, j)| i < j));
    }

    #[test]
    fn clique_shape() {
        let t = Topology::Clique(3);
        assert_eq!(t.edges().len(), 6);
        assert!(t.is_cyclic());
    }

    #[test]
    fn display_names() {
        assert_eq!(Topology::Chain(8).to_string(), "chain-8");
        assert_eq!(Topology::Grid { w: 3, h: 2 }.to_string(), "grid-3x2");
        assert_eq!(Topology::ScaleFree { n: 100, m: 3, seed: 1 }.to_string(), "scalefree-100-m3");
        assert_eq!(Topology::RingGradient { n: 64, chords: 4 }.to_string(), "ringgrad-64-c4");
    }

    #[test]
    fn scale_free_shape() {
        let t = Topology::ScaleFree { n: 200, m: 3, seed: 7 };
        let edges = t.edges();
        assert_eq!(t.edges(), edges, "deterministic");
        // Acyclic by construction: every edge points to an earlier node.
        assert!(edges.iter().all(|&(i, j)| j < i));
        // Each node i ≥ 1 attaches with min(m, i) distinct edges.
        assert_eq!(edges.len(), 1 + 2 + 3 * 197);
        for window in [(1usize, 1usize), (2, 2), (50, 3)] {
            let deg = edges.iter().filter(|&&(i, _)| i == window.0).count();
            assert_eq!(deg, window.1);
        }
        // Heavy tail: some early node accumulates far more than m links.
        let mut in_deg = vec![0usize; 200];
        for &(_, j) in &edges {
            in_deg[j] += 1;
        }
        assert!(in_deg.iter().max().unwrap() > &20, "hubs emerge: {:?}", in_deg.iter().max());
        assert!(!t.is_cyclic());
        assert_eq!(t.sink(), 0);
        // Everyone reaches the sink (node 0 is the first attachment
        // target, and paths strictly descend), within a small diameter.
        let d = t.depth_to_sink();
        assert!((1..=20).contains(&d), "scale-free diameter is small: {d}");
        // Different seeds give different graphs.
        assert_ne!(Topology::ScaleFree { n: 200, m: 3, seed: 8 }.edges(), edges);
    }

    #[test]
    fn ring_gradient_shape() {
        let t = Topology::RingGradient { n: 64, chords: 4 };
        let edges = t.edges();
        // Ring + chords at steps 2, 4, 8, 16: 5 × 64 edges.
        assert_eq!(edges.len(), 5 * 64);
        assert!(edges.contains(&(0, 1)) && edges.contains(&(63, 0)));
        assert!(edges.contains(&(0, 16)) && edges.contains(&(60, 12)));
        assert!(t.is_cyclic());
        // Chords shrink the diameter well below the ring's n-1.
        let d = t.depth_to_sink();
        assert!(d < 16, "small-world diameter: {d}");
        // Chord steps ≥ n are skipped rather than wrapped into duplicates.
        let tiny = Topology::RingGradient { n: 4, chords: 5 };
        assert_eq!(tiny.edges().len(), 2 * 4);
        assert_eq!(Topology::RingGradient { n: 1, chords: 3 }.edges(), vec![]);
    }

    #[test]
    fn edge_source_matches_inherent_edges() {
        use codb_net::EdgeSource;
        let t = Topology::ScaleFree { n: 50, m: 2, seed: 3 };
        assert_eq!(EdgeSource::node_count(&t), t.node_count());
        assert_eq!(t.edge_list(), t.edges());
    }
}
