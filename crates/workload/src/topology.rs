//! Network topology generators.
//!
//! The demo "measure\[s\] the performance of various networks arranged in
//! different topologies"; these generators produce the directed
//! acquaintance graphs the experiments sweep over. An edge `(i, j)` means
//! *data flows from node `i` to node `j`* — i.e. a coordination rule with
//! source `i` and target `j`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A topology family, sized.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// `0 → 1 → … → n-1`. Diameter `n-1`; the classic update-depth
    /// stressor.
    Chain(usize),
    /// A directed cycle `0 → 1 → … → n-1 → 0`: the minimal cyclic rule
    /// graph; the update fixpoint is genuinely recursive.
    Ring(usize),
    /// `leaves` leaf nodes all feeding node `0` (the hub).
    Star {
        /// Number of leaves (total nodes = leaves + 1).
        leaves: usize,
    },
    /// Complete binary in-tree of the given height: leaves push towards
    /// the root (node 0). Height 0 is a single node.
    Tree {
        /// Tree height.
        height: usize,
    },
    /// `w × h` grid; each cell feeds its right and down neighbours —
    /// acyclic with many redundant paths (duplicate-suppression stressor).
    Grid {
        /// Columns.
        w: usize,
        /// Rows.
        h: usize,
    },
    /// Erdős–Rényi-style random DAG: each pair `i < j` gets edge `i → j`
    /// with probability `p_percent/100`; a chain backbone guarantees
    /// connectivity.
    RandomDag {
        /// Node count.
        n: usize,
        /// Edge probability in percent (0–100).
        p_percent: u8,
        /// RNG seed.
        seed: u64,
    },
    /// Every ordered pair is an edge: the densest (cyclic) topology.
    Clique(usize),
}

impl Topology {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        match *self {
            Topology::Chain(n) | Topology::Ring(n) | Topology::Clique(n) => n,
            Topology::Star { leaves } => leaves + 1,
            Topology::Tree { height } => (1 << (height + 1)) - 1,
            Topology::Grid { w, h } => w * h,
            Topology::RandomDag { n, .. } => n,
        }
    }

    /// Directed data-flow edges `(source, target)`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        match *self {
            Topology::Chain(n) => (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect(),
            Topology::Ring(n) => {
                if n < 2 {
                    return Vec::new();
                }
                (0..n).map(|i| (i, (i + 1) % n)).collect()
            }
            Topology::Star { leaves } => (1..=leaves).map(|i| (i, 0)).collect(),
            Topology::Tree { .. } => {
                // Nodes 0..2^(h+1)-1 in heap order; children feed parents.
                let n = self.node_count();
                (1..n).map(|i| (i, (i - 1) / 2)).collect()
            }
            Topology::Grid { w, h } => {
                let mut edges = Vec::new();
                for row in 0..h {
                    for col in 0..w {
                        let i = row * w + col;
                        if col + 1 < w {
                            edges.push((i, i + 1));
                        }
                        if row + 1 < h {
                            edges.push((i, i + w));
                        }
                    }
                }
                edges
            }
            Topology::RandomDag { n, p_percent, seed } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut edges = Vec::new();
                // Backbone for connectivity.
                for i in 0..n.saturating_sub(1) {
                    edges.push((i, i + 1));
                }
                for i in 0..n {
                    for j in (i + 1)..n {
                        if j != i + 1 && rng.gen_range(0u8..100) < p_percent {
                            edges.push((i, j));
                        }
                    }
                }
                edges
            }
            Topology::Clique(n) => {
                let mut edges = Vec::new();
                for i in 0..n {
                    for j in 0..n {
                        if i != j {
                            edges.push((i, j));
                        }
                    }
                }
                edges
            }
        }
    }

    /// The natural "sink" node where the experiments pose queries / start
    /// updates: the chain end, the hub, the tree root, the grid corner.
    pub fn sink(&self) -> usize {
        match *self {
            Topology::Chain(n) => n.saturating_sub(1),
            Topology::Ring(_) => 0,
            Topology::Star { .. } | Topology::Tree { .. } => 0,
            Topology::Grid { w, h } => w * h - 1,
            Topology::RandomDag { n, .. } => n.saturating_sub(1),
            Topology::Clique(_) => 0,
        }
    }

    /// True iff the edge set contains a directed cycle.
    pub fn is_cyclic(&self) -> bool {
        matches!(self, Topology::Ring(n) if *n >= 2)
            || matches!(self, Topology::Clique(n) if *n >= 2)
    }

    /// The directed diameter towards the sink (longest shortest path), a
    /// lower bound for the longest update propagation path.
    pub fn depth_to_sink(&self) -> usize {
        match *self {
            Topology::Chain(n) => n.saturating_sub(1),
            Topology::Ring(n) => n.saturating_sub(1),
            Topology::Star { leaves } => usize::from(leaves > 0),
            Topology::Tree { height } => height,
            Topology::Grid { w, h } => (w - 1) + (h - 1),
            Topology::RandomDag { n, .. } => n.saturating_sub(1), // backbone
            Topology::Clique(n) => usize::from(n > 1),
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Topology::Chain(n) => write!(f, "chain-{n}"),
            Topology::Ring(n) => write!(f, "ring-{n}"),
            Topology::Star { leaves } => write!(f, "star-{leaves}"),
            Topology::Tree { height } => write!(f, "tree-h{height}"),
            Topology::Grid { w, h } => write!(f, "grid-{w}x{h}"),
            Topology::RandomDag { n, p_percent, .. } => write!(f, "random-{n}-p{p_percent}"),
            Topology::Clique(n) => write!(f, "clique-{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn chain_shape() {
        let t = Topology::Chain(4);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.edges(), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(t.sink(), 3);
        assert!(!t.is_cyclic());
        assert_eq!(t.depth_to_sink(), 3);
    }

    #[test]
    fn ring_shape() {
        let t = Topology::Ring(3);
        assert_eq!(t.edges(), vec![(0, 1), (1, 2), (2, 0)]);
        assert!(t.is_cyclic());
        assert_eq!(Topology::Ring(1).edges(), vec![]);
    }

    #[test]
    fn star_shape() {
        let t = Topology::Star { leaves: 3 };
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.edges(), vec![(1, 0), (2, 0), (3, 0)]);
        assert_eq!(t.sink(), 0);
        assert_eq!(t.depth_to_sink(), 1);
    }

    #[test]
    fn tree_shape() {
        let t = Topology::Tree { height: 2 };
        assert_eq!(t.node_count(), 7);
        let edges = t.edges();
        assert_eq!(edges.len(), 6);
        assert!(edges.contains(&(1, 0)) && edges.contains(&(2, 0)));
        assert!(edges.contains(&(3, 1)) && edges.contains(&(6, 2)));
        assert_eq!(t.depth_to_sink(), 2);
    }

    #[test]
    fn grid_shape() {
        let t = Topology::Grid { w: 2, h: 2 };
        let edges: BTreeSet<_> = t.edges().into_iter().collect();
        assert_eq!(edges, [(0, 1), (0, 2), (1, 3), (2, 3)].into());
        assert_eq!(t.sink(), 3);
        assert_eq!(t.depth_to_sink(), 2);
    }

    #[test]
    fn random_dag_is_connected_and_deterministic() {
        let t = Topology::RandomDag { n: 10, p_percent: 30, seed: 7 };
        let e1 = t.edges();
        let e2 = t.edges();
        assert_eq!(e1, e2);
        // Backbone present.
        for i in 0..9 {
            assert!(e1.contains(&(i, i + 1)));
        }
        // All edges i < j (acyclic).
        assert!(e1.iter().all(|(i, j)| i < j));
    }

    #[test]
    fn clique_shape() {
        let t = Topology::Clique(3);
        assert_eq!(t.edges().len(), 6);
        assert!(t.is_cyclic());
    }

    #[test]
    fn display_names() {
        assert_eq!(Topology::Chain(8).to_string(), "chain-8");
        assert_eq!(Topology::Grid { w: 3, h: 2 }.to_string(), "grid-3x2");
    }
}
