//! Seeded data generators for node databases.

use codb_relational::{tup, Tuple};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Distribution of generated integer values.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DataDist {
    /// Uniform over `[0, domain)`.
    Uniform {
        /// Exclusive upper bound.
        domain: u64,
    },
    /// Zipf-like over `[0, domain)` with the given exponent ×100 (e.g.
    /// `exponent_x100: 100` is the classic `1/rank` distribution). Skewed
    /// data increases duplicate rates across nodes, stressing the
    /// duplicate-suppression path.
    Zipf {
        /// Exclusive upper bound.
        domain: u64,
        /// Exponent scaled by 100 (integer so the spec stays `Eq`/hashable).
        exponent_x100: u32,
    },
}

impl DataDist {
    /// Draws one value.
    pub fn sample(&self, rng: &mut SmallRng) -> i64 {
        match *self {
            DataDist::Uniform { domain } => rng.gen_range(0..domain.max(1)) as i64,
            DataDist::Zipf { domain, exponent_x100 } => {
                zipf_sample(rng, domain.max(1), exponent_x100 as f64 / 100.0)
            }
        }
    }
}

/// Inverse-CDF Zipf sampler over ranks `1..=n`, returned 0-based.
/// O(log n) per draw via binary search over the precomputed-free harmonic
/// partial sums approximation (exact via iteration for small n, bounded
/// approximation otherwise).
fn zipf_sample(rng: &mut SmallRng, n: u64, s: f64) -> i64 {
    // For the domain sizes the experiments use (≤ 1e6) the rejection
    // sampler of Devroye is simpler and fast enough.
    // See Devroye, "Non-Uniform Random Variate Generation", X.6.1.
    let n_f = n as f64;
    loop {
        let u: f64 = rng.gen();
        let v: f64 = rng.gen();
        // Inverse of the bounding envelope.
        let x = if (s - 1.0).abs() < 1e-9 {
            n_f.powf(u)
        } else {
            let t = (n_f.powf(1.0 - s) - 1.0) * u + 1.0;
            t.powf(1.0 / (1.0 - s))
        };
        let k = x.floor().max(1.0).min(n_f);
        // Acceptance test.
        let ratio = (k / x).powf(s);
        if v * ratio <= 1.0 {
            return k as i64 - 1;
        }
    }
}

/// Generates `count` binary tuples `(key, value)` for one node. Keys are
/// drawn from the distribution; values uniform over the same domain.
/// Duplicate tuples may be drawn; set semantics dedups them on insert, so
/// callers that need an exact count should use [`generate_distinct`].
pub fn generate(seed: u64, count: usize, dist: DataDist) -> Vec<Tuple> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let domain = match dist {
        DataDist::Uniform { domain } | DataDist::Zipf { domain, .. } => domain.max(1),
    };
    (0..count)
        .map(|_| {
            let k = dist.sample(&mut rng);
            let v = rng.gen_range(0..domain) as i64;
            tup![k, v]
        })
        .collect()
}

/// Like [`generate`] but guarantees `count` *distinct* tuples (retries
/// duplicates; the caller must keep `count` well below `domain²`).
pub fn generate_distinct(seed: u64, count: usize, dist: DataDist) -> Vec<Tuple> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let domain = match dist {
        DataDist::Uniform { domain } | DataDist::Zipf { domain, .. } => domain.max(1),
    };
    let mut seen = std::collections::HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    let mut guard = 0usize;
    while out.len() < count {
        guard += 1;
        assert!(
            guard < count.saturating_mul(100) + 1000,
            "domain too small for {count} distinct tuples"
        );
        let k = dist.sample(&mut rng);
        let v = rng.gen_range(0..domain) as i64;
        if seen.insert((k, v)) {
            out.push(tup![k, v]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let d = DataDist::Uniform { domain: 100 };
        assert_eq!(generate(1, 50, d), generate(1, 50, d));
        assert_ne!(generate(1, 50, d), generate(2, 50, d));
    }

    #[test]
    fn distinct_yields_exact_count() {
        let d = DataDist::Uniform { domain: 50 };
        let ts = generate_distinct(3, 200, d);
        assert_eq!(ts.len(), 200);
        let set: std::collections::HashSet<_> = ts.iter().collect();
        assert_eq!(set.len(), 200);
    }

    #[test]
    fn uniform_stays_in_domain() {
        let d = DataDist::Uniform { domain: 10 };
        for t in generate(9, 500, d) {
            match t[0] {
                codb_relational::Value::Int(k) => assert!((0..10).contains(&k)),
                _ => panic!("ints expected"),
            }
        }
    }

    #[test]
    fn zipf_skews_towards_low_ranks() {
        let d = DataDist::Zipf { domain: 1000, exponent_x100: 110 };
        let ts = generate(7, 3000, d);
        let low =
            ts.iter().filter(|t| matches!(t[0], codb_relational::Value::Int(k) if k < 10)).count();
        // With s=1.1 over 1000 values, the top-10 ranks carry a large share.
        assert!(low > 1000, "zipf skew expected, got {low}/3000 low keys");
    }

    #[test]
    #[should_panic(expected = "domain too small")]
    fn distinct_panics_when_domain_exhausted() {
        let d = DataDist::Uniform { domain: 2 };
        let _ = generate_distinct(1, 100, d); // only 4 distinct pairs exist
    }
}
