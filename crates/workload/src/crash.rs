//! Crash/restart scenarios: kill a node mid-update, recover it from its
//! data directory, and verify it reconverges to the network fixpoint.
//!
//! This is the dynamic-network experiment family the paper assumes an
//! RDBMS for: peers leave (crash), their durable state survives, and they
//! rejoin. The runner compares the crashed-and-recovered network against a
//! *control* network that never crashed:
//!
//! 1. The control network runs the update schedule to quiescence.
//! 2. The experiment network attaches a [`codb_store::Store`] to the
//!    victim, starts the same update, is killed after a fixed number of
//!    simulator events (dropping all in-memory state), and the survivors
//!    run to quiescence — update traffic toward the victim exhausts its
//!    retransmission budget and **parks behind the rejoin barrier**
//!    (`codb_core::reliable`): held, not abandoned, with the
//!    Dijkstra–Scholten deficits it represents, so the doomed update
//!    pauses instead of completing without the victim.
//! 3. The victim is restarted from disk (snapshot + WAL-tail replay,
//!    protocol counters included) and rejoins as a **first-class peer**:
//!    its `Rejoin` announcement makes every neighbor invalidate the
//!    incremental sent-caches pointed at it (`codb_core::rejoin`),
//!    release the parked messages in order, and push a `RejoinRepair`
//!    re-send of every link toward it — the paused update now completes
//!    and the victim's lost records are restored *at the handshake*. A
//!    follow-up update — initiated by the *recovered node itself* when
//!    [`CrashRestartPlan::recovered_initiates`] is set — then reconverges
//!    the network.
//! 4. States are compared: strict instance equality, null-factory counter
//!    equality, and instance isomorphism (equality up to renaming of
//!    marked nulls — the right notion when GLAV rules invent nulls, whose
//!    labels depend on apply order).
//!
//! Scenarios run with `incremental_updates: true` by default: the rejoin
//! handshake repairs the one assumption a crash breaks (sender caches
//! presume receivers never forget) by falling back to a single full
//! re-send toward the rejoined node, after which incremental deltas
//! resume. Set [`CrashRestartPlan::incremental_updates`] to `false` to
//! reproduce the pre-handshake behaviour (every update re-ships
//! everything).

use crate::scenario::Scenario;
use codb_core::{Body, CoDbNetwork, Envelope, NodeId, NodeSettings, UpdateId, HARNESS_PEER};
use codb_net::SimConfig;
use codb_store::{Codec, SyncPolicy};
use std::path::Path;

/// One crash/restart experiment.
#[derive(Clone, Copy, Debug)]
pub struct CrashRestartPlan {
    /// The workload (topology, rules, data).
    pub scenario: Scenario,
    /// The node to kill. May be the update initiator (the scenario sink):
    /// recovered nodes resume their persisted protocol counters and mint
    /// `(epoch, seq)`-keyed ids, so a rejoined initiator cannot collide
    /// with its dead incarnation.
    pub victim: NodeId,
    /// Kill after this many simulator events of the first update; `None`
    /// kills one third of the way through (calibrated on the control run).
    pub kill_after_events: Option<u64>,
    /// WAL durability policy for the victim's store.
    pub sync: SyncPolicy,
    /// On-disk payload codec for the victim's store (the crash/recover
    /// path is exercised under both codecs by the differential harness).
    pub codec: Codec,
    /// Keep sender-side firing caches across updates (the E15 ablation
    /// axis). The default `true` exercises the rejoin handshake's
    /// cache-invalidation path; `false` repairs by full re-send on every
    /// update.
    pub incremental_updates: bool,
    /// Have the *recovered victim* initiate the post-restart
    /// reconvergence update (the rejoin-as-initiator scenario). With
    /// `false` the scenario sink initiates, as before.
    pub recovered_initiates: bool,
    /// Checkpoint the victim's store (snapshot + WAL rotation) every this
    /// many simulator events while it lives — exercises recovery from a
    /// compacted store and bounds WAL replay at restart.
    pub checkpoint_victim_every: Option<u64>,
}

impl CrashRestartPlan {
    /// A plan with auto-calibrated kill point, full durability,
    /// incremental updates on, and the sink initiating throughout.
    pub fn new(scenario: Scenario, victim: NodeId) -> Self {
        CrashRestartPlan {
            scenario,
            victim,
            kill_after_events: None,
            sync: SyncPolicy::Always,
            codec: Codec::Binary,
            incremental_updates: true,
            recovered_initiates: false,
            checkpoint_victim_every: None,
        }
    }
}

/// What a crash/restart run observed.
#[derive(Clone, Debug)]
pub struct CrashRestartReport {
    /// Simulator events the control network needed for the first update.
    pub control_events: u64,
    /// Event count at which the victim was killed.
    pub kill_at_event: u64,
    /// True when the network still had in-flight work at the kill (the
    /// kill landed mid-update, as intended).
    pub killed_mid_update: bool,
    /// WAL records replayed during recovery (cache checkpoint included).
    pub wal_records_replayed: u64,
    /// Snapshot generation recovery started from.
    pub recovered_generation: u64,
    /// True when recovery found (and truncated) a torn final frame.
    pub torn_tail: bool,
    /// The victim's incarnation epoch after recovery (≥ 1).
    pub victim_epoch: u64,
    /// `Rejoin` + `RejoinAck` messages exchanged during the restart (the
    /// handshake half of the rejoin cost).
    pub rejoin_messages: u64,
    /// Messages survivors parked behind the rejoin barrier while the
    /// victim was down (held instead of abandoned).
    pub barrier_parked: u64,
    /// Parked messages released (re-sent in order) when the victim's new
    /// incarnation was heard from.
    pub barrier_released: u64,
    /// `RejoinRepair` batches pushed at the handshake — the re-send that
    /// restores the victim's lost records at barrier release rather than
    /// at the next organic update.
    pub repair_messages: u64,
    /// Protocol messages of the post-restart reconvergence update in the
    /// experiment network (includes the fallback full re-send toward the
    /// rejoined node).
    pub reconverge_messages: u64,
    /// Protocol messages of the same update in the never-crashed control
    /// (the baseline the re-send overhead is measured against).
    pub control_reconverge_messages: u64,
    /// Node that initiated the post-restart update (the victim when
    /// [`CrashRestartPlan::recovered_initiates`] is set).
    pub reconverge_origin: NodeId,
    /// Id of the post-restart update — epoch-keyed, so when the victim
    /// initiates, `recovered_update.epoch == victim_epoch`.
    pub recovered_update: UpdateId,
    /// Victim tuples right after recovery, before reconvergence.
    pub victim_tuples_at_recovery: usize,
    /// Victim tuples after reconvergence.
    pub victim_tuples_final: usize,
    /// Victim LDB strictly equal to the control victim's.
    pub instances_equal: bool,
    /// Victim null-factory counter equal to the control victim's.
    pub factories_equal: bool,
    /// Victim LDB isomorphic (equal up to null renaming) to the control's.
    pub isomorphic: bool,
    /// Every node's LDB strictly equal to its control counterpart.
    pub all_nodes_equal: bool,
}

impl CrashRestartReport {
    /// The acceptance bar: the recovered victim matches the control node
    /// exactly — instance and null factory (strict equality is implied by
    /// isomorphism only for null-free data, so both are checked).
    pub fn recovered_exactly(&self) -> bool {
        self.instances_equal && self.factories_equal
    }

    /// The rejoin cost in messages: the handshake itself plus the re-send
    /// overhead of the reconvergence update relative to the never-crashed
    /// control (the E17 "rejoin cost" column).
    pub fn rejoin_cost_messages(&self) -> u64 {
        self.rejoin_messages
            + self.reconverge_messages.saturating_sub(self.control_reconverge_messages)
    }

    /// The barrier's share of the rejoin cost in messages: parked traffic
    /// re-sent at release plus the `RejoinRepair` push (the E17 "barrier
    /// cost" column). These messages replace the pre-barrier abandonments
    /// and the extra reconvergence round they used to force.
    pub fn barrier_cost_messages(&self) -> u64 {
        self.barrier_released + self.repair_messages
    }
}

fn settings(plan: &CrashRestartPlan) -> NodeSettings {
    NodeSettings { incremental_updates: plan.incremental_updates, ..NodeSettings::default() }
}

/// Sums `Rejoin` + `RejoinAck` sends across every live node's statistics
/// module (shared with the fault-injection harness). A crash wipes the
/// victim's in-memory report, so on multi-crash schedules the caller must
/// bank the victim's counts ([`node_rejoin_messages`]) before killing it.
pub(crate) fn rejoin_messages(net: &CoDbNetwork) -> u64 {
    net.network_report().nodes.values().map(node_rejoin_messages).sum()
}

/// `Rejoin` + `RejoinAck` sends recorded in one node's report.
pub(crate) fn node_rejoin_messages(report: &codb_core::NodeReport) -> u64 {
    report.messages_sent.get("rejoin").copied().unwrap_or(0)
        + report.messages_sent.get("rejoin_ack").copied().unwrap_or(0)
}

/// Rejoin-barrier counters in one node's report: messages parked behind
/// the barrier, parked messages released, and `RejoinRepair` batches sent.
pub(crate) fn node_barrier_counters(report: &codb_core::NodeReport) -> (u64, u64, u64) {
    let get = |key: &str| report.messages_sent.get(key).copied().unwrap_or(0);
    (get("barrier_parked"), get("barrier_released"), get("rejoin_repair"))
}

/// Whole-network sums of [`node_barrier_counters`] (live nodes only; on
/// multi-crash schedules the caller banks victims before killing them).
pub(crate) fn barrier_counters(net: &CoDbNetwork) -> (u64, u64, u64) {
    net.network_report().nodes.values().fold((0, 0, 0), |acc, r| {
        let (parked, released, repairs) = node_barrier_counters(r);
        (acc.0 + parked, acc.1 + released, acc.2 + repairs)
    })
}

/// Runs the crash/restart scenario of `plan`, persisting the victim under
/// `data_root/<victim-name>`. The directory must be fresh (the victim's
/// store is created, crashed, and recovered within this call).
pub fn run_crash_restart(
    plan: &CrashRestartPlan,
    data_root: &Path,
) -> Result<CrashRestartReport, codb_store::StoreError> {
    let config = plan.scenario.build_config();
    let sink = plan.scenario.sink();
    let victim_name = config
        .nodes
        .iter()
        .find(|n| n.id == plan.victim)
        .map(|n| n.name.clone())
        .expect("victim is a configured node");
    let dir = CoDbNetwork::node_data_dir(data_root, &victim_name);
    let reconverge_origin = if plan.recovered_initiates { plan.victim } else { sink };

    // 1. Control network: the same update schedule, never crashed. The
    // kill point is calibrated on the first update's own event count
    // (startup events — pipes, adverts — excluded, since the experiment
    // network counts steps only from the update injection).
    let mut control =
        CoDbNetwork::build_with(config.clone(), SimConfig::default(), settings(plan), false)
            .expect("scenario configs validate");
    let startup_events = control.sim().events_processed();
    control.run_update(sink);
    let control_events = control.sim().events_processed() - startup_events;
    let control_second = control.run_update(reconverge_origin);

    // 2. Experiment network: persist the victim, kill it mid-update.
    let mut net =
        CoDbNetwork::build_with(config.clone(), SimConfig::default(), settings(plan), false)
            .expect("scenario configs validate");
    net.open_node_persistence(plan.victim, &dir, plan.sync, plan.codec)?;
    let kill_at = plan.kill_after_events.unwrap_or((control_events / 3).max(1));
    net.sim_mut().inject(HARNESS_PEER, sink.peer(), Envelope::control(Body::StartUpdate));
    let mut stepped = 0u64;
    while stepped < kill_at && net.sim_mut().step() {
        stepped += 1;
        if let Some(every) = plan.checkpoint_victim_every {
            if every > 0 && stepped.is_multiple_of(every) {
                net.checkpoint_node(plan.victim)?;
            }
        }
    }
    let killed_mid_update = !net.sim().is_quiescent();
    assert!(net.crash_node(plan.victim), "victim was alive until the kill");
    net.sim_mut().run_until_quiescent();

    // 3. Restart the victim from disk. The restart runs the rejoin
    // handshake to quiescence: the victim announces its new epoch and the
    // neighbors invalidate their sent-caches toward it.
    let recovery = net.restart_node_from_disk(plan.victim, &dir, plan.sync, plan.codec)?;
    let victim_tuples_at_recovery = net.node(plan.victim).ldb().tuple_count();
    let rejoin_msgs = rejoin_messages(&net);
    let (barrier_parked, barrier_released, repair_messages) = barrier_counters(&net);
    // Reconverge — initiated by the recovered node itself when the plan
    // says so (rejoin-as-initiator: the id space must resume, not clash).
    let reconverge = net.run_update(reconverge_origin);

    // 4. Compare against the control network.
    let control_victim = control.node(plan.victim);
    let victim = net.node(plan.victim);
    let instances_equal = victim.ldb() == control_victim.ldb();
    let factories_equal = victim.nulls_invented() == control_victim.nulls_invented();
    let isomorphic = codb_relational::isomorphic(victim.ldb(), control_victim.ldb());
    let all_nodes_equal =
        config.nodes.iter().all(|n| net.node(n.id).ldb() == control.node(n.id).ldb());

    Ok(CrashRestartReport {
        control_events,
        kill_at_event: stepped,
        killed_mid_update,
        wal_records_replayed: recovery.wal_records_replayed,
        recovered_generation: recovery.generation,
        torn_tail: recovery.torn_tail,
        victim_epoch: recovery.epoch,
        rejoin_messages: rejoin_msgs,
        barrier_parked,
        barrier_released,
        repair_messages,
        reconverge_messages: reconverge.messages,
        control_reconverge_messages: control_second.messages,
        reconverge_origin,
        recovered_update: reconverge.update,
        victim_tuples_at_recovery,
        victim_tuples_final: victim.ldb().tuple_count(),
        instances_equal,
        factories_equal,
        isomorphic,
        all_nodes_equal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use crate::RuleStyle;
    use codb_store::ScratchDir;

    #[test]
    fn chain_copy_rules_recover_exactly() {
        let tmp = ScratchDir::new("crash-chain");
        let s = Scenario { tuples_per_node: 20, ..Scenario::quick(Topology::Chain(4)) };
        let plan = CrashRestartPlan::new(s, NodeId(1));
        let report = run_crash_restart(&plan, tmp.path()).unwrap();
        assert!(report.killed_mid_update, "{report:?}");
        assert!(report.recovered_exactly(), "{report:?}");
        assert!(report.all_nodes_equal, "{report:?}");
        assert!(report.wal_records_replayed >= 1, "{report:?}");
        assert!(report.rejoin_messages >= 2, "handshake ran: {report:?}");
        assert_eq!(report.victim_epoch, 1, "{report:?}");
        // The handshake pushed a repair toward the recovered victim (the
        // kill may land after in-flight traffic toward it was already
        // acked, so parked counts can legitimately be zero — the repair
        // push always runs).
        assert!(report.repair_messages > 0, "{report:?}");
        assert!(report.barrier_cost_messages() > 0, "{report:?}");
    }

    #[test]
    fn ring_recovers_exactly() {
        let tmp = ScratchDir::new("crash-ring");
        let s = Scenario { tuples_per_node: 10, ..Scenario::quick(Topology::Ring(3)) };
        let victim = NodeId(if s.sink() == NodeId(1) { 2 } else { 1 });
        let plan = CrashRestartPlan::new(s, victim);
        let report = run_crash_restart(&plan, tmp.path()).unwrap();
        assert!(report.recovered_exactly(), "{report:?}");
        assert!(report.all_nodes_equal, "{report:?}");
    }

    #[test]
    fn glav_rules_recover_isomorphically() {
        // Existential rules invent marked nulls whose labels depend on
        // apply order; the recovered fixpoint is equal up to null renaming
        // and the factory counters must agree.
        let tmp = ScratchDir::new("crash-glav");
        let s = Scenario {
            rule_style: RuleStyle::ProjectGlav,
            tuples_per_node: 12,
            ..Scenario::quick(Topology::Chain(3))
        };
        let plan = CrashRestartPlan::new(s, NodeId(1));
        let report = run_crash_restart(&plan, tmp.path()).unwrap();
        assert!(report.isomorphic, "{report:?}");
        assert!(report.factories_equal, "{report:?}");
    }

    #[test]
    fn late_kill_after_quiescence_still_recovers() {
        // Killing after the update finished exercises the "node leaves and
        // rejoins" (no data lost in flight) flavour.
        let tmp = ScratchDir::new("crash-late");
        let s = Scenario { tuples_per_node: 5, ..Scenario::quick(Topology::Chain(3)) };
        let plan = CrashRestartPlan {
            kill_after_events: Some(u64::MAX),
            ..CrashRestartPlan::new(s, NodeId(0))
        };
        let report = run_crash_restart(&plan, tmp.path()).unwrap();
        assert!(!report.killed_mid_update, "{report:?}");
        assert!(report.recovered_exactly(), "{report:?}");
    }

    #[test]
    fn crashed_initiator_initiates_again_without_id_collision() {
        // The PR-2 regression this module existed to dodge: the *update
        // initiator* crashes mid-own-update, recovers, and initiates the
        // reconvergence update itself. Its persisted counters resume the
        // seq space and its bumped epoch keys the new id, so the new
        // update cannot collide with the one its dead incarnation minted.
        let tmp = ScratchDir::new("crash-initiator");
        let s = Scenario { tuples_per_node: 15, ..Scenario::quick(Topology::Chain(4)) };
        let victim = s.sink(); // the initiator itself
        let plan =
            CrashRestartPlan { recovered_initiates: true, ..CrashRestartPlan::new(s, victim) };
        let report = run_crash_restart(&plan, tmp.path()).unwrap();
        assert!(report.killed_mid_update, "{report:?}");
        assert_eq!(report.reconverge_origin, victim, "{report:?}");
        // The dead incarnation minted (victim, epoch 0, seq 0); the new
        // update resumed the counter under the new epoch.
        assert_eq!(report.recovered_update.origin, victim, "{report:?}");
        assert_eq!(report.recovered_update.epoch, report.victim_epoch, "{report:?}");
        assert!(report.recovered_update.epoch >= 1, "{report:?}");
        assert!(report.recovered_update.seq >= 1, "counters resumed, not restarted: {report:?}");
        assert!(report.recovered_exactly(), "{report:?}");
        assert!(report.all_nodes_equal, "{report:?}");
    }

    #[test]
    fn incremental_caches_resume_after_one_full_resend() {
        // The tentpole property: with incremental updates ON, the crash
        // is repaired by exactly one fallback re-send toward the rejoined
        // node, and the network still reconverges to the control state.
        let tmp = ScratchDir::new("crash-incremental");
        let s = Scenario { tuples_per_node: 20, ..Scenario::quick(Topology::Chain(4)) };
        let plan = CrashRestartPlan::new(s, NodeId(2));
        assert!(plan.incremental_updates, "incremental is the default now");
        let report = run_crash_restart(&plan, tmp.path()).unwrap();
        assert!(report.recovered_exactly(), "{report:?}");
        assert!(report.all_nodes_equal, "{report:?}");
        // The reconvergence update re-sends toward the victim, so it costs
        // more than the control's incremental second update (which ships
        // nothing new), but the handshake keeps the overhead bounded.
        assert!(report.reconverge_messages >= report.control_reconverge_messages, "{report:?}");
        assert!(report.rejoin_cost_messages() > 0, "{report:?}");
    }

    #[test]
    fn victim_checkpoints_bound_wal_replay() {
        // Checkpointing the victim mid-run compacts the WAL: recovery
        // starts from a later generation with a short tail.
        let tmp = ScratchDir::new("crash-ckpt");
        let s = Scenario { tuples_per_node: 20, ..Scenario::quick(Topology::Chain(4)) };
        let plan = CrashRestartPlan {
            checkpoint_victim_every: Some(5),
            ..CrashRestartPlan::new(s, NodeId(1))
        };
        let report = run_crash_restart(&plan, tmp.path()).unwrap();
        assert!(report.recovered_generation >= 1, "{report:?}");
        assert!(report.recovered_exactly(), "{report:?}");
        assert!(report.all_nodes_equal, "{report:?}");
    }
}
