//! Crash/restart scenarios: kill a node mid-update, recover it from its
//! data directory, and verify it reconverges to the network fixpoint.
//!
//! This is the dynamic-network experiment family the paper assumes an
//! RDBMS for: peers leave (crash), their durable state survives, and they
//! rejoin. The runner compares the crashed-and-recovered network against a
//! *control* network that never crashed:
//!
//! 1. The control network runs the update schedule to quiescence.
//! 2. The experiment network attaches a [`codb_store::Store`] to the
//!    victim, starts the same update, is killed after a fixed number of
//!    simulator events (dropping all in-memory state), and the survivors
//!    run to quiescence — the update completes without the victim (the
//!    documented crash semantics).
//! 3. The victim is restarted from disk (snapshot + WAL-tail replay) and a
//!    follow-up update reconverges the network.
//! 4. States are compared: strict instance equality, null-factory counter
//!    equality, and instance isomorphism (equality up to renaming of
//!    marked nulls — the right notion when GLAV rules invent nulls, whose
//!    labels depend on apply order).
//!
//! Both networks run with `incremental_updates: false`: sender-side firing
//! caches assume receivers never forget, which is exactly what a crash
//! violates — a recovered receiver is repaired by a full re-send, with its
//! recovered receive caches suppressing everything it already holds.

use crate::scenario::Scenario;
use codb_core::{Body, CoDbNetwork, Envelope, NodeId, NodeSettings, HARNESS_PEER};
use codb_net::SimConfig;
use codb_store::SyncPolicy;
use std::path::Path;

/// One crash/restart experiment.
#[derive(Clone, Copy, Debug)]
pub struct CrashRestartPlan {
    /// The workload (topology, rules, data).
    pub scenario: Scenario,
    /// The node to kill. Must not be the update initiator (the scenario
    /// sink): a restarted node's protocol sequence numbers start fresh, so
    /// recovered nodes rejoin as responders.
    pub victim: NodeId,
    /// Kill after this many simulator events of the first update; `None`
    /// kills one third of the way through (calibrated on the control run).
    pub kill_after_events: Option<u64>,
    /// WAL durability policy for the victim's store.
    pub sync: SyncPolicy,
}

impl CrashRestartPlan {
    /// A plan with auto-calibrated kill point and full durability.
    pub fn new(scenario: Scenario, victim: NodeId) -> Self {
        CrashRestartPlan { scenario, victim, kill_after_events: None, sync: SyncPolicy::Always }
    }
}

/// What a crash/restart run observed.
#[derive(Clone, Debug)]
pub struct CrashRestartReport {
    /// Simulator events the control network needed for the first update.
    pub control_events: u64,
    /// Event count at which the victim was killed.
    pub kill_at_event: u64,
    /// True when the network still had in-flight work at the kill (the
    /// kill landed mid-update, as intended).
    pub killed_mid_update: bool,
    /// WAL records replayed during recovery (cache checkpoint included).
    pub wal_records_replayed: u64,
    /// Snapshot generation recovery started from.
    pub recovered_generation: u64,
    /// True when recovery found (and truncated) a torn final frame.
    pub torn_tail: bool,
    /// Victim tuples right after recovery, before reconvergence.
    pub victim_tuples_at_recovery: usize,
    /// Victim tuples after reconvergence.
    pub victim_tuples_final: usize,
    /// Victim LDB strictly equal to the control victim's.
    pub instances_equal: bool,
    /// Victim null-factory counter equal to the control victim's.
    pub factories_equal: bool,
    /// Victim LDB isomorphic (equal up to null renaming) to the control's.
    pub isomorphic: bool,
    /// Every node's LDB strictly equal to its control counterpart.
    pub all_nodes_equal: bool,
}

impl CrashRestartReport {
    /// The acceptance bar: the recovered victim matches the control node
    /// exactly — instance and null factory (strict equality is implied by
    /// isomorphism only for null-free data, so both are checked).
    pub fn recovered_exactly(&self) -> bool {
        self.instances_equal && self.factories_equal
    }
}

fn settings() -> NodeSettings {
    NodeSettings { incremental_updates: false, ..NodeSettings::default() }
}

/// Runs the crash/restart scenario of `plan`, persisting the victim under
/// `data_root/<victim-name>`. The directory must be fresh (the victim's
/// store is created, crashed, and recovered within this call).
pub fn run_crash_restart(
    plan: &CrashRestartPlan,
    data_root: &Path,
) -> Result<CrashRestartReport, codb_store::StoreError> {
    let config = plan.scenario.build_config();
    let sink = plan.scenario.sink();
    assert_ne!(plan.victim, sink, "the victim must not be the update initiator");
    let victim_name = config
        .nodes
        .iter()
        .find(|n| n.id == plan.victim)
        .map(|n| n.name.clone())
        .expect("victim is a configured node");
    let dir = CoDbNetwork::node_data_dir(data_root, &victim_name);

    // 1. Control network: the same update schedule, never crashed. The
    // kill point is calibrated on the first update's own event count
    // (startup events — pipes, adverts — excluded, since the experiment
    // network counts steps only from the update injection).
    let mut control =
        CoDbNetwork::build_with(config.clone(), SimConfig::default(), settings(), false)
            .expect("scenario configs validate");
    let startup_events = control.sim().events_processed();
    control.run_update(sink);
    let control_events = control.sim().events_processed() - startup_events;
    control.run_update(sink);

    // 2. Experiment network: persist the victim, kill it mid-update.
    let mut net = CoDbNetwork::build_with(config.clone(), SimConfig::default(), settings(), false)
        .expect("scenario configs validate");
    net.open_node_persistence(plan.victim, &dir, plan.sync)?;
    let kill_at = plan.kill_after_events.unwrap_or((control_events / 3).max(1));
    net.sim_mut().inject(HARNESS_PEER, sink.peer(), Envelope::control(Body::StartUpdate));
    let mut stepped = 0u64;
    while stepped < kill_at && net.sim_mut().step() {
        stepped += 1;
    }
    let killed_mid_update = !net.sim().is_quiescent();
    assert!(net.crash_node(plan.victim), "victim was alive until the kill");
    net.sim_mut().run_until_quiescent();

    // 3. Restart the victim from disk, then reconverge.
    let recovery = net.restart_node_from_disk(plan.victim, &dir, plan.sync)?;
    let victim_tuples_at_recovery = net.node(plan.victim).ldb().tuple_count();
    net.run_update(sink);

    // 4. Compare against the control network.
    let control_victim = control.node(plan.victim);
    let victim = net.node(plan.victim);
    let instances_equal = victim.ldb() == control_victim.ldb();
    let factories_equal =
        victim.snapshot().nulls.invented() == control_victim.snapshot().nulls.invented();
    let isomorphic = codb_relational::isomorphic(victim.ldb(), control_victim.ldb());
    let all_nodes_equal =
        config.nodes.iter().all(|n| net.node(n.id).ldb() == control.node(n.id).ldb());

    Ok(CrashRestartReport {
        control_events,
        kill_at_event: stepped,
        killed_mid_update,
        wal_records_replayed: recovery.wal_records_replayed,
        recovered_generation: recovery.generation,
        torn_tail: recovery.torn_tail,
        victim_tuples_at_recovery,
        victim_tuples_final: victim.ldb().tuple_count(),
        instances_equal,
        factories_equal,
        isomorphic,
        all_nodes_equal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use crate::RuleStyle;
    use codb_store::ScratchDir;

    #[test]
    fn chain_copy_rules_recover_exactly() {
        let tmp = ScratchDir::new("crash-chain");
        let s = Scenario { tuples_per_node: 20, ..Scenario::quick(Topology::Chain(4)) };
        let plan = CrashRestartPlan::new(s, NodeId(1));
        let report = run_crash_restart(&plan, tmp.path()).unwrap();
        assert!(report.killed_mid_update, "{report:?}");
        assert!(report.recovered_exactly(), "{report:?}");
        assert!(report.all_nodes_equal, "{report:?}");
        assert!(report.wal_records_replayed >= 1, "{report:?}");
    }

    #[test]
    fn ring_recovers_exactly() {
        let tmp = ScratchDir::new("crash-ring");
        let s = Scenario { tuples_per_node: 10, ..Scenario::quick(Topology::Ring(3)) };
        let victim = NodeId(if s.sink() == NodeId(1) { 2 } else { 1 });
        let plan = CrashRestartPlan::new(s, victim);
        let report = run_crash_restart(&plan, tmp.path()).unwrap();
        assert!(report.recovered_exactly(), "{report:?}");
        assert!(report.all_nodes_equal, "{report:?}");
    }

    #[test]
    fn glav_rules_recover_isomorphically() {
        // Existential rules invent marked nulls whose labels depend on
        // apply order; the recovered fixpoint is equal up to null renaming
        // and the factory counters must agree.
        let tmp = ScratchDir::new("crash-glav");
        let s = Scenario {
            rule_style: RuleStyle::ProjectGlav,
            tuples_per_node: 12,
            ..Scenario::quick(Topology::Chain(3))
        };
        let plan = CrashRestartPlan::new(s, NodeId(1));
        let report = run_crash_restart(&plan, tmp.path()).unwrap();
        assert!(report.isomorphic, "{report:?}");
        assert!(report.factories_equal, "{report:?}");
    }

    #[test]
    fn late_kill_after_quiescence_still_recovers() {
        // Killing after the update finished exercises the "node leaves and
        // rejoins" (no data lost in flight) flavour.
        let tmp = ScratchDir::new("crash-late");
        let s = Scenario { tuples_per_node: 5, ..Scenario::quick(Topology::Chain(3)) };
        let plan = CrashRestartPlan {
            kill_after_events: Some(u64::MAX),
            ..CrashRestartPlan::new(s, NodeId(0))
        };
        let report = run_crash_restart(&plan, tmp.path()).unwrap();
        assert!(!report.killed_mid_update, "{report:?}");
        assert!(report.recovered_exactly(), "{report:?}");
    }
}
