//! Deterministic fault-injection harness: seeded schedules of
//! crash / restart / checkpoint / message-loss events driven through the
//! simulator clock, replayable from a printed seed.
//!
//! A [`FaultPlan`] is generated from a scenario and one `u64` seed:
//! a sequence of update *rounds*, each with an initiator and a list of
//! [`Fault`]s pinned to simulator event counts (relative to the round's
//! injection). [`run_fault_plan`] executes the plan twice —
//!
//! * a **control** network runs the identical update schedule with no
//!   faults and lossless pipes;
//! * the **experiment** network runs it with per-pipe message loss, nodes
//!   crashing mid-round (their in-memory state dropped on the floor),
//!   stores checkpointing (snapshot + WAL compaction) at arbitrary
//!   points, and every crashed node restarted from disk — between rounds
//!   by default, or **mid-round** via a scheduled [`FaultKind::Restart`]
//!   — which triggers the crash-rejoin handshake (`codb_core::rejoin`):
//!   survivors release the update traffic they parked behind the rejoin
//!   barrier while the node was down, push a `RejoinRepair` re-send of
//!   every link toward it, and, when the generator picks the freshly
//!   rejoined node as the next initiator, the rejoin-as-initiator path
//!   runs too. The [`FaultPlan::overlapping_rejoin`] and
//!   [`FaultPlan::rolling_restart`] constructors build schedules where
//!   all of that interleaves with live update traffic.
//!
//! The harness then asserts *reconvergence*: every experiment node's LDB
//! must match its control counterpart — strictly for rule styles without
//! existentials, up to marked-null renaming (isomorphism) plus
//! null-factory counter equality for GLAV rules, whose null labels
//! legitimately depend on apply order.
//!
//! Everything is deterministic: the simulator is seeded from the plan
//! seed (loss draws included), the schedule is a pure function of the
//! seed, and a failing case can be replayed from the seed printed in the
//! failure message.
//!
//! Determinism buys a second harness for free:
//! [`run_fault_plan_differential`] executes one plan twice — all stores
//! JSON, then all stores binary — and demands byte-for-byte identical
//! reconverged states, isolating the on-disk codec as the only moving
//! part.

use crate::scenario::{RuleStyle, Scenario};
use codb_core::{Body, CoDbNetwork, Envelope, NodeId, NodeSettings, HARNESS_PEER};
use codb_net::{PipeConfig, SimConfig};
use codb_store::{Codec, SyncPolicy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::Path;

/// What a scheduled fault does to its node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Kill the node: all in-memory state (protocol caches, counters,
    /// store handle) is dropped; the durable directory survives. The node
    /// is restarted from disk at the end of the round — unless a
    /// [`FaultKind::Restart`] for it is scheduled later in the plan, in
    /// which case it stays down until that fault fires.
    Crash,
    /// Restart a previously crashed node from its data directory
    /// **mid-round** (no drain): its rejoin handshake — and the barrier
    /// release plus `RejoinRepair` push it triggers at every survivor —
    /// interleaves with the round's live update traffic instead of
    /// running in an idle network. A `Restart` for a node that is up (or
    /// never went down) is a no-op.
    Restart,
    /// Checkpoint the node's store: snapshot, WAL rotation, compaction.
    Checkpoint,
    /// Kill **every live node at once** — the single-host power-loss
    /// scenario a shared group-commit scheduler must survive (`node` is
    /// ignored). Combined with [`FaultPlan::lose_unsynced_tail`], each
    /// store's WAL is chopped to an arbitrary point at or past its
    /// durable watermark before the restarts — the crash lands *between
    /// batch formation and drain*, and the runner proves no acked record
    /// is lost.
    HostCrash,
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug)]
pub struct Fault {
    /// Simulator events after the round's injection at which to fire.
    pub at_event: u64,
    /// The node the fault hits.
    pub node: NodeId,
    /// What happens.
    pub kind: FaultKind,
}

/// One update round of the schedule.
#[derive(Clone, Debug)]
pub struct Round {
    /// Node that initiates this round's global update.
    pub initiator: NodeId,
    /// Faults fired while the round runs, in `at_event` order.
    pub faults: Vec<Fault>,
}

/// A complete, replayable fault schedule.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// The workload (topology, rules, data).
    pub scenario: Scenario,
    /// The seed everything derives from (print this to replay).
    pub seed: u64,
    /// Per-pipe message-drop probability in the experiment network (the
    /// reliable layer retransmits; loss reorders and delays, never
    /// silently removes).
    pub loss: f64,
    /// WAL durability policy for every node's store.
    pub sync: SyncPolicy,
    /// On-disk payload codec for every node's store. Schedules are codec-
    /// independent, so [`run_fault_plan_differential`] can execute the
    /// same plan under both codecs and demand identical outcomes.
    pub codec: Codec,
    /// Simulate the page-cache loss of a real power cut: when a node (or
    /// the whole host) crashes, its live WAL is truncated to a seeded
    /// point at or past the **durable watermark** (the fsync-covered
    /// prefix; see `codb_store::Store::durable_wal_records`) before the
    /// restart — appended-but-never-acked records vanish, possibly
    /// leaving a torn tail. The runner then asserts every *acked* record
    /// survived recovery. With `false` (the legacy behaviour) crashes
    /// drop in-memory state only and the full written file survives.
    pub lose_unsynced_tail: bool,
    /// The update rounds. The generator keeps the last round fault-free
    /// so the network can reconverge.
    pub rounds: Vec<Round>,
}

impl FaultPlan {
    /// Generates the schedule for `scenario` from `seed`: 2–4 rounds,
    /// each with an up-front initiator, at most one crash per round (one
    /// node down at a time), checkpoints sprinkled on live nodes, and a
    /// fault-free final round whose initiator is biased toward the most
    /// recently crashed node (the rejoin-as-initiator scenario).
    pub fn generate(scenario: Scenario, seed: u64) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA17_F1A9);
        let nodes = scenario.topology.node_count() as u64;
        let pick = |rng: &mut SmallRng| NodeId(rng.gen_range(0..nodes));
        let n_rounds = rng.gen_range(2usize..5);
        let mut rounds = Vec::with_capacity(n_rounds);
        let mut last_crashed: Option<NodeId> = None;
        for r in 0..n_rounds {
            let final_round = r + 1 == n_rounds;
            let initiator = match last_crashed {
                // Rejoin-as-initiator: after a crash round, the recovered
                // node usually leads the next one.
                Some(v) if rng.gen_bool(0.75) => v,
                _ => pick(&mut rng),
            };
            let mut faults = Vec::new();
            if !final_round {
                if rng.gen_bool(0.8) {
                    let victim = pick(&mut rng);
                    faults.push(Fault {
                        at_event: rng.gen_range(1u64..60),
                        node: victim,
                        kind: FaultKind::Crash,
                    });
                    last_crashed = Some(victim);
                }
                if rng.gen_bool(0.5) {
                    faults.push(Fault {
                        at_event: rng.gen_range(1u64..60),
                        node: pick(&mut rng),
                        kind: FaultKind::Checkpoint,
                    });
                }
                faults.sort_by_key(|f| f.at_event);
            }
            rounds.push(Round { initiator, faults });
        }
        let loss = if rng.gen_bool(0.5) { 0.0 } else { 0.08 };
        FaultPlan {
            scenario,
            seed,
            loss,
            sync: SyncPolicy::Always,
            codec: Codec::Binary,
            lose_unsynced_tail: false,
            rounds,
        }
    }

    /// The many-node single-host crash schedule: every node persists
    /// through one **shared group-commit scheduler** (`max_batch` = node
    /// count, `max_records` = 8 × node count), the host dies mid-update
    /// at a seeded event offset — with the unsynced WAL tails lost, i.e.
    /// the crash lands between batch formation and drain — and every
    /// node restarts from disk for a clean reconvergence round. The
    /// runner proves no acked record is lost
    /// ([`FaultPlanReport::acked_records_preserved`]).
    pub fn host_crash_group_commit(scenario: Scenario, seed: u64) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x057C_4A5B);
        let nodes = scenario.topology.node_count() as u64;
        FaultPlan {
            scenario,
            seed,
            loss: 0.0,
            sync: SyncPolicy::GroupCommit { max_batch: nodes, max_records: 8 * nodes },
            codec: Codec::Binary,
            lose_unsynced_tail: true,
            rounds: vec![
                Round {
                    initiator: scenario.sink(),
                    faults: vec![Fault {
                        at_event: rng.gen_range(1u64..80),
                        node: NodeId(0), // ignored by HostCrash
                        kind: FaultKind::HostCrash,
                    }],
                },
                Round { initiator: scenario.sink(), faults: vec![] },
            ],
        }
    }

    /// The overlapping-rejoin schedule: round 1 crashes a non-initiator
    /// node mid-update and **leaves it down** — survivors' update traffic
    /// toward it exhausts retransmission and parks behind the rejoin
    /// barrier, pausing the update with its Dijkstra–Scholten deficits
    /// held. Round 2 starts a fresh update and restarts the victim
    /// *mid-round* ([`FaultKind::Restart`]), so the barrier release, the
    /// `RejoinRepair` push and the resumed round-1 update all interleave
    /// with live round-2 traffic. A fault-free final round then pins
    /// reconvergence to the never-crashed control.
    pub fn overlapping_rejoin(scenario: Scenario, seed: u64) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0E4A_B17A);
        let nodes = scenario.topology.node_count() as u64;
        let sink = scenario.sink();
        let mut victim = NodeId(rng.gen_range(0..nodes));
        if victim == sink {
            victim = NodeId((victim.0 + 1) % nodes);
        }
        FaultPlan {
            scenario,
            seed,
            loss: if rng.gen_bool(0.5) { 0.0 } else { 0.05 },
            sync: SyncPolicy::Always,
            codec: Codec::Binary,
            lose_unsynced_tail: false,
            rounds: vec![
                Round {
                    initiator: sink,
                    faults: vec![Fault {
                        at_event: rng.gen_range(1u64..60),
                        node: victim,
                        kind: FaultKind::Crash,
                    }],
                },
                Round {
                    initiator: sink,
                    faults: vec![Fault {
                        at_event: rng.gen_range(1u64..60),
                        node: victim,
                        kind: FaultKind::Restart,
                    }],
                },
                Round { initiator: sink, faults: vec![] },
            ],
        }
    }

    /// The rolling-restart-under-sustained-load schedule (window (b) of
    /// the rejoin barrier), under a shared group-commit scheduler with
    /// unsynced WAL tails lost at every crash: two adjacent nodes `v` and
    /// `w` go down staggered — `v` crashes in round 1; round 2 crashes
    /// `w` and then restarts `v` **mid-round**, so `v`'s `Rejoin`
    /// handshake toward the still-dead `w` exhausts retransmission and
    /// parks instead of being abandoned; round 3 restarts `w` mid-round,
    /// whose own announcement releases the parked handshake and completes
    /// both rejoins under live traffic. Every round carries an update
    /// (sustained load) and a clean final round pins reconvergence.
    ///
    /// Requires a topology of at least three nodes.
    pub fn rolling_restart(scenario: Scenario, seed: u64) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x2011_1E57);
        let nodes = scenario.topology.node_count() as u64;
        assert!(nodes >= 3, "rolling restart needs at least 3 nodes");
        let sink = scenario.sink();
        // Two adjacent-id victims, neither of them the initiator (ids are
        // adjacent in every generated topology's edge layout for chains;
        // elsewhere adjacency is not required for the window — only that
        // v's rejoin set includes w, which holds whenever they share a
        // rule).
        let mut v = rng.gen_range(0..nodes);
        let (v, w) = loop {
            let w = (v + 1) % nodes;
            if NodeId(v) != sink && NodeId(w) != sink {
                break (NodeId(v), NodeId(w));
            }
            v = (v + 1) % nodes;
        };
        let sync = SyncPolicy::GroupCommit { max_batch: nodes, max_records: 8 * nodes };
        FaultPlan {
            scenario,
            seed,
            loss: 0.0,
            sync,
            codec: Codec::Binary,
            lose_unsynced_tail: true,
            rounds: vec![
                Round {
                    initiator: sink,
                    faults: vec![Fault {
                        at_event: rng.gen_range(1u64..40),
                        node: v,
                        kind: FaultKind::Crash,
                    }],
                },
                Round {
                    initiator: sink,
                    faults: vec![
                        Fault {
                            at_event: rng.gen_range(1u64..20),
                            node: w,
                            kind: FaultKind::Crash,
                        },
                        Fault {
                            at_event: rng.gen_range(25u64..60),
                            node: v,
                            kind: FaultKind::Restart,
                        },
                    ],
                },
                Round {
                    initiator: sink,
                    faults: vec![Fault {
                        at_event: rng.gen_range(1u64..40),
                        node: w,
                        kind: FaultKind::Restart,
                    }],
                },
                Round { initiator: sink, faults: vec![] },
            ],
        }
    }

    /// Total crash faults in the schedule (a host crash counts once).
    pub fn crash_count(&self) -> usize {
        self.rounds
            .iter()
            .flat_map(|r| &r.faults)
            .filter(|f| matches!(f.kind, FaultKind::Crash | FaultKind::HostCrash))
            .count()
    }
}

/// What [`run_fault_plan`] observed.
#[derive(Clone, Debug)]
pub struct FaultPlanReport {
    /// The plan's seed (for replay).
    pub seed: u64,
    /// Update rounds executed.
    pub rounds: usize,
    /// Crashes injected (every one eventually restarted — mid-round or at
    /// its round's end).
    pub crashes: usize,
    /// Mid-round restarts performed (scheduled [`FaultKind::Restart`]
    /// faults that found their node down).
    pub live_restarts: usize,
    /// Checkpoints taken (scheduled ones that found their node alive).
    pub checkpoints: u64,
    /// `Rejoin` + `RejoinAck` messages across the whole run.
    pub rejoin_messages: u64,
    /// Messages parked behind the rejoin barrier across the whole run
    /// (survivor-side holds instead of abandonments).
    pub barrier_parked: u64,
    /// Parked messages released (re-sent in seq order) when their barred
    /// peer was heard from again.
    pub barrier_released: u64,
    /// `RejoinRepair` batches sent — the push that restores a rejoined
    /// node's lost records at barrier release rather than at the next
    /// organic update.
    pub repair_messages: u64,
    /// Nodes whose final LDB equals the control's strictly.
    pub nodes_equal: usize,
    /// Nodes whose final LDB is isomorphic to the control's (equality up
    /// to marked-null renaming).
    pub nodes_isomorphic: usize,
    /// Nodes whose null-factory counter matches the control's.
    pub factories_equal: usize,
    /// Node count (denominator for the three above).
    pub nodes: usize,
    /// True when every node reconverged under the rule style's notion of
    /// equality (strict without existentials, isomorphic + equal factory
    /// counters with them).
    pub converged: bool,
    /// Records that were **acked durable** at crash moments (summed over
    /// every crash with [`FaultPlan::lose_unsynced_tail`] set) — the
    /// denominator of the no-acked-loss guarantee.
    pub acked_records_checked: u64,
    /// True when every restart replayed at least its store's acked
    /// record count from the same generation — i.e. no record a fsync
    /// had covered was lost, even though the unsynced tails were
    /// destroyed. Trivially true when `lose_unsynced_tail` is off.
    pub acked_records_preserved: bool,
}

fn settings(loss: f64) -> NodeSettings {
    NodeSettings {
        incremental_updates: true,
        pipe: PipeConfig::lan().with_loss(loss),
        ..NodeSettings::default()
    }
}

/// What must survive a crash, captured the instant before the kill: the
/// store's durable (fsync-covered, therefore *acked*) WAL watermark.
struct AckedWatermark {
    generation: u64,
    durable_frames: u64,
    durable_len: u64,
    wal_path: std::path::PathBuf,
}

/// Message counters banked from victims before their in-memory reports
/// are wiped by a kill (summed with the live nodes' counts at the end).
#[derive(Default)]
struct BankedCounters {
    rejoin: u64,
    barrier_parked: u64,
    barrier_released: u64,
    repairs: u64,
}

/// Kills `id` if it is alive, banking its rejoin and barrier counters.
/// With `lose_tail`, first captures the store's durable watermark and —
/// once the store handle is gone — chops the live WAL to a seeded point
/// at or past it: the unsynced tail a power cut would take with it (the
/// cut may land mid-frame; recovery truncates the torn remainder).
/// Returns `Some(watermark)` when the node was alive and killed
/// (`Some(None)` when no tail loss was requested or no store was
/// attached).
fn kill_node(
    net: &mut CoDbNetwork,
    id: NodeId,
    lose_tail: bool,
    rng: &mut SmallRng,
    banked: &mut BankedCounters,
) -> Option<Option<AckedWatermark>> {
    let node = net.sim().peer(id.peer())?;
    banked.rejoin += crate::crash::node_rejoin_messages(node.report());
    let (parked, released, repairs) = crate::crash::node_barrier_counters(node.report());
    banked.barrier_parked += parked;
    banked.barrier_released += released;
    banked.repairs += repairs;
    let watermark = if lose_tail {
        node.store().map(|store| AckedWatermark {
            generation: store.generation(),
            durable_frames: store.durable_wal_records(),
            durable_len: store.durable_wal_len(),
            wal_path: store.wal_path().to_owned(),
        })
    } else {
        None
    };
    if !net.crash_node(id) {
        return None;
    }
    if let Some(w) = &watermark {
        // The fault must actually be injected: a silently skipped chop
        // would let the no-acked-loss assertions pass without ever
        // exercising the lost-tail scenario they exist to prove.
        let meta = std::fs::metadata(&w.wal_path).expect("crashed node's WAL exists on disk");
        let unsynced = meta.len().saturating_sub(w.durable_len);
        let cut = w.durable_len + rng.gen_range(0..unsynced + 1);
        if cut < meta.len() {
            std::fs::OpenOptions::new()
                .write(true)
                .open(&w.wal_path)
                .expect("reopening the crashed WAL for truncation")
                .set_len(cut)
                .expect("truncating the crashed WAL");
        }
    }
    Some(watermark)
}

/// Restarts `victim` from its data directory — live (mid-round, no
/// drain) or drained — and folds the no-acked-loss check for its banked
/// watermark into the running verdict.
#[allow(clippy::too_many_arguments)]
fn restart_victim(
    net: &mut CoDbNetwork,
    config: &codb_core::NetworkConfig,
    plan: &FaultPlan,
    data_root: &Path,
    victim: NodeId,
    watermark: Option<AckedWatermark>,
    live: bool,
    acked_records_checked: &mut u64,
    acked_records_preserved: &mut bool,
) -> Result<(), codb_store::StoreError> {
    let name = &config.nodes.iter().find(|n| n.id == victim).expect("configured").name;
    let dir = CoDbNetwork::node_data_dir(data_root, name);
    let stats = if live {
        net.restart_node_from_disk_live(victim, &dir, plan.sync, plan.codec)?
    } else {
        net.restart_node_from_disk(victim, &dir, plan.sync, plan.codec)?
    };
    if let Some(w) = watermark {
        // The no-acked-loss guarantee: recovery from the same generation
        // must replay at least every record that was acked durable when
        // the crash hit — the chopped tail held only never-acked records.
        *acked_records_checked += w.durable_frames;
        *acked_records_preserved &=
            stats.generation == w.generation && stats.wal_records_replayed >= w.durable_frames;
    }
    Ok(())
}

/// Runs `plan` against a never-crashed control, persisting every node
/// under `data_root/<node-name>`. The directory must be fresh.
pub fn run_fault_plan(
    plan: &FaultPlan,
    data_root: &Path,
) -> Result<FaultPlanReport, codb_store::StoreError> {
    run_fault_plan_impl(plan, data_root, None).map(|(report, _)| report)
}

/// [`run_fault_plan`] with a flight recorder attached to the experiment
/// network (the control runs untraced): every net, protocol and store
/// event of the faulted run — barrier holds and releases included —
/// lands in `tracer` for postmortem inspection.
pub fn run_fault_plan_traced(
    plan: &FaultPlan,
    data_root: &Path,
    tracer: &codb_trace::Tracer,
) -> Result<FaultPlanReport, codb_store::StoreError> {
    run_fault_plan_impl(plan, data_root, Some(tracer)).map(|(report, _)| report)
}

/// The runner, also returning every experiment node's final state (name →
/// snapshot of LDB + null factory) for the codec-differential harness.
fn run_fault_plan_impl(
    plan: &FaultPlan,
    data_root: &Path,
    tracer: Option<&codb_trace::Tracer>,
) -> Result<(FaultPlanReport, Vec<(String, codb_relational::Snapshot)>), codb_store::StoreError> {
    let config = plan.scenario.build_config();

    // Control: same rounds, no faults, lossless pipes.
    let mut control =
        CoDbNetwork::build_with(config.clone(), SimConfig::default(), settings(0.0), false)
            .expect("scenario configs validate");
    for round in &plan.rounds {
        control.run_update(round.initiator);
    }

    // Experiment: seeded loss, every node durable.
    let sim_config = SimConfig {
        seed: plan.seed,
        default_pipe: PipeConfig::lan().with_loss(plan.loss),
        max_events: 0,
    };
    let mut net = CoDbNetwork::build_with(config.clone(), sim_config, settings(plan.loss), false)
        .expect("scenario configs validate");
    if let Some(t) = tracer {
        net.attach_tracer(t);
    }
    net.open_persistence_all(data_root, plan.sync, plan.codec)?;

    let mut crashes = 0usize;
    let mut live_restarts = 0usize;
    let mut checkpoints = 0u64;
    // A crash wipes the victim's in-memory statistics report, so counters
    // it accumulated (rejoin announcements, acks, barrier holds from an
    // earlier crash's handshake) must be banked before the kill or the
    // whole-run totals silently undercount on multi-crash schedules.
    let mut banked = BankedCounters::default();
    // Seeded chop points for lose_unsynced_tail (deterministic per plan
    // seed, like everything else) and the no-acked-loss bookkeeping.
    let mut chop_rng = SmallRng::seed_from_u64(plan.seed ^ 0xC40F_7A11);
    let mut acked_records_checked = 0u64;
    let mut acked_records_preserved = true;
    // Nodes currently down, with their banked crash watermark. A node
    // whose plan schedules a later Restart fault stays here across round
    // boundaries instead of being auto-restarted.
    let mut down: std::collections::BTreeMap<NodeId, Option<AckedWatermark>> =
        std::collections::BTreeMap::new();
    // Remaining scheduled Restart faults per node, counted over the whole
    // plan up front so each round's end knows whom to leave down.
    let mut pending_restarts: std::collections::BTreeMap<NodeId, usize> =
        std::collections::BTreeMap::new();
    for round in &plan.rounds {
        for fault in &round.faults {
            if fault.kind == FaultKind::Restart {
                *pending_restarts.entry(fault.node).or_default() += 1;
            }
        }
    }
    for round in &plan.rounds {
        let round_start = net.sim().events_processed();
        net.sim_mut().inject(
            HARNESS_PEER,
            round.initiator.peer(),
            Envelope::control(Body::StartUpdate),
        );
        // The generator schedules at most one crash per round, but the
        // plan fields are public and hand-written schedules are a
        // supported use — so the runner tracks *every* node taken down,
        // this round or earlier, and restarts each exactly once.
        for fault in &round.faults {
            // Step the sim clock up to the fault's event offset (or until
            // the round quiesces first — a "late" fault, still applied).
            while net.sim().events_processed() - round_start < fault.at_event
                && net.sim_mut().step()
            {}
            match fault.kind {
                FaultKind::Crash => {
                    // kill_node returns None for a node already down
                    // (e.g. duplicate crash entries), so the down map
                    // stays duplicate-free.
                    if let Some(w) = kill_node(
                        &mut net,
                        fault.node,
                        plan.lose_unsynced_tail,
                        &mut chop_rng,
                        &mut banked,
                    ) {
                        down.insert(fault.node, w);
                        crashes += 1;
                    }
                }
                FaultKind::HostCrash => {
                    // The whole host dies at once: every live node goes
                    // down mid-whatever-it-was-doing, every store's
                    // unsynced tail is at risk together — the scenario a
                    // *shared* fsync scheduler must get right.
                    let mut any = false;
                    for nc in &config.nodes {
                        if let Some(w) = kill_node(
                            &mut net,
                            nc.id,
                            plan.lose_unsynced_tail,
                            &mut chop_rng,
                            &mut banked,
                        ) {
                            down.insert(nc.id, w);
                            any = true;
                        }
                    }
                    if any {
                        crashes += 1;
                    }
                }
                FaultKind::Restart => {
                    // Live restart: the rejoin handshake (and the barrier
                    // release + repair it triggers) runs interleaved with
                    // whatever traffic the round still has in flight.
                    if let Some(e) = pending_restarts.get_mut(&fault.node) {
                        *e = e.saturating_sub(1);
                    }
                    if let Some(watermark) = down.remove(&fault.node) {
                        restart_victim(
                            &mut net,
                            &config,
                            plan,
                            data_root,
                            fault.node,
                            watermark,
                            true,
                            &mut acked_records_checked,
                            &mut acked_records_preserved,
                        )?;
                        live_restarts += 1;
                    }
                }
                FaultKind::Checkpoint => {
                    // Skip nodes a crash already took down.
                    if net.sim().peer(fault.node.peer()).is_some()
                        && net.checkpoint_node(fault.node)?
                    {
                        checkpoints += 1;
                    }
                }
            }
        }
        // Drain the round: survivors run until nothing is in flight.
        // Traffic toward still-crashed nodes exhausts its retransmission
        // budget and — for update data and handshake envelopes — parks
        // behind the rejoin barrier rather than being abandoned, so the
        // round can quiesce with an update paused mid-flight.
        net.sim_mut().run_until_quiescent();
        // Restart every node still down before the next round — except
        // those a later Restart fault claims, which stay dead so their
        // handshake lands mid-round. Each restart here runs the rejoin
        // handshake to quiescence, so the next initiator (often one of
        // these very nodes) starts from a repaired cache topology.
        let due: Vec<NodeId> = down
            .keys()
            .copied()
            .filter(|n| pending_restarts.get(n).copied().unwrap_or(0) == 0)
            .collect();
        for victim in due {
            let watermark = down.remove(&victim).expect("picked from the map");
            restart_victim(
                &mut net,
                &config,
                plan,
                data_root,
                victim,
                watermark,
                false,
                &mut acked_records_checked,
                &mut acked_records_preserved,
            )?;
        }
    }

    // Compare every node against the control.
    let strict_style = !matches!(plan.scenario.rule_style, RuleStyle::ProjectGlav);
    let mut nodes_equal = 0;
    let mut nodes_isomorphic = 0;
    let mut factories_equal = 0;
    let mut final_states = Vec::with_capacity(config.nodes.len());
    for nc in &config.nodes {
        let ours = net.node(nc.id);
        let theirs = control.node(nc.id);
        if ours.ldb() == theirs.ldb() {
            nodes_equal += 1;
        }
        if codb_relational::isomorphic(ours.ldb(), theirs.ldb()) {
            nodes_isomorphic += 1;
        }
        if ours.nulls_invented() == theirs.nulls_invented() {
            factories_equal += 1;
        }
        final_states.push((nc.name.clone(), ours.snapshot()));
    }
    let nodes = config.nodes.len();
    let converged = if strict_style {
        nodes_equal == nodes
    } else {
        nodes_isomorphic == nodes && factories_equal == nodes
    };
    let rejoin_messages = banked.rejoin + crate::crash::rejoin_messages(&net);
    let (live_parked, live_released, live_repairs) = crate::crash::barrier_counters(&net);

    Ok((
        FaultPlanReport {
            seed: plan.seed,
            rounds: plan.rounds.len(),
            crashes,
            live_restarts,
            checkpoints,
            rejoin_messages,
            barrier_parked: banked.barrier_parked + live_parked,
            barrier_released: banked.barrier_released + live_released,
            repair_messages: banked.repairs + live_repairs,
            nodes_equal,
            nodes_isomorphic,
            factories_equal,
            nodes,
            converged,
            acked_records_checked,
            acked_records_preserved,
        },
        final_states,
    ))
}

/// What [`run_fault_plan_differential`] observed: the same seeded
/// schedule executed once per codec, plus the cross-codec verdict.
#[derive(Clone, Debug)]
pub struct CodecDifferentialReport {
    /// The run whose stores were JSON end to end.
    pub json: FaultPlanReport,
    /// The run whose stores were binary end to end.
    pub binary: FaultPlanReport,
    /// True when every node's reconverged state is **byte-for-byte**
    /// identical between the two runs (states are compared by their
    /// deterministic binary encoding, so this is exact equality of
    /// instance, schemas and null-factory counters — not isomorphism).
    pub states_identical: bool,
}

impl CodecDifferentialReport {
    /// The acceptance bar: both runs reconverged to their controls *and*
    /// to each other, byte for byte.
    pub fn agreed(&self) -> bool {
        self.json.converged && self.binary.converged && self.states_identical
    }
}

/// Codec-differential fault injection: executes the identical seeded
/// schedule twice — once with every store in [`Codec::Json`], once in
/// [`Codec::Binary`] (under `data_root/json` and `data_root/binary`) —
/// and compares the reconverged states byte for byte.
///
/// The simulator, the loss draws and the schedule are all pure functions
/// of the plan seed, so the *only* degree of freedom between the two runs
/// is the on-disk encoding: any divergence is a codec bug (a decode that
/// silently altered data, a counter that did not round-trip, a cache
/// entry that vanished), which is exactly what this harness exists to
/// catch.
pub fn run_fault_plan_differential(
    plan: &FaultPlan,
    data_root: &Path,
) -> Result<CodecDifferentialReport, codb_store::StoreError> {
    let json_plan = FaultPlan { codec: Codec::Json, ..plan.clone() };
    let binary_plan = FaultPlan { codec: Codec::Binary, ..plan.clone() };
    let (json, json_states) = run_fault_plan_impl(&json_plan, &data_root.join("json"), None)?;
    let (binary, binary_states) =
        run_fault_plan_impl(&binary_plan, &data_root.join("binary"), None)?;
    let states_identical = json_states.len() == binary_states.len()
        && json_states
            .iter()
            .zip(&binary_states)
            .all(|((ja, js), (ba, bs))| ja == ba && js.to_binary_bytes() == bs.to_binary_bytes());
    Ok(CodecDifferentialReport { json, binary, states_identical })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use codb_store::ScratchDir;
    use proptest::prelude::*;

    fn cases(default: u32) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    fn arb_topology() -> impl Strategy<Value = Topology> {
        prop_oneof![
            (3usize..7).prop_map(Topology::Chain),
            (3usize..6).prop_map(Topology::Ring),
            (2usize..6).prop_map(|leaves| Topology::Star { leaves }),
        ]
    }

    fn arb_style() -> impl Strategy<Value = RuleStyle> {
        prop_oneof![Just(RuleStyle::CopyGav), Just(RuleStyle::ProjectGlav)]
    }

    /// Fixed-seed determinism: the same seed yields the same schedule.
    #[test]
    fn plans_are_deterministic() {
        let s = Scenario { tuples_per_node: 5, ..Scenario::quick(Topology::Chain(3)) };
        let a = FaultPlan::generate(s, 42);
        let b = FaultPlan::generate(s, 42);
        assert_eq!(a.rounds.len(), b.rounds.len());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = FaultPlan::generate(s, 43);
        assert_ne!(format!("{a:?}"), format!("{c:?}"), "different seeds, different schedules");
    }

    /// The generator never schedules faults in the final round, so every
    /// plan ends with a clean reconvergence pass.
    #[test]
    fn final_round_is_fault_free() {
        let s = Scenario { tuples_per_node: 5, ..Scenario::quick(Topology::Ring(4)) };
        for seed in 0..50 {
            let plan = FaultPlan::generate(s, seed);
            assert!(plan.rounds.last().unwrap().faults.is_empty(), "seed {seed}");
        }
    }

    /// One hand-picked schedule, exercised end to end with a crash that is
    /// guaranteed to land (smoke for the runner's bookkeeping).
    #[test]
    fn explicit_crash_schedule_reconverges() {
        let tmp = ScratchDir::new("faultplan-explicit");
        let s = Scenario { tuples_per_node: 12, ..Scenario::quick(Topology::Chain(4)) };
        let plan = FaultPlan {
            scenario: s,
            seed: 7,
            loss: 0.05,
            sync: SyncPolicy::Always,
            lose_unsynced_tail: false,
            codec: Codec::Binary,
            rounds: vec![
                Round {
                    initiator: s.sink(),
                    faults: vec![Fault { at_event: 9, node: NodeId(1), kind: FaultKind::Crash }],
                },
                Round {
                    // Rejoin-as-initiator, explicitly.
                    initiator: NodeId(1),
                    faults: vec![Fault {
                        at_event: 15,
                        node: NodeId(2),
                        kind: FaultKind::Checkpoint,
                    }],
                },
                Round { initiator: s.sink(), faults: vec![] },
            ],
        };
        let report = run_fault_plan(&plan, tmp.path()).unwrap();
        assert_eq!(report.crashes, 1, "{report:?}");
        assert!(report.rejoin_messages >= 2, "{report:?}");
        assert!(report.converged, "replay with seed {}: {report:?}", plan.seed);
    }

    /// The codec-differential satellite: one seeded schedule with a
    /// guaranteed crash, run under JSON stores and binary stores, must
    /// reconverge to byte-for-byte identical states.
    #[test]
    fn differential_runs_agree_byte_for_byte() {
        let tmp = ScratchDir::new("faultplan-diff");
        let s = Scenario { tuples_per_node: 12, ..Scenario::quick(Topology::Chain(4)) };
        let plan = FaultPlan {
            scenario: s,
            seed: 7,
            loss: 0.05,
            sync: SyncPolicy::Always,
            lose_unsynced_tail: false,
            codec: Codec::Binary, // overridden per run by the harness
            rounds: vec![
                Round {
                    initiator: s.sink(),
                    faults: vec![Fault { at_event: 9, node: NodeId(1), kind: FaultKind::Crash }],
                },
                Round {
                    initiator: NodeId(1),
                    faults: vec![Fault {
                        at_event: 15,
                        node: NodeId(2),
                        kind: FaultKind::Checkpoint,
                    }],
                },
                Round { initiator: s.sink(), faults: vec![] },
            ],
        };
        let report = run_fault_plan_differential(&plan, tmp.path()).unwrap();
        assert_eq!(report.json.crashes, 1, "{report:?}");
        assert_eq!(report.binary.crashes, 1, "{report:?}");
        assert!(report.states_identical, "{report:?}");
        assert!(report.agreed(), "{report:?}");
    }

    /// GLAV rules make the differential bar *harder*, not softer: null
    /// labels depend on apply order, but the two runs share every apply
    /// order (same seed, same schedule), so even invented nulls must
    /// match exactly across codecs.
    #[test]
    fn differential_agrees_even_with_invented_nulls() {
        let tmp = ScratchDir::new("faultplan-diff-glav");
        let s = Scenario {
            tuples_per_node: 8,
            rule_style: RuleStyle::ProjectGlav,
            ..Scenario::quick(Topology::Chain(3))
        };
        let plan = FaultPlan::generate(s, 3);
        let report = run_fault_plan_differential(&plan, tmp.path()).unwrap();
        assert!(report.agreed(), "replay with seed {}: {report:?}", plan.seed);
    }

    /// The many-node single-host tentpole scenario, fixed-seed: eight
    /// nodes share one group-commit fsync scheduler, the host dies
    /// mid-update with every unsynced WAL tail destroyed, and after the
    /// restarts (a) no acked record is lost and (b) the final clean
    /// round reconverges the network to the never-crashed control.
    #[test]
    fn host_crash_with_lost_tails_preserves_acked_records() {
        let tmp = ScratchDir::new("faultplan-hostcrash");
        let s = Scenario { tuples_per_node: 12, ..Scenario::quick(Topology::Chain(8)) };
        let plan = FaultPlan::host_crash_group_commit(s, 11);
        assert!(matches!(plan.sync, SyncPolicy::GroupCommit { .. }));
        assert!(plan.lose_unsynced_tail);
        let report = run_fault_plan(&plan, tmp.path()).unwrap();
        assert_eq!(report.crashes, 1, "{report:?}");
        assert!(
            report.acked_records_checked >= 8 * 2,
            "every store had at least its checkpoint head acked: {report:?}"
        );
        assert!(report.acked_records_preserved, "replay with seed {}: {report:?}", report.seed);
        assert!(report.converged, "replay with seed {}: {report:?}", report.seed);
    }

    /// A *targeted* single-node crash with tail loss under a weak
    /// per-store policy: even EveryN's lazy watermark never loses an
    /// acked record (the chop respects only what fsync covered).
    #[test]
    fn single_crash_with_lost_tail_under_every_n() {
        let tmp = ScratchDir::new("faultplan-losttail");
        let s = Scenario { tuples_per_node: 12, ..Scenario::quick(Topology::Chain(4)) };
        let plan = FaultPlan {
            scenario: s,
            seed: 21,
            loss: 0.0,
            sync: SyncPolicy::EveryN(3),
            lose_unsynced_tail: true,
            codec: Codec::Binary,
            rounds: vec![
                Round {
                    initiator: s.sink(),
                    faults: vec![Fault { at_event: 14, node: NodeId(1), kind: FaultKind::Crash }],
                },
                Round { initiator: s.sink(), faults: vec![] },
            ],
        };
        let report = run_fault_plan(&plan, tmp.path()).unwrap();
        assert_eq!(report.crashes, 1, "{report:?}");
        assert!(report.acked_records_preserved, "{report:?}");
        assert!(report.converged, "{report:?}");
    }

    /// Window (a) of the rejoin barrier, fixed-seed: under group commit
    /// the victim crashes holding records it already applied and
    /// forwarded downstream but never fsynced — the chopped WAL tail
    /// destroys them, while survivors still hold them. The plan has **no
    /// follow-up round**: round 1 is the only update, so the only way
    /// the restarted victim can match the control is the `RejoinRepair`
    /// push at barrier release. Before the barrier, this schedule left
    /// the victim short (survivor traffic toward it was abandoned and
    /// nothing re-sent until the next organic update — which never
    /// comes here).
    #[test]
    fn forwarded_but_unsynced_records_repaired_at_barrier_release() {
        let tmp = ScratchDir::new("faultplan-window-a");
        let s = Scenario { tuples_per_node: 12, ..Scenario::quick(Topology::Chain(4)) };
        let plan = FaultPlan {
            scenario: s,
            seed: 5,
            loss: 0.0,
            sync: SyncPolicy::GroupCommit { max_batch: 4, max_records: 32 },
            lose_unsynced_tail: true,
            codec: Codec::Binary,
            rounds: vec![Round {
                initiator: s.sink(),
                faults: vec![Fault { at_event: 16, node: NodeId(1), kind: FaultKind::Crash }],
            }],
        };
        let report = run_fault_plan(&plan, tmp.path()).unwrap();
        assert_eq!(report.crashes, 1, "{report:?}");
        assert!(report.barrier_parked > 0, "survivors held, not abandoned: {report:?}");
        assert!(report.barrier_released > 0, "release fired at the handshake: {report:?}");
        assert!(report.repair_messages > 0, "repair pushed at release: {report:?}");
        assert!(report.acked_records_preserved, "{report:?}");
        assert!(
            report.converged,
            "victim must be repaired AT barrier release, not at a later update: {report:?}"
        );
    }

    /// The rolling-restart schedule, fixed-seed (window (b)): `v`
    /// restarts while its neighbor `w` is still down, so `v`'s `Rejoin`
    /// toward `w` exhausts retransmission and parks instead of being
    /// abandoned; `w`'s own announcement a round later releases it and
    /// both handshakes complete under sustained update load.
    #[test]
    fn rolling_restart_parks_the_handshake_and_reconverges() {
        let tmp = ScratchDir::new("faultplan-rolling");
        let s = Scenario { tuples_per_node: 10, ..Scenario::quick(Topology::Chain(5)) };
        let plan = FaultPlan::rolling_restart(s, 9);
        assert!(plan.lose_unsynced_tail);
        let report = run_fault_plan(&plan, tmp.path()).unwrap();
        assert_eq!(report.crashes, 2, "{report:?}");
        assert_eq!(report.live_restarts, 2, "both victims came back mid-round: {report:?}");
        assert!(report.barrier_parked > 0, "{report:?}");
        assert!(report.barrier_released > 0, "{report:?}");
        assert!(report.acked_records_preserved, "replay with seed {}: {report:?}", report.seed);
        assert!(report.converged, "replay with seed {}: {report:?}", report.seed);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: cases(6), ..ProptestConfig::default() })]

        /// The tentpole property: for arbitrary seeded crash / checkpoint
        /// / loss schedules on 3–6 node topologies, the recovered network
        /// reconverges to the never-crashed control — strictly for GAV
        /// styles, isomorphically with equal GLAV null-factory counters
        /// for existential rules.
        #[test]
        fn seeded_schedules_reconverge_to_control(
            seed in any::<u64>(),
            topology in arb_topology(),
            rule_style in arb_style(),
        ) {
            let scenario = Scenario {
                tuples_per_node: 8,
                rule_style,
                ..Scenario::quick(topology)
            };
            let tmp = ScratchDir::new("faultplan-prop");
            let plan = FaultPlan::generate(scenario, seed);
            let report = run_fault_plan(&plan, tmp.path()).unwrap();
            prop_assert!(
                report.converged,
                "NOT reconverged; replay: FaultPlan::generate(Scenario {{ tuples_per_node: 8, \
                 rule_style: {rule_style:?}, ..Scenario::quick({topology:?}) }}, {seed}) → \
                 {report:?}"
            );
            // Crash rounds must actually have exercised the handshake.
            if report.crashes > 0 {
                prop_assert!(report.rejoin_messages >= 2, "{report:?}");
            }
        }

        /// The overlapping-rejoin property: for arbitrary seeds and
        /// topologies, a rejoin handshake that lands **mid-round** —
        /// barrier release, repair push and the resumed paused update all
        /// interleaved with live traffic — still reconverges the network
        /// to the fault-free control with zero acked records lost.
        #[test]
        fn overlapping_rejoin_reconverges(
            seed in any::<u64>(),
            topology in arb_topology(),
            rule_style in arb_style(),
        ) {
            let scenario = Scenario {
                tuples_per_node: 8,
                rule_style,
                ..Scenario::quick(topology)
            };
            let tmp = ScratchDir::new("faultplan-overlap-prop");
            let plan = FaultPlan::overlapping_rejoin(scenario, seed);
            let report = run_fault_plan(&plan, tmp.path()).unwrap();
            prop_assert!(
                report.converged,
                "NOT reconverged; replay: FaultPlan::overlapping_rejoin(Scenario {{ \
                 tuples_per_node: 8, rule_style: {rule_style:?}, \
                 ..Scenario::quick({topology:?}) }}, {seed}) → {report:?}"
            );
            prop_assert!(report.acked_records_preserved, "{report:?}");
            prop_assert_eq!(report.crashes, 1, "the schedule's one crash landed");
            prop_assert_eq!(report.live_restarts, 1, "the victim came back mid-round");
        }

        /// The group-commit durability property: for an arbitrary host
        /// crash point in a shared-scheduler schedule — the crash may
        /// land anywhere, including between batch formation and the
        /// drain — with every store's unsynced WAL tail destroyed, no
        /// acked record is ever lost and the network still reconverges.
        #[test]
        fn any_group_commit_crash_point_preserves_acked_records(
            seed in any::<u64>(),
            crash_at in 1u64..120,
            nodes in 3usize..9,
            rule_style in arb_style(),
        ) {
            let scenario = Scenario {
                tuples_per_node: 8,
                rule_style,
                ..Scenario::quick(Topology::Chain(nodes))
            };
            let tmp = ScratchDir::new("faultplan-group-prop");
            let mut plan = FaultPlan::host_crash_group_commit(scenario, seed);
            // Pin the crash point the property explores (the constructor
            // seeds one; the property wants the whole range).
            plan.rounds[0].faults[0].at_event = crash_at;
            let report = run_fault_plan(&plan, tmp.path()).unwrap();
            prop_assert!(
                report.acked_records_preserved,
                "ACKED RECORD LOST; replay: FaultPlan::host_crash_group_commit(Scenario {{ \
                 tuples_per_node: 8, rule_style: {rule_style:?}, \
                 ..Scenario::quick(Topology::Chain({nodes})) }}, {seed}) with at_event = \
                 {crash_at} → {report:?}"
            );
            prop_assert!(
                report.converged,
                "NOT reconverged; seed {seed}, crash_at {crash_at}, {nodes} nodes → {report:?}"
            );
        }
    }
}
