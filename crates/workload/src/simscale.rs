//! The simulator-scale substrate: flood waves over big topologies.
//!
//! The full coDB node (relational evaluation, WAL, rule engine) is far
//! too heavy to sweep at 10k peers — and would measure the database, not
//! the simulator. This module provides the light protocol the E19
//! node-count sweep drives instead: every peer floods announcement
//! *waves* to its neighbours with per-wave duplicate suppression, a
//! gossip pattern whose message complexity (`waves × edges × 2`) and
//! propagation depth are known in closed form, so a sweep cleanly
//! isolates event-loop cost (calendar queue, pipe arena) from protocol
//! cost.
//!
//! Pipes are bidirectional, so floods travel the *undirected* closure of
//! the topology's data-flow edges and reach every connected node
//! regardless of edge orientation.

use crate::topology::Topology;
use codb_net::{
    Context, LatencyModel, NetStats, Payload, Peer, PeerId, PipeConfig, SimBuilder, SimConfig,
    SimTime, Tracer,
};
use serde::Serialize;

/// A flood wave: the originating node's index and the wave number.
#[derive(Clone, Debug)]
pub struct FloodMsg {
    /// Node index the wave originated at.
    pub origin: u32,
    /// Wave number (0-based).
    pub wave: u32,
}

impl Payload for FloodMsg {
    fn size_bytes(&self) -> usize {
        16
    }
}

/// A peer that relays every wave it has not seen to all neighbours.
pub struct FloodPeer {
    /// Undirected neighbour list.
    neighbours: Vec<PeerId>,
    /// Sparse per-origin bitmask of waves already relayed (waves are
    /// ≤ 64), sorted by origin. Sparse matters: a dense `vec![0; n]`
    /// per peer is `O(n²)` memory across the network — ~800 MB at 10k
    /// nodes — while the origins a node actually hears from are few.
    seen: Vec<(u32, u64)>,
    /// Waves this node originates at start (only the designated seeds).
    originate: u32,
}

impl FloodPeer {
    /// True iff this peer has seen wave `wave` from origin `origin`.
    pub fn has_seen(&self, origin: u32, wave: u32) -> bool {
        self.seen
            .binary_search_by_key(&origin, |&(o, _)| o)
            .is_ok_and(|pos| self.seen[pos].1 & (1 << wave) != 0)
    }

    fn mark(&mut self, origin: u32, wave: u32) -> bool {
        let bit = 1u64 << wave;
        match self.seen.binary_search_by_key(&origin, |&(o, _)| o) {
            Ok(pos) => {
                let fresh = self.seen[pos].1 & bit == 0;
                self.seen[pos].1 |= bit;
                fresh
            }
            Err(pos) => {
                self.seen.insert(pos, (origin, bit));
                true
            }
        }
    }
}

impl Peer<FloodMsg> for FloodPeer {
    fn on_start(&mut self, ctx: &mut Context<FloodMsg>) {
        let origin = ctx.self_id().0 as u32;
        for wave in 0..self.originate {
            self.mark(origin, wave);
            for &n in &self.neighbours {
                ctx.send(n, FloodMsg { origin, wave });
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<FloodMsg>, _from: PeerId, msg: FloodMsg) {
        if self.mark(msg.origin, msg.wave) {
            for &n in &self.neighbours {
                ctx.send(n, FloodMsg { origin: msg.origin, wave: msg.wave });
            }
        }
    }
}

/// What one flood run measured.
#[derive(Clone, Debug, Serialize)]
pub struct FloodReport {
    /// Node count.
    pub nodes: usize,
    /// Directed data-flow edges of the topology (pipes are one per
    /// undirected pair).
    pub edges: usize,
    /// Waves flooded from node 0.
    pub waves: u32,
    /// Simulator events processed.
    pub events: u64,
    /// Messages handed to pipes.
    pub messages: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Final simulated time.
    pub sim_time: SimTime,
    /// Host wall-clock milliseconds for the run.
    pub host_ms: f64,
    /// Nodes the flood reached (== `nodes` on any connected topology).
    pub reached: usize,
    /// Full network statistics.
    pub stats: NetStats,
}

impl FloodReport {
    /// Events processed per host second — the simulator throughput
    /// metric E19 sweeps.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / (self.host_ms / 1000.0).max(1e-9)
    }
}

/// Builds the topology's network via [`SimBuilder`], floods `waves`
/// waves from node 0, runs to quiescence and reports. Waves are capped
/// at 64 (the per-origin bitmask width).
pub fn run_flood(
    topology: &Topology,
    pipe: PipeConfig,
    latency: Option<LatencyModel>,
    waves: u32,
    seed: u64,
) -> FloodReport {
    run_flood_traced(topology, pipe, latency, waves, seed, &Tracer::disabled())
}

/// [`run_flood`] with a flight-recorder handle attached to the simulator.
/// The run is bracketed into two phases — `build` (topology + spawn) and
/// `flood` (event loop to quiescence) — so `trace inspect` can attribute
/// host time; with a disabled tracer the phase markers cost one branch.
pub fn run_flood_traced(
    topology: &Topology,
    pipe: PipeConfig,
    latency: Option<LatencyModel>,
    waves: u32,
    seed: u64,
    tracer: &Tracer,
) -> FloodReport {
    assert!(waves <= 64, "per-origin wave bitmask holds at most 64 waves");
    let start = std::time::Instant::now();
    tracer.phase_begin("build");
    let n = topology.node_count();
    let edges = topology.edges();
    let mut adj: Vec<Vec<PeerId>> = vec![Vec::new(); n];
    for &(a, b) in &edges {
        if a != b {
            adj[a].push(PeerId(b as u64));
            adj[b].push(PeerId(a as u64));
        }
    }
    // Pipes are bidirectional: duplicate edge directions would only
    // double-send, so dedup each neighbour list.
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }

    let mut builder =
        SimBuilder::new(SimConfig { seed, ..Default::default() }).topology(topology, pipe);
    if let Some(model) = latency {
        builder = builder.latency(model);
    }
    let mut net = builder.spawn(|id| FloodPeer {
        neighbours: std::mem::take(&mut adj[id.0 as usize]),
        seen: Vec::new(),
        originate: if id.0 == 0 { waves } else { 0 },
    });
    net.attach_tracer(tracer.clone());
    tracer.phase_end("build");
    tracer.phase_begin("flood");
    let sim_time = net.run_until_quiescent();
    tracer.phase_end("flood");
    let host_ms = start.elapsed().as_secs_f64() * 1000.0;

    let reached = net.peers().filter(|(_, p)| (0..waves).all(|w| p.has_seen(0, w))).count();
    let stats = net.stats();
    FloodReport {
        nodes: n,
        edges: edges.len(),
        waves,
        events: net.events_processed(),
        messages: stats.sent,
        delivered: stats.delivered,
        sim_time,
        host_ms,
        reached,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan() -> PipeConfig {
        PipeConfig::lan()
    }

    #[test]
    fn flood_reaches_every_node_on_a_chain() {
        let report = run_flood(&Topology::Chain(50), lan(), None, 2, 1);
        assert_eq!(report.nodes, 50);
        assert_eq!(report.reached, 50);
        // Each wave crosses each of the 49 undirected edges exactly twice
        // (once per direction).
        assert_eq!(report.messages, 2 * 2 * 49);
        assert!(report.sim_time >= SimTime::from_millis(49), "49 sequential 1ms hops");
    }

    #[test]
    fn flood_reaches_every_node_on_scale_free_and_ring_gradient() {
        for t in [
            Topology::ScaleFree { n: 300, m: 3, seed: 9 },
            Topology::RingGradient { n: 300, chords: 5 },
        ] {
            let report = run_flood(&t, lan(), None, 1, 2);
            assert_eq!(report.reached, 300, "flood covers {t}");
            assert_eq!(report.delivered, report.messages);
        }
    }

    #[test]
    fn geo_latency_stretches_sim_time_not_messages() {
        let t = Topology::ScaleFree { n: 100, m: 2, seed: 4 };
        let flat = run_flood(&t, lan(), None, 1, 3);
        let geo = run_flood(&t, lan(), Some(LatencyModel::geo_scattered(11, 100)), 1, 3);
        assert_eq!(flat.messages, geo.messages, "latency model changes timing only");
        assert_eq!(geo.reached, 100);
        assert!(geo.sim_time > flat.sim_time, "intercontinental links dominate 1ms LAN");
    }

    /// The tentpole determinism guarantee at scale: identical seeds push
    /// identical traces and statistics through the bucketed queue on a
    /// 1k-node scale-free network.
    #[test]
    fn thousand_node_scale_free_is_deterministic() {
        let run = |seed: u64| {
            let t = Topology::ScaleFree { n: 1000, m: 3, seed: 17 };
            // Lossy pipes exercise the RNG draw sequence as well.
            let pipe = PipeConfig::lan().with_loss(0.01);
            let n = t.node_count();
            let edges = t.edges();
            let mut adj: Vec<Vec<PeerId>> = vec![Vec::new(); n];
            for &(a, b) in &edges {
                adj[a].push(PeerId(b as u64));
                adj[b].push(PeerId(a as u64));
            }
            for list in &mut adj {
                list.sort_unstable();
                list.dedup();
            }
            let mut net = SimBuilder::new(SimConfig { seed, ..Default::default() })
                .topology(&t, pipe)
                .latency(LatencyModel::Jittered {
                    base: SimTime::from_millis(5),
                    jitter: SimTime::from_millis(2),
                    seed: 23,
                })
                .spawn(|id| FloodPeer {
                    neighbours: std::mem::take(&mut adj[id.0 as usize]),
                    seen: Vec::new(),
                    originate: if id.0 == 0 { 2 } else { 0 },
                });
            net.enable_trace();
            net.run_until_quiescent();
            (net.now(), net.events_processed(), net.stats(), net.trace().unwrap().to_vec())
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2, "identical NetStats incl. per-pipe counters");
        assert_eq!(a.3, b.3, "identical delivery traces");
        // A different simulator seed changes the loss draws.
        let c = run(43);
        assert_ne!(a.2.dropped, 0, "1% loss on thousands of messages drops something");
        assert_ne!(a.3, c.3, "seed changes the schedule");
    }
}
