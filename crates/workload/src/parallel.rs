//! Sustained-ingest workloads on the sharded threaded runtime, with the
//! simulator as ground truth.
//!
//! [`run_parallel_ingest`] drives the identical ingest + update schedule
//! through two networks — a [`codb_core::CoDbNetwork`] under the
//! discrete-event simulator (the control) and a [`ParallelCoDbNet`] on
//! real worker
//! threads — and compares every node's final LDB. Because both runtimes
//! execute the same [`codb_core::CoDbNode`] state machines and ingest
//! flows through the same message plane ([`codb_core::Body::IngestLocal`]),
//! any divergence is a runtime bug, not a workload artefact. The report
//! carries the threaded side's wall-clock throughput (updates/sec), which
//! is what experiment E20 sweeps over worker counts.
//!
//! [`run_parallel_host_crash`] is the durability variant: the threaded
//! network runs persistent under [`SyncPolicy::GroupCommit`] (one shared
//! fsync scheduler), is shut down abruptly mid-workload (no drain — the
//! pool's shutdown models a host crash), every store's WAL is chopped to a
//! seeded point at or past its durable watermark (the page-cache loss of
//! a real power cut), and the network is rebuilt from disk. The harness
//! proves **no acked update is lost**: recovery must replay, from the same
//! store generation, at least every record that was fsync-covered when the
//! crash hit.

use crate::scenario::Scenario;
use codb_core::{NodeId, NodeSettings, ParallelCoDbNet};
use codb_net::{RuntimeConfig, SimConfig};
use codb_relational::{Tuple, Value};
use codb_store::{Codec, SyncPolicy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::time::{Duration, Instant};

/// Ingested keys start here: far above any seeded scenario value (the
/// generators draw from `DataDist` domains no larger than `1 << 40`), so
/// ingested tuples are disjoint from seed data by construction.
const INGEST_KEY_BASE: i64 = 1 << 50;

/// A sustained-ingest workload: `rounds` rounds, each ingesting
/// `inserts_per_node` fresh tuples at every node (through the message
/// plane) and then running one global update from the scenario sink.
#[derive(Clone, Debug)]
pub struct ParallelIngestPlan {
    /// Topology, rules and seed data.
    pub scenario: Scenario,
    /// Worker threads for the sharded runtime (`0` = one per core).
    pub workers: usize,
    /// Bounded per-node mailbox depth.
    pub mailbox_depth: usize,
    /// Fresh tuples ingested at every node, every round.
    pub inserts_per_node: usize,
    /// Ingest + update rounds.
    pub rounds: usize,
    /// Seed for ingested values (and the crash harness's chop points).
    pub seed: u64,
}

/// What [`run_parallel_ingest`] measured.
#[derive(Clone, Debug)]
pub struct ParallelIngestReport {
    /// Nodes in the network.
    pub nodes: usize,
    /// Worker threads the pool actually ran.
    pub workers: usize,
    /// Total tuples ingested across all nodes and rounds.
    pub inserts: usize,
    /// Messages delivered by the threaded runtime.
    pub delivered: u64,
    /// Messages the threaded runtime could not deliver (must be 0).
    pub undeliverable: u64,
    /// Deepest mailbox observed — bounded by the configured depth.
    pub mailbox_peak: usize,
    /// Threaded wall-clock time for the whole ingest + update schedule.
    pub elapsed: Duration,
    /// `inserts / elapsed` — the E20 throughput metric.
    pub updates_per_sec: f64,
    /// Ingested tuples missing from their own node's final LDB (must
    /// be 0: local ingest is applied before anything else can happen).
    pub lost_updates: u64,
    /// Every threaded node's LDB equals its simulator counterpart.
    pub converged: bool,
}

/// The tuple ingested at `node` in `round`, insert `k`: globally unique
/// key above [`INGEST_KEY_BASE`], seeded payload value.
fn ingest_tuple(plan: &ParallelIngestPlan, round: usize, node: usize, k: usize) -> Tuple {
    let nodes = plan.scenario.topology.node_count();
    let key = INGEST_KEY_BASE + ((round * nodes + node) * plan.inserts_per_node + k) as i64;
    let mut rng = SmallRng::seed_from_u64(plan.seed ^ key as u64);
    Tuple::new(vec![Value::Int(key), Value::Int(rng.gen_range(0..1 << 30))])
}

/// Settle/deadline windows for threaded quiescence waits.
const SETTLE: Duration = Duration::from_millis(50);
const DEADLINE: Duration = Duration::from_secs(120);

/// Node settings for the threaded side: a short ARQ retransmit interval,
/// because under this runtime `SimTime` timers are wall-clock — the
/// default 250 ms would put a constant per-round timer tail into every
/// throughput measurement (each round's last unacked-window timers must
/// expire before the in-flight gate reaches zero). Does not affect the
/// fixpoint, only timing; the simulator control keeps defaults (simulated
/// time is free).
fn threaded_settings() -> NodeSettings {
    NodeSettings { retransmit_after: codb_net::SimTime::from_millis(20), ..NodeSettings::default() }
}

/// Runs the plan on both runtimes and compares fixpoints. Panics on
/// harness misuse (non-quiescence); divergence and loss are reported,
/// not panicked on, so callers (E20, CI smoke) can assert and print.
pub fn run_parallel_ingest(plan: &ParallelIngestPlan) -> ParallelIngestReport {
    let config = plan.scenario.build_config();
    let nodes = config.nodes.len();
    let sink = plan.scenario.sink();

    // Control: the identical schedule under the simulator.
    let mut sim = codb_core::CoDbNetwork::build(config.clone(), SimConfig::default())
        .expect("control network builds");
    for round in 0..plan.rounds {
        for (i, nc) in config.nodes.iter().enumerate() {
            let rel = Scenario::relation_of(i);
            for k in 0..plan.inserts_per_node {
                sim.run_control(
                    nc.id,
                    codb_core::Body::IngestLocal {
                        relation: rel.clone(),
                        tuple: ingest_tuple(plan, round, i, k),
                    },
                );
            }
        }
        sim.run_update(sink);
    }

    // Experiment: same schedule on the worker pool, timed.
    let rt = RuntimeConfig {
        workers: plan.workers,
        mailbox_depth: plan.mailbox_depth,
        ..RuntimeConfig::default()
    };
    let par = ParallelCoDbNet::build_with(config.clone(), rt, threaded_settings())
        .expect("threaded network builds");
    let workers = par.worker_count();
    let start = Instant::now();
    for round in 0..plan.rounds {
        for (i, nc) in config.nodes.iter().enumerate() {
            let rel = Scenario::relation_of(i);
            for k in 0..plan.inserts_per_node {
                par.ingest(nc.id, &rel, ingest_tuple(plan, round, i, k));
            }
        }
        par.start_update(sink);
        assert!(par.await_quiescence(SETTLE, DEADLINE), "threaded round must quiesce");
    }
    let elapsed = start.elapsed();
    let delivered = par.delivered();
    let undeliverable = par.undeliverable();
    let mailbox_peak = par.max_mailbox_depth();
    let final_nodes = par.shutdown();

    // Verdicts: every ingested tuple present at its own node, and full
    // LDB equality against the control.
    let mut lost_updates = 0u64;
    let mut converged = true;
    for (i, nc) in config.nodes.iter().enumerate() {
        let threaded = &final_nodes[&nc.id];
        let rel = Scenario::relation_of(i);
        for round in 0..plan.rounds {
            for k in 0..plan.inserts_per_node {
                let t = ingest_tuple(plan, round, i, k);
                if !threaded.ldb().get(&rel).is_some_and(|r| r.contains(&t)) {
                    lost_updates += 1;
                }
            }
        }
        converged &= threaded.ldb() == sim.node(nc.id).ldb();
    }
    let inserts = plan.rounds * nodes * plan.inserts_per_node;
    ParallelIngestReport {
        nodes,
        workers,
        inserts,
        delivered,
        undeliverable,
        mailbox_peak,
        elapsed,
        updates_per_sec: inserts as f64 / elapsed.as_secs_f64().max(1e-9),
        lost_updates,
        converged,
    }
}

/// What [`run_parallel_host_crash`] proved.
#[derive(Clone, Debug)]
pub struct ParallelCrashReport {
    /// Nodes whose on-disk state was recovered after the crash.
    pub recovered_nodes: usize,
    /// Acked (fsync-covered) WAL records across all stores at crash time.
    pub acked_records_checked: u64,
    /// Recovery replayed every acked record from the same generation at
    /// every node. The headline no-acked-loss verdict.
    pub acked_records_preserved: bool,
    /// The post-restart update round reached quiescence.
    pub post_restart_quiesced: bool,
}

/// Durable watermark captured per node the instant before the "crash"
/// (the pool's no-drain shutdown).
struct Watermark {
    node: NodeId,
    generation: u64,
    durable_frames: u64,
    durable_len: u64,
    wal_path: std::path::PathBuf,
}

/// Host-crash durability on the threaded runtime: run the plan's ingest
/// schedule persistent under `GroupCommit`, kill the whole pool mid-flight
/// (no drain), chop every WAL's unsynced tail at a seeded point, restart
/// from disk, and prove no acked record was lost. `data_root` must be a
/// fresh directory.
pub fn run_parallel_host_crash(
    plan: &ParallelIngestPlan,
    data_root: &Path,
) -> Result<ParallelCrashReport, codb_core::ParNetError> {
    let config = plan.scenario.build_config();
    let nodes = config.nodes.len() as u64;
    let policy = SyncPolicy::GroupCommit { max_batch: nodes, max_records: 8 * nodes };
    let rt = RuntimeConfig {
        workers: plan.workers,
        mailbox_depth: plan.mailbox_depth,
        ..RuntimeConfig::default()
    };

    // Phase 1: fresh persistent network, ingest + update, abrupt stop.
    let (par, recovered) = ParallelCoDbNet::build_persistent(
        config.clone(),
        rt,
        threaded_settings(),
        data_root,
        policy,
        Codec::Binary,
    )?;
    assert!(
        recovered.iter().all(|(_, stats)| stats.is_none()),
        "data_root must be fresh (found recovered state)"
    );
    for round in 0..plan.rounds {
        for (i, nc) in config.nodes.iter().enumerate() {
            let rel = Scenario::relation_of(i);
            for k in 0..plan.inserts_per_node {
                par.ingest(nc.id, &rel, ingest_tuple(plan, round, i, k));
            }
        }
        par.start_update(plan.scenario.sink());
    }
    // Let the workload make real durable progress (acked records to
    // protect), then crash without draining: whatever the group-commit
    // scheduler has not fsynced is exactly the tail at risk.
    assert!(par.await_quiescence(SETTLE, DEADLINE), "ingest phase must quiesce");
    let final_nodes = par.shutdown();

    // Capture durable watermarks, then drop the store handles before
    // touching the files.
    let mut watermarks = Vec::with_capacity(final_nodes.len());
    for (id, node) in &final_nodes {
        let store = node.store().expect("persistent node has a store");
        watermarks.push(Watermark {
            node: *id,
            generation: store.generation(),
            durable_frames: store.durable_wal_records(),
            durable_len: store.durable_wal_len(),
            wal_path: store.wal_path().to_owned(),
        });
    }
    drop(final_nodes);

    // Chop each WAL to a seeded point at or past its durable watermark —
    // the unsynced tail a power cut would take with it.
    let mut rng = SmallRng::seed_from_u64(plan.seed.wrapping_mul(0xA076_1D64_78BD_642F));
    for w in &watermarks {
        let len = std::fs::metadata(&w.wal_path).expect("crashed WAL exists").len();
        let unsynced = len.saturating_sub(w.durable_len);
        let cut = w.durable_len + rng.gen_range(0..unsynced + 1);
        if cut < len {
            std::fs::OpenOptions::new()
                .write(true)
                .open(&w.wal_path)
                .expect("reopen WAL for truncation")
                .set_len(cut)
                .expect("truncate WAL");
        }
    }

    // Phase 2: rebuild from disk and verify the no-acked-loss guarantee.
    let (par, recovered) = ParallelCoDbNet::build_persistent(
        config.clone(),
        rt,
        threaded_settings(),
        data_root,
        policy,
        Codec::Binary,
    )?;
    let mut acked_records_checked = 0;
    let mut acked_records_preserved = true;
    let mut recovered_nodes = 0;
    for w in &watermarks {
        let stats = recovered
            .iter()
            .find(|(id, _)| *id == w.node)
            .and_then(|(_, s)| s.as_ref())
            .expect("crashed node recovers from disk");
        recovered_nodes += 1;
        acked_records_checked += w.durable_frames;
        acked_records_preserved &=
            stats.generation == w.generation && stats.wal_records_replayed >= w.durable_frames;
    }

    // The recovered network must still be a working network: one more
    // update round has to reach a fixpoint.
    par.start_update(plan.scenario.sink());
    let post_restart_quiesced = par.await_quiescence(SETTLE, DEADLINE);
    par.shutdown();

    Ok(ParallelCrashReport {
        recovered_nodes,
        acked_records_checked,
        acked_records_preserved,
        post_restart_quiesced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_gen::DataDist;
    use crate::scenario::RuleStyle;
    use crate::topology::Topology;
    use codb_store::ScratchDir;

    fn plan(workers: usize, mailbox_depth: usize) -> ParallelIngestPlan {
        ParallelIngestPlan {
            scenario: Scenario {
                topology: Topology::Ring(4),
                tuples_per_node: 5,
                rule_style: RuleStyle::CopyGav,
                dist: DataDist::Uniform { domain: 1 << 40 },
                seed: 77,
            },
            workers,
            mailbox_depth,
            inserts_per_node: 6,
            rounds: 2,
            seed: 1234,
        }
    }

    #[test]
    fn threaded_ingest_matches_simulator_fixpoint() {
        let report = run_parallel_ingest(&plan(2, 256));
        assert_eq!(report.inserts, 2 * 4 * 6);
        assert_eq!(report.lost_updates, 0, "every ingested tuple must land");
        assert_eq!(report.undeliverable, 0);
        assert!(report.converged, "threaded and simulated fixpoints differ");
        assert!(report.updates_per_sec > 0.0);
    }

    #[test]
    fn tiny_mailboxes_still_converge() {
        // Depth 2 forces constant backpressure stalls on real protocol
        // traffic; correctness must be unaffected and the bound must hold.
        let report = run_parallel_ingest(&plan(2, 2));
        assert_eq!(report.lost_updates, 0);
        assert!(report.converged);
        assert!(report.mailbox_peak <= 2, "mailbox bound violated: {}", report.mailbox_peak);
    }

    #[test]
    fn host_crash_preserves_acked_updates() {
        let tmp = ScratchDir::new("parallel-host-crash");
        let report = run_parallel_host_crash(&plan(2, 256), tmp.path()).expect("harness runs");
        assert_eq!(report.recovered_nodes, 4);
        assert!(report.acked_records_checked > 0, "no durable records were at stake");
        assert!(report.acked_records_preserved, "acked records lost in host crash");
        assert!(report.post_restart_quiesced);
    }
}
