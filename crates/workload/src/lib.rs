//! # codb-workload
//!
//! Workload generation for the coDB experiments: topology families
//! ([`topology::Topology`]), seeded data generators ([`data_gen`]) and
//! complete scenario builders ([`scenario::Scenario`]) that assemble a
//! validated `NetworkConfig` ready to run on the simulator — the library
//! equivalent of the demo's hand-arranged networks. The [`crash`] module
//! runs the durability scenario family: kill a node mid-update, recover
//! it from its `codb-store` data directory, verify reconvergence. The
//! [`faultplan`] module generalises it into a deterministic
//! fault-injection harness: seeded, replayable schedules of
//! crash/restart/checkpoint/message-loss events whose outcome is checked
//! against a never-crashed control network.

#![warn(missing_docs)]

pub mod crash;
pub mod data_gen;
pub mod faultplan;
pub mod parallel;
pub mod scenario;
pub mod simscale;
pub mod topology;

pub use crash::{run_crash_restart, CrashRestartPlan, CrashRestartReport};
pub use data_gen::{generate, generate_distinct, DataDist};
pub use faultplan::{
    run_fault_plan, run_fault_plan_differential, run_fault_plan_traced, CodecDifferentialReport,
    Fault, FaultKind, FaultPlan, FaultPlanReport, Round,
};
pub use parallel::{
    run_parallel_host_crash, run_parallel_ingest, ParallelCrashReport, ParallelIngestPlan,
    ParallelIngestReport,
};
pub use scenario::{RuleStyle, Scenario};
pub use simscale::{run_flood, run_flood_traced, FloodMsg, FloodPeer, FloodReport};
pub use topology::Topology;
