//! Flight-recorder overhead measurement on the E19 flood substrate.
//!
//! Three configurations of an e19-quick-sized run (10k-node scale-free
//! flood — the worst case for the recorder, since the flood peers do
//! almost no work per simulator event):
//!
//! * **disabled** — `Tracer::disabled()`, one branch per emission site;
//! * **no-op sink** — enabled tracer wired to [`NoopSink`]: every event
//!   pays the emission plumbing (clock stamp, sink lock, dispatch) and
//!   is then discarded;
//! * **file recorder** — full binary recording of every send/deliver.
//!
//! The acceptance bar is ≤15% host time for the file recorder over the
//! no-op sink: actually *encoding and writing* the trace must cost
//! little beyond the fixed emission plumbing. Wall-clock ratios are too
//! noisy for a CI gate, so the measurement is `#[ignore]`d; run it by
//! hand (release mode, or debug-assertion constants dominate):
//!
//! ```sh
//! cargo test --release -p codb-workload --test trace_overhead -- --ignored --nocapture
//! ```

use codb_net::{PipeConfig, Tracer};
use codb_trace::NoopSink;
use codb_workload::{run_flood, run_flood_traced, Topology};
use std::sync::{Arc, Mutex};

const NODES: usize = 10_000;
const WAVES: u32 = 4;
const REPS: usize = 7;

fn topology() -> Topology {
    Topology::ScaleFree { n: NODES, m: 2, seed: 7 }
}

/// Best-of-N host milliseconds for the flood body under `f` (best-of
/// suppresses scheduler noise better than the mean on short runs).
fn best_ms(mut f: impl FnMut() -> f64) -> f64 {
    (0..REPS).map(|_| f()).fold(f64::INFINITY, f64::min)
}

#[test]
#[ignore = "wall-clock measurement; run by hand in release mode"]
fn file_recorder_overhead_within_budget() {
    let dir = std::env::temp_dir().join(format!("codb-trace-overhead-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Warm-up run so allocator and page-cache effects hit every side.
    run_flood(&topology(), PipeConfig::lan(), None, WAVES, 0xE19);

    let off = best_ms(|| run_flood(&topology(), PipeConfig::lan(), None, WAVES, 0xE19).host_ms);
    let noop = best_ms(|| {
        let tracer = Tracer::new(Arc::new(Mutex::new(NoopSink)));
        run_flood_traced(&topology(), PipeConfig::lan(), None, WAVES, 0xE19, &tracer).host_ms
    });
    let mut run = 0u32;
    let file = best_ms(|| {
        run += 1;
        let path = dir.join(format!("overhead-{run}.trc"));
        let (tracer, _rec) = Tracer::to_file(&path).unwrap();
        run_flood_traced(&topology(), PipeConfig::lan(), None, WAVES, 0xE19, &tracer).host_ms
    });
    let _ = std::fs::remove_dir_all(&dir);

    let vs_noop = (file - noop) / noop * 100.0;
    let vs_off = (file - off) / off * 100.0;
    println!(
        "disabled: {off:.2}ms  no-op sink: {noop:.2}ms  file recorder: {file:.2}ms\n\
         file vs no-op sink: {vs_noop:+.1}% (budget +15%)  file vs disabled: {vs_off:+.1}%"
    );
    assert!(vs_noop <= 15.0, "recording overhead {vs_noop:+.1}% over no-op sink exceeds 15%");
}
