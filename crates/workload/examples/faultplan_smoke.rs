//! Fixed-seed fault-injection smoke run for CI.
//!
//! Executes a handful of seeded crash/restart/checkpoint/loss schedules
//! (with `incremental_updates: true` — the crash-rejoin handshake's
//! cache-invalidation path) and fails loudly if any recovered network
//! does not reconverge to its never-crashed control.
//!
//! Every schedule runs **codec-differentially**: the identical plan is
//! executed once with all-JSON stores and once with all-binary stores,
//! and the reconverged states must match byte for byte — the CI pin of
//! the binary on-disk codec's behavioural equivalence under crashes.
//!
//! Usage: `cargo run -p codb-workload --example faultplan_smoke [seed...]`
//! (defaults to seeds 1, 2, 3 over a chain, a ring and a star).
//!
//! With `--trace FILE` as the first two arguments, the run instead
//! executes one fixed-seed **overlapping-rejoin** schedule — a node
//! crashes mid-update, survivors park their traffic behind the rejoin
//! barrier, and the node restarts mid-way through the *next* update so
//! barrier release and `RejoinRepair` interleave with live traffic —
//! with a flight recorder attached, writing the postmortem to FILE for
//! `codb-demo trace inspect` (the CI rejoin-barrier smoke step).

use codb_store::ScratchDir;
use codb_workload::{
    run_fault_plan_differential, run_fault_plan_traced, FaultPlan, RuleStyle, Scenario, Topology,
};

/// The traced rejoin-barrier run: one overlapping-rejoin schedule on a
/// chain, recorded end to end. Fails loudly unless the barrier actually
/// engaged (held and released) and the network reconverged.
fn traced_run(path: &str) -> ! {
    let scenario = Scenario { tuples_per_node: 10, ..Scenario::quick(Topology::Chain(4)) };
    // Seed 13 is pinned because its schedule provably exercises the whole
    // machinery on this chain: the crash lands while survivor traffic is
    // still in flight (messages park and release) and the victim has
    // incoming links (survivors push `RejoinRepair`).
    let plan = FaultPlan::overlapping_rejoin(scenario, 13);
    let tmp = ScratchDir::new("faultplan-smoke-trace");
    let (tracer, recorder) =
        codb_trace::Tracer::to_file(path).expect("trace file path is writable");
    let report = run_fault_plan_traced(&plan, tmp.path(), &tracer).expect("store i/o on scratch");
    tracer.flush().expect("trace flushes");
    drop(tracer);
    drop(recorder);
    println!(
        "traced overlapping rejoin: seed {} crashes={} live_restarts={} barrier_parked={} \
         barrier_released={} repairs={} converged={} -> {path}",
        report.seed,
        report.crashes,
        report.live_restarts,
        report.barrier_parked,
        report.barrier_released,
        report.repair_messages,
        report.converged,
    );
    let ok = report.converged
        && report.crashes == 1
        && report.live_restarts == 1
        && report.barrier_parked > 0
        && report.barrier_released > 0;
    if !ok {
        eprintln!("FAILED: the traced schedule must engage the barrier and reconverge");
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--trace") {
        if args.len() != 2 {
            eprintln!("usage: faultplan_smoke --trace FILE");
            std::process::exit(2);
        }
        traced_run(&args.remove(1));
    }
    let seeds: Vec<u64> =
        args.iter().map(|a| a.parse().unwrap_or_else(|_| panic!("not a seed: {a:?}"))).collect();
    let seeds = if seeds.is_empty() { vec![1, 2, 3] } else { seeds };
    let scenarios = [
        Scenario { tuples_per_node: 10, ..Scenario::quick(Topology::Chain(4)) },
        Scenario { tuples_per_node: 8, ..Scenario::quick(Topology::Ring(4)) },
        Scenario {
            tuples_per_node: 8,
            rule_style: RuleStyle::ProjectGlav,
            ..Scenario::quick(Topology::Star { leaves: 3 })
        },
    ];
    let mut failures = 0;
    for scenario in &scenarios {
        for &seed in &seeds {
            let plan = FaultPlan::generate(*scenario, seed);
            let tmp = ScratchDir::new("faultplan-smoke");
            let report =
                run_fault_plan_differential(&plan, tmp.path()).expect("store i/o on a scratch dir");
            println!(
                "seed {seed:>3} {:<22} rounds={} crashes={} checkpoints={} loss={:.2} \
                 rejoin_msgs={:>3} converged(json)={} converged(binary)={} states_identical={}",
                format!("{:?}", scenario.topology),
                report.json.rounds,
                report.json.crashes,
                report.json.checkpoints,
                plan.loss,
                report.json.rejoin_messages,
                report.json.converged,
                report.binary.converged,
                report.states_identical,
            );
            if !report.agreed() {
                eprintln!("FAILED: replay with FaultPlan::generate({scenario:?}, {seed})");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} schedule(s) failed to reconverge identically under both codecs");
        std::process::exit(1);
    }
    println!("all schedules reconverged, byte-identical across codecs");
}
