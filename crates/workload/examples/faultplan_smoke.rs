//! Fixed-seed fault-injection smoke run for CI.
//!
//! Executes a handful of seeded crash/restart/checkpoint/loss schedules
//! (with `incremental_updates: true` — the crash-rejoin handshake's
//! cache-invalidation path) and fails loudly if any recovered network
//! does not reconverge to its never-crashed control.
//!
//! Every schedule runs **codec-differentially**: the identical plan is
//! executed once with all-JSON stores and once with all-binary stores,
//! and the reconverged states must match byte for byte — the CI pin of
//! the binary on-disk codec's behavioural equivalence under crashes.
//!
//! Usage: `cargo run -p codb-workload --example faultplan_smoke [seed...]`
//! (defaults to seeds 1, 2, 3 over a chain, a ring and a star).

use codb_store::ScratchDir;
use codb_workload::{run_fault_plan_differential, FaultPlan, RuleStyle, Scenario, Topology};

fn main() {
    let seeds: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().unwrap_or_else(|_| panic!("not a seed: {a:?}")))
        .collect();
    let seeds = if seeds.is_empty() { vec![1, 2, 3] } else { seeds };
    let scenarios = [
        Scenario { tuples_per_node: 10, ..Scenario::quick(Topology::Chain(4)) },
        Scenario { tuples_per_node: 8, ..Scenario::quick(Topology::Ring(4)) },
        Scenario {
            tuples_per_node: 8,
            rule_style: RuleStyle::ProjectGlav,
            ..Scenario::quick(Topology::Star { leaves: 3 })
        },
    ];
    let mut failures = 0;
    for scenario in &scenarios {
        for &seed in &seeds {
            let plan = FaultPlan::generate(*scenario, seed);
            let tmp = ScratchDir::new("faultplan-smoke");
            let report =
                run_fault_plan_differential(&plan, tmp.path()).expect("store i/o on a scratch dir");
            println!(
                "seed {seed:>3} {:<22} rounds={} crashes={} checkpoints={} loss={:.2} \
                 rejoin_msgs={:>3} converged(json)={} converged(binary)={} states_identical={}",
                format!("{:?}", scenario.topology),
                report.json.rounds,
                report.json.crashes,
                report.json.checkpoints,
                plan.loss,
                report.json.rejoin_messages,
                report.json.converged,
                report.binary.converged,
                report.states_identical,
            );
            if !report.agreed() {
                eprintln!("FAILED: replay with FaultPlan::generate({scenario:?}, {seed})");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} schedule(s) failed to reconverge identically under both codecs");
        std::process::exit(1);
    }
    println!("all schedules reconverged, byte-identical across codecs");
}
