//! Timer-under-load regression, pinned on both runtimes: a peer receiving a
//! steady mail stream must still fire a due timer promptly — under the
//! sharded threaded runtime the batched-drain rule fires due timers between
//! node quanta (never behind a full mailbox drain), and under the
//! discrete-event simulator timers fire at their exact simulated deadline
//! regardless of how much mail is scheduled after them.

use codb_net::{
    Context, ParallelNet, Payload, Peer, PeerId, PipeConfig, RuntimeConfig, SimConfig, SimNet,
    SimTime,
};
use std::time::Duration;

#[derive(Clone, Debug)]
struct Ping(u32);
impl Payload for Ping {
    fn size_bytes(&self) -> usize {
        4
    }
}

/// Records how many messages it had seen when its timer fired. Each message
/// costs `work` host time (threaded runtime) so the flood outlasts the
/// timer deadline.
struct Victim {
    work: Duration,
    seen: u32,
    seen_at_fire: Option<u32>,
    /// Echo partner (sim mode): bounce the token back to keep the stream
    /// flowing across simulated time. `None` = absorb (threaded mode).
    echo: Option<PeerId>,
    fired_at: Option<SimTime>,
}

impl Victim {
    fn new() -> Self {
        Victim { work: Duration::ZERO, seen: 0, seen_at_fire: None, echo: None, fired_at: None }
    }
}

impl Peer<Ping> for Victim {
    fn on_start(&mut self, ctx: &mut Context<Ping>) {
        ctx.set_timer(SimTime::from_millis(5), 1);
    }
    fn on_message(&mut self, ctx: &mut Context<Ping>, from: PeerId, msg: Ping) {
        self.seen += 1;
        if !self.work.is_zero() {
            std::thread::sleep(self.work);
        }
        if self.echo.is_some() && msg.0 > 0 {
            ctx.send(from, Ping(msg.0 - 1));
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<Ping>, _timer: u64) {
        self.seen_at_fire.get_or_insert(self.seen);
        self.fired_at.get_or_insert(ctx.now());
    }
}

/// A relay that bounces every token back to its sender, TTL-decremented.
struct Relay;
impl Peer<Ping> for Relay {
    fn on_message(&mut self, ctx: &mut Context<Ping>, from: PeerId, msg: Ping) {
        if msg.0 > 0 {
            ctx.send(from, Ping(msg.0 - 1));
        }
    }
}

/// Threaded runtime: flood 2000 messages at a victim that takes ~50us
/// each (total drain ~100ms, 20x the 5ms timer deadline). The timer must
/// fire while most of the flood is still queued.
#[test]
fn threaded_timer_fires_mid_flood() {
    const FLOOD: u32 = 2000;
    let mut net: ParallelNet<Ping, Victim> =
        ParallelNet::with_config(RuntimeConfig { workers: 1, mailbox_depth: 4096, quantum: 32 });
    let mut victim = Victim::new();
    victim.work = Duration::from_micros(50);
    net.add_peer(PeerId(0), victim);
    for _ in 0..FLOOD {
        net.inject(PeerId(9), PeerId(0), Ping(0));
    }
    assert!(net.await_quiescence(Duration::from_millis(50), Duration::from_secs(60)));
    let peers = net.shutdown();
    let v = &peers[&PeerId(0)];
    assert_eq!(v.seen, FLOOD);
    let at_fire = v.seen_at_fire.expect("timer must fire");
    assert!(
        at_fire < FLOOD,
        "timer waited for the whole {FLOOD}-message drain (seen_at_fire = {at_fire})"
    );
}

/// Simulator: the victim ping-pongs with a relay over a 1ms pipe (a steady
/// stream spanning ~100ms of simulated time). The 5ms timer must fire at
/// exactly its deadline, a few messages in — not after the stream ends.
#[test]
fn sim_timer_fires_mid_stream() {
    let mut net: SimNet<Ping, SimVictim> = SimNet::new(SimConfig::default());
    net.add_peer(PeerId(0), SimVictim::Victim(victim_for_sim()));
    net.add_peer(PeerId(1), SimVictim::Relay(Relay));
    let pipe = PipeConfig::lan().with_latency(SimTime::from_millis(1));
    net.open_pipe(PeerId(0), PeerId(1), pipe);
    // TTL 100: the bounce stream covers ~100ms of sim time.
    net.inject(PeerId(1), PeerId(0), Ping(100));
    net.run_until_quiescent();
    let SimVictim::Victim(v) = net.peer(PeerId(0)).unwrap() else { unreachable!() };
    assert!(v.seen >= 50, "stream should have run: {}", v.seen);
    let at_fire = v.seen_at_fire.expect("timer must fire");
    assert!(at_fire < v.seen, "timer fired only after the stream drained");
    assert_eq!(
        v.fired_at.expect("recorded"),
        SimTime::from_millis(5),
        "sim timers fire at their exact deadline"
    );
}

enum SimVictim {
    Victim(Victim),
    Relay(Relay),
}

fn victim_for_sim() -> Victim {
    let mut v = Victim::new();
    v.echo = Some(PeerId(1));
    v
}

impl Peer<Ping> for SimVictim {
    fn on_start(&mut self, ctx: &mut Context<Ping>) {
        if let SimVictim::Victim(v) = self {
            v.on_start(ctx);
        }
    }
    fn on_message(&mut self, ctx: &mut Context<Ping>, from: PeerId, msg: Ping) {
        match self {
            SimVictim::Victim(v) => v.on_message(ctx, from, msg),
            SimVictim::Relay(r) => r.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<Ping>, timer: u64) {
        if let SimVictim::Victim(v) = self {
            v.on_timer(ctx, timer);
        }
    }
}
