//! Threaded runtime: the same [`Peer`] state machines as the simulator, run
//! on real OS threads with crossbeam channels.
//!
//! This runtime exists to demonstrate that the coDB node logic is not
//! simulator-only: every peer runs on its own thread, sends are real
//! cross-thread messages, and delivery order is whatever the scheduler
//! produces. It deliberately omits the latency/bandwidth/loss model — it
//! answers "does the protocol tolerate true asynchrony?", not "how long
//! does it take on a given network?".

use crate::discovery::{Advertisement, Board};
use crate::peer::{Command, Context, Payload, Peer, PeerId};
use crate::time::SimTime;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum Mail<M> {
    Msg { from: PeerId, msg: M },
    Shutdown,
}

struct Shared<M> {
    router: RwLock<HashMap<PeerId, Sender<Mail<M>>>>,
    pipes: RwLock<HashSet<(PeerId, PeerId)>>,
    board: RwLock<Board>,
    /// Messages sent but not yet fully processed + timers pending.
    in_flight: AtomicU64,
    undeliverable: AtomicU64,
    delivered: AtomicU64,
    epoch: Instant,
}

impl<M> Shared<M> {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_nanos() as u64)
    }
}

/// The threaded runtime. Peers are added up front, work is injected, and
/// [`ParallelNet::shutdown`] joins all threads and returns the
/// final peer states for inspection.
pub struct ParallelNet<M: Payload, P: Peer<M> + 'static> {
    shared: Arc<Shared<M>>,
    handles: BTreeMap<PeerId, JoinHandle<P>>,
}

impl<M: Payload, P: Peer<M> + 'static> Default for ParallelNet<M, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Payload, P: Peer<M> + 'static> ParallelNet<M, P> {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        ParallelNet {
            shared: Arc::new(Shared {
                router: RwLock::new(HashMap::new()),
                pipes: RwLock::new(HashSet::new()),
                board: RwLock::new(Board::new()),
                in_flight: AtomicU64::new(0),
                undeliverable: AtomicU64::new(0),
                delivered: AtomicU64::new(0),
                epoch: Instant::now(),
            }),
            handles: BTreeMap::new(),
        }
    }

    /// Opens a bidirectional pipe.
    pub fn open_pipe(&self, a: PeerId, b: PeerId) {
        let mut pipes = self.shared.pipes.write();
        pipes.insert((a, b));
        pipes.insert((b, a));
    }

    /// Closes a pipe (both directions).
    pub fn close_pipe(&self, a: PeerId, b: PeerId) {
        let mut pipes = self.shared.pipes.write();
        pipes.remove(&(a, b));
        pipes.remove(&(b, a));
    }

    /// Spawns `peer` on its own thread; `on_start` runs immediately there.
    pub fn add_peer(&mut self, id: PeerId, mut peer: P) {
        let (tx, rx): (Sender<Mail<M>>, Receiver<Mail<M>>) = unbounded();
        self.shared.router.write().insert(id, tx);
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::spawn(move || {
            // (fire_at, timer-id) min-heap via Reverse ordering.
            let mut timers: BinaryHeap<std::cmp::Reverse<(SimTime, u64)>> = BinaryHeap::new();
            // on_start
            let new_timers = {
                let ads = shared.board.read().snapshot().to_vec();
                let mut ctx = Context::new(id, shared.now(), &ads);
                peer.on_start(&mut ctx);
                let cmds = ctx.take_commands();
                let mut pending = Vec::new();
                apply(id, &shared, cmds, &mut |at, timer| pending.push((at, timer)));
                pending
            };
            for (at, t) in new_timers {
                timers.push(std::cmp::Reverse((at, t)));
            }
            loop {
                // Fire due timers.
                let now = shared.now();
                let mut due = Vec::new();
                while let Some(&std::cmp::Reverse((at, t))) = timers.peek() {
                    if at <= now {
                        timers.pop();
                        due.push(t);
                    } else {
                        break;
                    }
                }
                for t in due {
                    let ads = shared.board.read().snapshot().to_vec();
                    let mut ctx = Context::new(id, shared.now(), &ads);
                    peer.on_timer(&mut ctx, t);
                    let cmds = ctx.take_commands();
                    let mut pending = Vec::new();
                    apply(id, &shared, cmds, &mut |at, timer| pending.push((at, timer)));
                    for (at, timer) in pending {
                        timers.push(std::cmp::Reverse((at, timer)));
                    }
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                // Wait for mail until the next timer (or 10ms).
                let timeout = timers
                    .peek()
                    .map(|&std::cmp::Reverse((at, _))| {
                        Duration::from_nanos(at.saturating_sub(shared.now()).as_nanos())
                    })
                    .unwrap_or(Duration::from_millis(10));
                match rx.recv_timeout(timeout) {
                    Ok(Mail::Msg { from, msg }) => {
                        shared.delivered.fetch_add(1, Ordering::SeqCst);
                        let ads = shared.board.read().snapshot().to_vec();
                        let mut ctx = Context::new(id, shared.now(), &ads);
                        peer.on_message(&mut ctx, from, msg);
                        let cmds = ctx.take_commands();
                        let mut pending = Vec::new();
                        apply(id, &shared, cmds, &mut |at, timer| pending.push((at, timer)));
                        for (at, timer) in pending {
                            timers.push(std::cmp::Reverse((at, timer)));
                        }
                        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    Ok(Mail::Shutdown) => break,
                    Err(_) => { /* timeout: loop to fire timers */ }
                }
            }
            peer
        });
        self.handles.insert(id, handle);
    }

    /// Injects a message from the harness; counts toward in-flight work.
    pub fn inject(&self, from: PeerId, to: PeerId, msg: M) {
        let router = self.shared.router.read();
        if let Some(tx) = router.get(&to) {
            self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            let _ = tx.send(Mail::Msg { from, msg });
        } else {
            self.shared.undeliverable.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Blocks until no message or timer has been in flight for
    /// `settle` consecutive checks, or until `deadline` elapses.
    /// Returns `true` on quiescence.
    pub fn await_quiescence(&self, settle: Duration, deadline: Duration) -> bool {
        let start = Instant::now();
        let mut calm_since: Option<Instant> = None;
        loop {
            let busy = self.shared.in_flight.load(Ordering::SeqCst) > 0;
            if busy {
                calm_since = None;
            } else {
                let since = *calm_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= settle {
                    return true;
                }
            }
            if start.elapsed() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.shared.delivered.load(Ordering::SeqCst)
    }

    /// Sends without an open pipe.
    pub fn undeliverable(&self) -> u64 {
        self.shared.undeliverable.load(Ordering::SeqCst)
    }

    /// Publishes an advertisement from the harness.
    pub fn advertise(&self, ad: Advertisement) {
        self.shared.board.write().publish(ad);
    }

    /// Stops every peer thread and returns the final peer states.
    pub fn shutdown(mut self) -> BTreeMap<PeerId, P> {
        {
            let router = self.shared.router.read();
            for tx in router.values() {
                let _ = tx.send(Mail::Shutdown);
            }
        }
        let mut out = BTreeMap::new();
        for (id, handle) in std::mem::take(&mut self.handles) {
            if let Ok(peer) = handle.join() {
                out.insert(id, peer);
            }
        }
        out
    }
}

/// Applies peer commands against the shared runtime state. Timer requests
/// are reported back through `on_timer_set` because the per-peer timer heap
/// lives on the peer thread.
fn apply<M: Payload>(
    origin: PeerId,
    shared: &Shared<M>,
    commands: Vec<Command<M>>,
    on_timer_set: &mut dyn FnMut(SimTime, u64),
) {
    for cmd in commands {
        match cmd {
            Command::Send { to, msg } => {
                let has_pipe = shared.pipes.read().contains(&(origin, to));
                if !has_pipe {
                    shared.undeliverable.fetch_add(1, Ordering::SeqCst);
                    continue;
                }
                let router = shared.router.read();
                match router.get(&to) {
                    Some(tx) => {
                        shared.in_flight.fetch_add(1, Ordering::SeqCst);
                        let _ = tx.send(Mail::Msg { from: origin, msg });
                    }
                    None => {
                        shared.undeliverable.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            Command::SetTimer { delay, timer } => {
                shared.in_flight.fetch_add(1, Ordering::SeqCst);
                on_timer_set(shared.now() + delay, timer);
            }
            Command::OpenPipe { with, .. } => {
                let mut pipes = shared.pipes.write();
                pipes.insert((origin, with));
                pipes.insert((with, origin));
            }
            Command::ClosePipe { with } => {
                let mut pipes = shared.pipes.write();
                pipes.remove(&(origin, with));
                pipes.remove(&(with, origin));
            }
            Command::Advertise(ad) => shared.board.write().publish(ad),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Token(u32);
    impl Payload for Token {
        fn size_bytes(&self) -> usize {
            4
        }
    }

    struct Counter {
        next: PeerId,
        seen: u32,
    }

    impl Peer<Token> for Counter {
        fn on_message(&mut self, ctx: &mut Context<Token>, _from: PeerId, msg: Token) {
            self.seen += 1;
            if msg.0 > 0 {
                ctx.send(self.next, Token(msg.0 - 1));
            }
        }
    }

    #[test]
    fn token_ring_under_threads() {
        let mut net: ParallelNet<Token, Counter> = ParallelNet::new();
        let n = 4u64;
        for i in 0..n {
            net.add_peer(PeerId(i), Counter { next: PeerId((i + 1) % n), seen: 0 });
        }
        for i in 0..n {
            net.open_pipe(PeerId(i), PeerId((i + 1) % n));
        }
        net.inject(PeerId(n - 1), PeerId(0), Token(15));
        assert!(net.await_quiescence(Duration::from_millis(50), Duration::from_secs(5)));
        let peers = net.shutdown();
        let total: u32 = peers.values().map(|p| p.seen).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn send_without_pipe_counted() {
        let mut net: ParallelNet<Token, Counter> = ParallelNet::new();
        net.add_peer(PeerId(0), Counter { next: PeerId(1), seen: 0 });
        // No pipe 0->1 and no peer 1.
        net.inject(PeerId(9), PeerId(0), Token(1));
        assert!(net.await_quiescence(Duration::from_millis(50), Duration::from_secs(5)));
        assert_eq!(net.undeliverable(), 1);
        net.shutdown();
    }

    #[test]
    fn timers_fire_on_threads() {
        struct Timed {
            fired: bool,
        }
        impl Peer<Token> for Timed {
            fn on_start(&mut self, ctx: &mut Context<Token>) {
                ctx.set_timer(SimTime::from_millis(5), 1);
            }
            fn on_message(&mut self, _: &mut Context<Token>, _: PeerId, _: Token) {}
            fn on_timer(&mut self, _: &mut Context<Token>, _: u64) {
                self.fired = true;
            }
        }
        let mut net: ParallelNet<Token, Timed> = ParallelNet::new();
        net.add_peer(PeerId(0), Timed { fired: false });
        assert!(net.await_quiescence(Duration::from_millis(50), Duration::from_secs(5)));
        let peers = net.shutdown();
        assert!(peers[&PeerId(0)].fired);
    }
}
