//! Threaded runtime: the same [`Peer`] state machines as the simulator, run
//! on a sharded worker pool.
//!
//! N worker threads ([`RuntimeConfig::workers`]) multiplex M nodes: each
//! node is pinned to one shard (round-robin at [`ParallelNet::add_peer`])
//! and owns a **bounded** mailbox ([`RuntimeConfig::mailbox_depth`]). A full
//! mailbox applies backpressure instead of dropping or growing without
//! bound: harness [`ParallelNet::inject`] blocks until a slot frees, and a
//! peer whose `Send` hits a full destination stalls — its commands stay
//! parked, its drain slows to one message per visit, and it resumes when
//! the destination pops (see the `worker` module source for the scheduling and
//! deadlock-avoidance rules that keep stall cycles moving; should a wedge
//! ever form anyway it is bounded to the involved nodes and surfaces as an
//! [`ParallelNet::await_quiescence`] deadline miss rather than a hang).
//!
//! This runtime answers "does the protocol tolerate true asynchrony, and
//! how fast can one host push it?" — it deliberately omits the
//! latency/bandwidth/loss model of [`crate::sim::SimNet`]. Peer code runs
//! unmodified under both.

use crate::discovery::Advertisement;
use crate::mailbox::Mailbox;
use crate::peer::{Payload, Peer, PeerId};
use crate::worker::{run_worker, Gate, NodeMeta, OpsQueue, ShardHandle, ShardOp, Shared};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the sharded runtime.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Worker threads (shards). `0` means one per available core.
    pub workers: usize,
    /// Per-node mailbox capacity; a full mailbox blocks/stalls senders.
    pub mailbox_depth: usize,
    /// Max messages drained per node per scheduling visit.
    pub quantum: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig { workers: 0, mailbox_depth: 1024, quantum: 32 }
    }
}

/// The threaded runtime. Peers are added up front, work is injected, and
/// [`ParallelNet::shutdown`] stops the workers and returns the final peer
/// states for inspection. Shutdown does **not** drain outstanding mail —
/// call [`ParallelNet::await_quiescence`] first for a graceful stop, or
/// skip it to model a host crash.
pub struct ParallelNet<M: Payload, P: Peer<M> + 'static> {
    shared: Arc<Shared<M>>,
    ops: Vec<Arc<OpsQueue<M, P>>>,
    workers: Vec<JoinHandle<Vec<(PeerId, P)>>>,
    mailbox_depth: usize,
    next_shard: usize,
}

impl<M: Payload, P: Peer<M> + 'static> Default for ParallelNet<M, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Payload, P: Peer<M> + 'static> ParallelNet<M, P> {
    /// Creates a runtime with default tuning.
    pub fn new() -> Self {
        Self::with_config(RuntimeConfig::default())
    }

    /// Creates a runtime with explicit worker count, mailbox depth and
    /// drain quantum.
    pub fn with_config(config: RuntimeConfig) -> Self {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.workers
        }
        .max(1);
        let schedulers: Vec<Arc<ShardHandle>> =
            (0..workers).map(|_| Arc::new(ShardHandle::new())).collect();
        let shared = Arc::new(Shared {
            router: RwLock::new(HashMap::new()),
            pipes: RwLock::new(HashSet::new()),
            board: RwLock::new(crate::discovery::Board::new()),
            gate: Gate::new(),
            delivered: AtomicU64::new(0),
            undeliverable: AtomicU64::new(0),
            epoch: Instant::now(),
            schedulers,
            quantum: config.quantum.max(1),
        });
        let ops: Vec<Arc<OpsQueue<M, P>>> =
            (0..workers).map(|_| Arc::new(OpsQueue::new())).collect();
        let handles = (0..workers)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                let ops = Arc::clone(&ops[shard]);
                std::thread::Builder::new()
                    .name(format!("codb-shard-{shard}"))
                    .spawn(move || run_worker(shard, shared, ops))
                    .expect("spawn shard worker")
            })
            .collect();
        ParallelNet {
            shared,
            ops,
            workers: handles,
            mailbox_depth: config.mailbox_depth.max(1),
            next_shard: 0,
        }
    }

    /// Number of shard workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Opens a bidirectional pipe.
    pub fn open_pipe(&self, a: PeerId, b: PeerId) {
        let mut pipes = self.shared.pipes.write();
        pipes.insert((a, b));
        pipes.insert((b, a));
    }

    /// Closes a pipe (both directions).
    pub fn close_pipe(&self, a: PeerId, b: PeerId) {
        let mut pipes = self.shared.pipes.write();
        pipes.remove(&(a, b));
        pipes.remove(&(b, a));
    }

    /// Registers `peer` on the next shard (round-robin); `on_start` runs on
    /// the owning worker. If `id` was already registered, the previous peer
    /// is retired first — its queued mail is settled as undeliverable, its
    /// timers cancel — and its final state is returned, so a duplicate
    /// registration can never orphan a live peer.
    pub fn add_peer(&mut self, id: PeerId, peer: P) -> Option<P> {
        let shard = self.next_shard;
        self.next_shard = (self.next_shard + 1) % self.workers.len();
        let meta = Arc::new(NodeMeta {
            mailbox: Mailbox::new(self.mailbox_depth),
            shard,
            scheduled: AtomicBool::new(false),
        });
        let previous = self.shared.router.write().insert(id, Arc::clone(&meta));
        let retired = previous.and_then(|old| self.retire_on(old.shard, id));
        self.ops[shard].push(ShardOp::Add { id, peer, meta });
        self.shared.schedulers[shard].kick();
        retired
    }

    /// Batch registration: every peer's mailbox is routable *before* the
    /// first `on_start` runs, so start-time traffic between the new peers
    /// (e.g. recovery handshakes) cannot race registration order and go
    /// undeliverable. Duplicate ids are retired as in
    /// [`ParallelNet::add_peer`]; their final states are returned.
    pub fn add_peers(&mut self, peers: impl IntoIterator<Item = (PeerId, P)>) -> Vec<(PeerId, P)> {
        let mut staged = Vec::new();
        let mut retired = Vec::new();
        for (id, peer) in peers {
            let shard = self.next_shard;
            self.next_shard = (self.next_shard + 1) % self.workers.len();
            let meta = Arc::new(NodeMeta {
                mailbox: Mailbox::new(self.mailbox_depth),
                shard,
                scheduled: AtomicBool::new(false),
            });
            let previous = self.shared.router.write().insert(id, Arc::clone(&meta));
            if let Some(old) = previous {
                if let Some(p) = self.retire_on(old.shard, id) {
                    retired.push((id, p));
                }
            }
            staged.push((shard, id, peer, meta));
        }
        for (shard, id, peer, meta) in staged {
            self.ops[shard].push(ShardOp::Add { id, peer, meta });
        }
        for handle in &self.shared.schedulers {
            handle.kick();
        }
        retired
    }

    /// Unregisters `id` and returns its final state: pipes close, queued
    /// mail settles as undeliverable, pending timers cancel. Subsequent
    /// sends to `id` are counted undeliverable without leaking in-flight
    /// accounting.
    pub fn remove_peer(&mut self, id: PeerId) -> Option<P> {
        let meta = self.shared.router.write().remove(&id)?;
        self.shared.pipes.write().retain(|(a, b)| *a != id && *b != id);
        self.retire_on(meta.shard, id)
    }

    /// Synchronously retires `id` on its owning shard.
    fn retire_on(&self, shard: usize, id: PeerId) -> Option<P> {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.ops[shard].push(ShardOp::Retire { id, reply: tx });
        self.shared.schedulers[shard].kick();
        rx.recv().ok().flatten()
    }

    /// Injects a message from the harness; counts toward in-flight work.
    /// Blocks while the destination mailbox is full (backpressure). A send
    /// that loses a race with peer shutdown is decremented again and
    /// counted undeliverable — in-flight accounting never leaks.
    pub fn inject(&self, from: PeerId, to: PeerId, msg: M) {
        let meta = self.shared.router.read().get(&to).cloned();
        let Some(meta) = meta else {
            self.shared.undeliverable.fetch_add(1, Ordering::SeqCst);
            return;
        };
        self.shared.gate.inc(1);
        match meta.mailbox.push_blocking(from, msg) {
            Ok(()) => self.shared.schedule(&meta, to),
            Err(_) => {
                // Destination shut down while we were queued: undo the
                // in-flight charge so quiescence still settles.
                self.shared.gate.dec(1);
                self.shared.undeliverable.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    /// Blocks until no message, timer or parked command has been in flight
    /// for a full `settle` window, or until `deadline` elapses. Returns
    /// `true` on quiescence. Condvar-driven: woken when the in-flight count
    /// reaches zero (and on renewed activity), not by polling.
    pub fn await_quiescence(&self, settle: Duration, deadline: Duration) -> bool {
        self.shared.gate.await_quiescence(settle, deadline)
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.shared.delivered.load(Ordering::SeqCst)
    }

    /// Sends that could not be delivered: no pipe, unknown or retired
    /// destination, or mail abandoned by an abrupt shutdown.
    pub fn undeliverable(&self) -> u64 {
        self.shared.undeliverable.load(Ordering::SeqCst)
    }

    /// Highest mailbox depth observed on any currently-registered node —
    /// never exceeds the configured `mailbox_depth` except transiently via
    /// self-sends, which bypass the bound to avoid self-deadlock.
    pub fn max_mailbox_depth(&self) -> usize {
        self.shared.router.read().values().map(|m| m.mailbox.peak()).max().unwrap_or(0)
    }

    /// Publishes an advertisement from the harness.
    pub fn advertise(&self, ad: Advertisement) {
        self.shared.board.write().publish(ad);
    }

    /// Stops every worker and returns the final peer states. Outstanding
    /// mail is *not* drained (await quiescence first for a graceful stop);
    /// it is settled as undeliverable so blocked injectors unblock.
    pub fn shutdown(mut self) -> BTreeMap<PeerId, P> {
        let mut out = BTreeMap::new();
        for (id, peer) in self.stop_and_join() {
            out.insert(id, peer);
        }
        out
    }

    fn stop_and_join(&mut self) -> Vec<(PeerId, P)> {
        for handle in &self.shared.schedulers {
            handle.stop();
        }
        let mut out = Vec::new();
        for worker in std::mem::take(&mut self.workers) {
            if let Ok(cells) = worker.join() {
                out.extend(cells);
            }
        }
        self.shared.router.write().clear();
        out
    }
}

impl<M: Payload, P: Peer<M> + 'static> Drop for ParallelNet<M, P> {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            drop(self.stop_and_join());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::Context;
    use crate::time::SimTime;

    #[derive(Clone, Debug)]
    struct Token(u32);
    impl Payload for Token {
        fn size_bytes(&self) -> usize {
            4
        }
    }

    struct Counter {
        next: PeerId,
        seen: u32,
    }

    impl Peer<Token> for Counter {
        fn on_message(&mut self, ctx: &mut Context<Token>, _from: PeerId, msg: Token) {
            self.seen += 1;
            if msg.0 > 0 {
                ctx.send(self.next, Token(msg.0 - 1));
            }
        }
    }

    fn small(workers: usize, mailbox_depth: usize) -> RuntimeConfig {
        RuntimeConfig { workers, mailbox_depth, quantum: 8 }
    }

    #[test]
    fn token_ring_under_threads() {
        let mut net: ParallelNet<Token, Counter> = ParallelNet::new();
        let n = 4u64;
        for i in 0..n {
            net.add_peer(PeerId(i), Counter { next: PeerId((i + 1) % n), seen: 0 });
        }
        for i in 0..n {
            net.open_pipe(PeerId(i), PeerId((i + 1) % n));
        }
        net.inject(PeerId(n - 1), PeerId(0), Token(15));
        assert!(net.await_quiescence(Duration::from_millis(50), Duration::from_secs(5)));
        let peers = net.shutdown();
        let total: u32 = peers.values().map(|p| p.seen).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn send_without_pipe_counted() {
        let mut net: ParallelNet<Token, Counter> = ParallelNet::new();
        net.add_peer(PeerId(0), Counter { next: PeerId(1), seen: 0 });
        // No pipe 0->1 and no peer 1.
        net.inject(PeerId(9), PeerId(0), Token(1));
        assert!(net.await_quiescence(Duration::from_millis(50), Duration::from_secs(5)));
        assert_eq!(net.undeliverable(), 1);
        net.shutdown();
    }

    #[test]
    fn timers_fire_on_threads() {
        struct Timed {
            fired: bool,
        }
        impl Peer<Token> for Timed {
            fn on_start(&mut self, ctx: &mut Context<Token>) {
                ctx.set_timer(SimTime::from_millis(5), 1);
            }
            fn on_message(&mut self, _: &mut Context<Token>, _: PeerId, _: Token) {}
            fn on_timer(&mut self, _: &mut Context<Token>, _: u64) {
                self.fired = true;
            }
        }
        let mut net: ParallelNet<Token, Timed> = ParallelNet::new();
        net.add_peer(PeerId(0), Timed { fired: false });
        assert!(net.await_quiescence(Duration::from_millis(50), Duration::from_secs(5)));
        let peers = net.shutdown();
        assert!(peers[&PeerId(0)].fired);
    }

    /// Satellite regression: a send racing (or following) a peer shutdown
    /// must decrement in-flight and count undeliverable, so quiescence
    /// still settles instead of hanging on a leaked counter.
    #[test]
    fn send_to_removed_peer_settles() {
        let mut net: ParallelNet<Token, Counter> = ParallelNet::with_config(small(2, 8));
        net.add_peer(PeerId(0), Counter { next: PeerId(1), seen: 0 });
        net.add_peer(PeerId(1), Counter { next: PeerId(0), seen: 0 });
        net.open_pipe(PeerId(0), PeerId(1));
        let removed = net.remove_peer(PeerId(1));
        assert!(removed.is_some());
        // Harness inject to the removed peer: unknown destination.
        net.inject(PeerId(9), PeerId(1), Token(0));
        // Peer-originated send to the removed peer: 0 forwards to 1.
        net.open_pipe(PeerId(0), PeerId(1)); // re-open; removal closed it
        net.inject(PeerId(9), PeerId(0), Token(1));
        assert!(
            net.await_quiescence(Duration::from_millis(50), Duration::from_secs(5)),
            "undeliverable sends must not leak in-flight accounting"
        );
        assert_eq!(net.undeliverable(), 2);
        let peers = net.shutdown();
        assert_eq!(peers.len(), 1);
        assert_eq!(peers[&PeerId(0)].seen, 1);
    }

    /// Satellite regression: duplicate `add_peer` retires the first peer
    /// (returning its state) instead of silently orphaning it.
    #[test]
    fn duplicate_add_peer_retires_old() {
        let mut net: ParallelNet<Token, Counter> = ParallelNet::with_config(small(2, 8));
        // Fresh registration: nothing to retire.
        assert!(net.add_peer(PeerId(0), Counter { next: PeerId(0), seen: 0 }).is_none());
        assert!(net.add_peer(PeerId(7), Counter { next: PeerId(0), seen: 0 }).is_none());
        net.inject(PeerId(9), PeerId(0), Token(0));
        assert!(net.await_quiescence(Duration::from_millis(20), Duration::from_secs(5)));
        // Duplicate registration: the old peer (seen=1) comes back.
        let old = net.add_peer(PeerId(0), Counter { next: PeerId(0), seen: 100 });
        assert_eq!(old.expect("old peer joined and returned").seen, 1);
        // Traffic now reaches the replacement, and quiescence still works.
        net.inject(PeerId(9), PeerId(0), Token(0));
        assert!(net.await_quiescence(Duration::from_millis(20), Duration::from_secs(5)));
        let peers = net.shutdown();
        assert_eq!(peers.len(), 2);
        assert_eq!(peers[&PeerId(0)].seen, 101);
    }

    /// Satellite regression (existing behavior): the settle window is kept
    /// by the condvar-based gate — quiescence is not declared while a
    /// pending timer holds in-flight work, and a too-short deadline fails.
    #[test]
    fn quiescence_keeps_settle_window() {
        struct LateTimer;
        impl Peer<Token> for LateTimer {
            fn on_start(&mut self, ctx: &mut Context<Token>) {
                ctx.set_timer(SimTime::from_millis(40), 1);
            }
            fn on_message(&mut self, _: &mut Context<Token>, _: PeerId, _: Token) {}
        }
        let mut net: ParallelNet<Token, LateTimer> = ParallelNet::with_config(small(1, 8));
        net.add_peer(PeerId(0), LateTimer);
        // Deadline shorter than the pending timer: must report busy.
        assert!(!net.await_quiescence(Duration::from_millis(5), Duration::from_millis(10)));
        let start = Instant::now();
        assert!(net.await_quiescence(Duration::from_millis(20), Duration::from_secs(5)));
        // True quiescence only after the timer fired AND a settle window
        // passed on top (40ms was consumed partly by the first await).
        assert!(start.elapsed() >= Duration::from_millis(20));
        net.shutdown();
    }

    /// Acceptance: mailbox depth is a config knob and backpressure is real —
    /// a slow consumer blocks `inject`, and the observed depth never
    /// exceeds the bound.
    #[test]
    fn backpressure_bounds_mailbox_depth() {
        struct Slow {
            seen: u32,
        }
        impl Peer<Token> for Slow {
            fn on_message(&mut self, _: &mut Context<Token>, _: PeerId, _: Token) {
                self.seen += 1;
                std::thread::sleep(Duration::from_millis(3));
            }
        }
        let mut net: ParallelNet<Token, Slow> = ParallelNet::with_config(small(1, 2));
        net.add_peer(PeerId(0), Slow { seen: 0 });
        let start = Instant::now();
        for _ in 0..8 {
            net.inject(PeerId(9), PeerId(0), Token(0));
        }
        // 8 injects through a depth-2 mailbox at 3ms/message: the producer
        // must have been throttled by consumption, not buffered ahead.
        assert!(
            start.elapsed() >= Duration::from_millis(12),
            "inject returned too fast to have seen backpressure: {:?}",
            start.elapsed()
        );
        assert!(net.await_quiescence(Duration::from_millis(30), Duration::from_secs(10)));
        assert!(net.max_mailbox_depth() <= 2, "depth {} exceeded bound", net.max_mailbox_depth());
        let peers = net.shutdown();
        assert_eq!(peers[&PeerId(0)].seen, 8);
    }

    /// Worker-to-worker backpressure: a bursty producer stalls on the
    /// consumer's full mailbox (parking its commands) and resumes as slots
    /// free, with nothing lost — on one shard and across two.
    #[test]
    fn bursty_producer_stalls_and_resumes() {
        struct Burst {
            target: PeerId,
        }
        impl Peer<Token> for Burst {
            fn on_message(&mut self, ctx: &mut Context<Token>, _: PeerId, msg: Token) {
                for _ in 0..msg.0 {
                    ctx.send(self.target, Token(0));
                }
            }
        }
        struct Sink {
            seen: u32,
        }
        impl Peer<Token> for Sink {
            fn on_message(&mut self, _: &mut Context<Token>, _: PeerId, _: Token) {
                self.seen += 1;
            }
        }
        enum Node {
            Burst(Burst),
            Sink(Sink),
        }
        impl Peer<Token> for Node {
            fn on_message(&mut self, ctx: &mut Context<Token>, from: PeerId, msg: Token) {
                match self {
                    Node::Burst(b) => b.on_message(ctx, from, msg),
                    Node::Sink(s) => s.on_message(ctx, from, msg),
                }
            }
        }
        for workers in [1, 2] {
            let mut net: ParallelNet<Token, Node> = ParallelNet::with_config(small(workers, 4));
            net.add_peer(PeerId(0), Node::Burst(Burst { target: PeerId(1) }));
            net.add_peer(PeerId(1), Node::Sink(Sink { seen: 0 }));
            net.open_pipe(PeerId(0), PeerId(1));
            net.inject(PeerId(9), PeerId(0), Token(100));
            assert!(
                net.await_quiescence(Duration::from_millis(50), Duration::from_secs(10)),
                "stalled burst must drain ({workers} workers)"
            );
            assert!(net.max_mailbox_depth() <= 4);
            let peers = net.shutdown();
            match &peers[&PeerId(1)] {
                Node::Sink(s) => assert_eq!(s.seen, 100, "{workers} workers"),
                _ => unreachable!(),
            }
        }
    }

    /// Cyclic pressure: every ring member bursts more traffic than the
    /// ring's total mailbox capacity. The stall/wake protocol must keep
    /// making progress (each wake moves at least one message) and drain.
    #[test]
    fn cyclic_pressure_converges() {
        struct RingBurst {
            next: PeerId,
            burst: u32,
            seen: u32,
        }
        impl Peer<Token> for RingBurst {
            fn on_start(&mut self, ctx: &mut Context<Token>) {
                for _ in 0..self.burst {
                    ctx.send(self.next, Token(20));
                }
            }
            fn on_message(&mut self, ctx: &mut Context<Token>, _: PeerId, msg: Token) {
                self.seen += 1;
                if msg.0 > 0 {
                    ctx.send(self.next, Token(msg.0 - 1));
                }
            }
        }
        let n = 6u64;
        let burst = 10u32;
        let mut net: ParallelNet<Token, RingBurst> =
            ParallelNet::with_config(RuntimeConfig { workers: 2, mailbox_depth: 2, quantum: 4 });
        for i in 0..n {
            net.add_peer(PeerId(i), RingBurst { next: PeerId((i + 1) % n), burst, seen: 0 });
        }
        for i in 0..n {
            net.open_pipe(PeerId(i), PeerId((i + 1) % n));
        }
        assert!(
            net.await_quiescence(Duration::from_millis(100), Duration::from_secs(30)),
            "cyclic backpressure must not wedge"
        );
        let peers = net.shutdown();
        let total: u32 = peers.values().map(|p| p.seen).sum();
        // Each of the n*burst tokens is delivered 21 times (TTL 20 + 1).
        assert_eq!(total, n as u32 * burst * 21);
    }

    /// A peer sending to itself with a full mailbox must not deadlock on
    /// its own bound: self-sends overflow instead of stalling.
    #[test]
    fn self_send_does_not_deadlock() {
        struct Echo {
            seen: u32,
        }
        impl Peer<Token> for Echo {
            fn on_message(&mut self, ctx: &mut Context<Token>, _: PeerId, msg: Token) {
                self.seen += 1;
                if msg.0 > 0 {
                    ctx.send(ctx.self_id(), Token(msg.0 - 1));
                }
            }
        }
        let mut net: ParallelNet<Token, Echo> = ParallelNet::with_config(small(1, 1));
        net.add_peer(PeerId(0), Echo { seen: 0 });
        net.open_pipe(PeerId(0), PeerId(0));
        net.inject(PeerId(9), PeerId(0), Token(5));
        assert!(net.await_quiescence(Duration::from_millis(30), Duration::from_secs(5)));
        let peers = net.shutdown();
        assert_eq!(peers[&PeerId(0)].seen, 6);
    }
}
