//! # codb-net
//!
//! The network substrate of the coDB reproduction: a substitute for the
//! JXTA middleware the paper builds on. It provides the JXTA facilities
//! coDB actually uses — peer identity, point-to-point *pipes*, message
//! envelopes, advertisement/discovery — over two interchangeable runtimes:
//!
//! * [`sim::SimNet`] — a **deterministic discrete-event simulator** with a
//!   per-pipe latency / bandwidth / loss model and a seeded RNG. All
//!   experiments run here: message counts, propagation paths and relative
//!   timings are functions of the protocol, and runs are reproducible.
//! * [`parallel::ParallelNet`] — a sharded threaded runtime (N worker
//!   threads multiplexing M nodes over bounded mailboxes with
//!   backpressure) proving the same state machines survive real asynchrony
//!   and scale with cores.
//!
//! Peers implement [`peer::Peer`] and interact with either runtime through
//! [`peer::Context`] commands only.

#![warn(missing_docs)]

pub mod builder;
pub mod discovery;
pub mod latency;
mod mailbox;
pub mod parallel;
pub mod peer;
pub mod pipe;
pub mod queue;
pub mod sim;
pub mod stats;
pub mod time;
mod worker;

pub use builder::{EdgeSource, Edges, SimBuilder};
pub use discovery::{AdKind, Advertisement, Board};
pub use latency::{GeoPoint, LatencyModel};
pub use parallel::{ParallelNet, RuntimeConfig};
pub use peer::{Command, Context, Payload, Peer, PeerId};
pub use pipe::PipeConfig;
pub use queue::CalendarQueue;
pub use sim::{SimConfig, SimNet, TraceEntry};
pub use stats::{NetStats, PipeStats};
pub use time::SimTime;

// Re-exported so harnesses attaching a flight recorder to a [`SimNet`]
// don't need a direct codb-trace dependency.
pub use codb_trace::{TraceEvent, Tracer};
