//! Pipes: point-to-point communication links between peers.
//!
//! JXTA pipes are the paper's communication primitive: "creation of
//! communication links between peers (called pipes); … sending messages
//! onto pipes". Our pipes carry a latency / bandwidth / loss model so the
//! simulator can stand in for networks ranging from a LAN to a flaky
//! wide-area overlay.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Transmission parameters of one pipe (applied per direction).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PipeConfig {
    /// Propagation delay added to every message.
    pub latency: SimTime,
    /// Serialization rate; `None` models infinite bandwidth.
    pub bandwidth_bytes_per_sec: Option<u64>,
    /// Independent per-message drop probability in `[0, 1)`.
    pub loss: f64,
}

impl PipeConfig {
    /// A fast, reliable LAN-like pipe: 1 ms latency, infinite bandwidth,
    /// no loss.
    pub fn lan() -> Self {
        PipeConfig { latency: SimTime::from_millis(1), bandwidth_bytes_per_sec: None, loss: 0.0 }
    }

    /// A WAN-like pipe: 40 ms latency, 10 MB/s, no loss.
    pub fn wan() -> Self {
        PipeConfig {
            latency: SimTime::from_millis(40),
            bandwidth_bytes_per_sec: Some(10_000_000),
            loss: 0.0,
        }
    }

    /// Builder: override latency.
    pub fn with_latency(mut self, latency: SimTime) -> Self {
        self.latency = latency;
        self
    }

    /// Builder: override loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Builder: override bandwidth.
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bandwidth_bytes_per_sec = Some(bytes_per_sec);
        self
    }

    /// Time to serialize `bytes` onto the wire under this config.
    pub fn transmission_time(&self, bytes: usize) -> SimTime {
        match self.bandwidth_bytes_per_sec {
            None => SimTime::ZERO,
            Some(bw) => {
                let nanos = (bytes as u128 * 1_000_000_000u128) / bw.max(1) as u128;
                SimTime(nanos as u64)
            }
        }
    }
}

impl Default for PipeConfig {
    fn default() -> Self {
        PipeConfig::lan()
    }
}

/// Runtime state of a pipe direction: when its transmitter becomes free
/// (for the bandwidth model).
#[derive(Clone, Copy, Debug, Default)]
pub struct PipeState {
    /// The pipe's transmitter is busy until this instant.
    pub busy_until: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_time_scales_with_size() {
        let p = PipeConfig::lan().with_bandwidth(1_000_000); // 1 MB/s
        assert_eq!(p.transmission_time(1_000_000), SimTime::from_secs(1));
        assert_eq!(p.transmission_time(0), SimTime::ZERO);
    }

    #[test]
    fn infinite_bandwidth_is_instant() {
        assert_eq!(PipeConfig::lan().transmission_time(1 << 30), SimTime::ZERO);
    }

    #[test]
    fn presets() {
        assert_eq!(PipeConfig::lan().latency, SimTime::from_millis(1));
        assert_eq!(PipeConfig::wan().latency, SimTime::from_millis(40));
        assert!(PipeConfig::wan().bandwidth_bytes_per_sec.is_some());
    }

    #[test]
    fn builders_compose() {
        let p = PipeConfig::lan()
            .with_latency(SimTime::from_millis(7))
            .with_loss(0.25)
            .with_bandwidth(42);
        assert_eq!(p.latency, SimTime::from_millis(7));
        assert_eq!(p.loss, 0.25);
        assert_eq!(p.bandwidth_bytes_per_sec, Some(42));
    }
}
