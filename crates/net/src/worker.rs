//! Shard workers: the execution engine behind [`crate::parallel::ParallelNet`].
//!
//! N worker threads multiplex M nodes. Each worker owns one *shard*: the
//! peer state machines assigned to it, a run queue of node ids with pending
//! work, and a timer wheel for those nodes' timers. Cross-shard interaction
//! goes through shared state only: the router (node id → mailbox), the pipe
//! table, the discovery board and the quiescence [`Gate`].
//!
//! ## Scheduling
//!
//! A node becomes *ready* when mail is pushed into its mailbox (the pusher
//! flips the node's `scheduled` flag and enqueues it on its shard's run
//! queue) or when a mailbox it stalled on frees a slot. The worker services
//! ready nodes in FIFO order, draining at most `quantum` messages per visit
//! so one busy node cannot monopolize its shard; due timers are fired
//! *between* node visits, which is the batched-drain fairness rule the
//! timer-under-load tests pin.
//!
//! ## Backpressure without blocked workers
//!
//! Workers never block on a full mailbox. When a node's `Send` hits a full
//! destination, the node *stalls*: its remaining commands stay parked in its
//! cell, it is descheduled, and it registers as a waiter on the destination
//! mailbox. A stalled node stops normal draining and defers its timers, so
//! pressure cascades to its own producers — but each scheduling visit
//! while stalled still pops exactly *one* message (its commands park
//! behind the stalled send, preserving order). That single pop is the
//! global progress guarantee: it frees a slot, wakes this node's own
//! producers, and keeps the wake chain alive, so a ring of nodes that have
//! all filled each other's mailboxes keeps moving one message per visit
//! instead of wedging. The one cycle a wake-up cannot break — a node
//! stalled on its *own* full mailbox — is avoided by letting self-sends
//! overflow the capacity bound instead of stalling.
//!
//! ## In-flight accounting
//!
//! The [`Gate`] counts every undelivered message, pending timer and parked
//! command exactly once. New work produced by a callback is counted
//! *before* the event that produced it is decremented, so the count never
//! dips to zero while causally-connected work exists; sends that fail
//! (closed mailbox, missing peer, no pipe) decrement at the failure site
//! and count `undeliverable` — the accounting leak the thread-per-peer
//! runtime had is structurally gone.

use crate::discovery::Board;
use crate::mailbox::{Mailbox, TryPush, Waiter};
use crate::peer::{Command, Context, Payload, Peer, PeerId};
use crate::time::SimTime;
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

fn relock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Quiescence gate
// ---------------------------------------------------------------------------

/// Counts in-flight work (mailbox messages + pending timers + parked
/// commands) and lets harness threads wait for quiescence on a condvar
/// instead of polling.
pub(crate) struct Gate {
    count: AtomicU64,
    /// Bumped whenever the count leaves zero; lets the settle window detect
    /// a 0 → busy → 0 blip it never observed directly.
    epoch: Mutex<u64>,
    zero_or_activity: Condvar,
}

impl Gate {
    pub(crate) fn new() -> Self {
        Gate { count: AtomicU64::new(0), epoch: Mutex::new(0), zero_or_activity: Condvar::new() }
    }

    pub(crate) fn load(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }

    pub(crate) fn inc(&self, n: u64) {
        if n == 0 {
            return;
        }
        if self.count.fetch_add(n, Ordering::SeqCst) == 0 {
            let mut epoch = relock(&self.epoch);
            *epoch += 1;
            self.zero_or_activity.notify_all();
        }
    }

    pub(crate) fn dec(&self, n: u64) {
        if n == 0 {
            return;
        }
        let prev = self.count.fetch_sub(n, Ordering::SeqCst);
        debug_assert!(prev >= n, "in-flight underflow: {prev} - {n}");
        if prev == n {
            drop(relock(&self.epoch));
            self.zero_or_activity.notify_all();
        }
    }

    /// Waits until the count has stayed at zero for `settle`, or `deadline`
    /// expires. Condvar-driven: woken on zero-crossings in either direction.
    pub(crate) fn await_quiescence(&self, settle: Duration, deadline: Duration) -> bool {
        let start = Instant::now();
        let mut epoch = relock(&self.epoch);
        loop {
            // Phase 1: wait for the count to reach zero.
            while self.load() > 0 {
                let Some(left) = deadline.checked_sub(start.elapsed()) else {
                    return false;
                };
                // The short cap is missed-wakeup insurance, not a poll: in
                // the common case the zero-crossing notification arrives.
                let wait = left.min(Duration::from_millis(100));
                epoch =
                    self.zero_or_activity.wait_timeout(epoch, wait).map(|(g, _)| g).unwrap_or_else(
                        |e| {
                            let (g, _) = e.into_inner();
                            g
                        },
                    );
            }
            // Phase 2: hold the settle window; any activity restarts phase 1.
            let epoch0 = *epoch;
            let settled_since = Instant::now();
            loop {
                if self.load() > 0 || *epoch != epoch0 {
                    break; // activity — back to phase 1
                }
                let Some(left) = settle.checked_sub(settled_since.elapsed()) else {
                    return true;
                };
                let Some(budget) = deadline.checked_sub(start.elapsed()) else {
                    return false;
                };
                epoch = self
                    .zero_or_activity
                    .wait_timeout(epoch, left.min(budget))
                    .map(|(g, _)| g)
                    .unwrap_or_else(|e| {
                        let (g, _) = e.into_inner();
                        g
                    });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

const WHEEL_SLOTS: usize = 256;
const TICK_NANOS: u64 = 1_000_000; // 1ms ticks

struct TimerEntry {
    at: SimTime,
    seq: u64,
    peer: PeerId,
    timer: u64,
}

/// Per-shard timer wheel: 1ms ticks over a 256-slot ring plus an overflow
/// list for timers further out than one revolution. Insert and cancel are
/// O(1) amortized; due timers fire in `(deadline, insertion)` order.
pub(crate) struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    overflow: Vec<TimerEntry>,
    /// Tick the ring cursor last advanced to.
    last_tick: u64,
    seq: u64,
    len: usize,
}

impl TimerWheel {
    pub(crate) fn new() -> Self {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            last_tick: 0,
            seq: 0,
            len: 0,
        }
    }

    fn tick_of(at: SimTime) -> u64 {
        at.as_nanos() / TICK_NANOS
    }

    pub(crate) fn insert(&mut self, at: SimTime, peer: PeerId, timer: u64) {
        self.seq += 1;
        self.len += 1;
        let entry = TimerEntry { at, seq: self.seq, peer, timer };
        let tick = Self::tick_of(at).max(self.last_tick);
        if tick - self.last_tick >= WHEEL_SLOTS as u64 {
            self.overflow.push(entry);
        } else {
            self.slots[(tick % WHEEL_SLOTS as u64) as usize].push(entry);
        }
    }

    /// Removes and returns all entries due at `now`, ordered by deadline.
    pub(crate) fn pop_due(&mut self, now: SimTime) -> Vec<(PeerId, u64)> {
        let now_tick = Self::tick_of(now);
        if now_tick < self.last_tick {
            return Vec::new();
        }
        let mut due: Vec<TimerEntry> = Vec::new();
        let span = now_tick - self.last_tick;
        let slots_to_visit: Box<dyn Iterator<Item = u64>> = if span >= WHEEL_SLOTS as u64 {
            // Cursor jumped a full revolution: sweep every slot once.
            Box::new(0..WHEEL_SLOTS as u64)
        } else {
            Box::new(self.last_tick..=now_tick)
        };
        for t in slots_to_visit {
            let slot = &mut self.slots[(t % WHEEL_SLOTS as u64) as usize];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].at <= now {
                    due.push(slot.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        self.last_tick = now_tick;
        // Pull overflow entries that now fall inside the ring window.
        let horizon = self.last_tick + WHEEL_SLOTS as u64;
        let mut i = 0;
        while i < self.overflow.len() {
            let tick = Self::tick_of(self.overflow[i].at).max(self.last_tick);
            if self.overflow[i].at <= now {
                due.push(self.overflow.swap_remove(i));
            } else if tick < horizon {
                let e = self.overflow.swap_remove(i);
                self.slots[(tick % WHEEL_SLOTS as u64) as usize].push(e);
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|e| (e.at, e.seq));
        self.len -= due.len();
        due.into_iter().map(|e| (e.peer, e.timer)).collect()
    }

    /// Earliest deadline across ring and overflow.
    pub(crate) fn next_deadline(&self) -> Option<SimTime> {
        self.slots.iter().flatten().chain(self.overflow.iter()).map(|e| e.at).min()
    }

    pub(crate) fn has_due(&self, now: SimTime) -> bool {
        self.next_deadline().is_some_and(|at| at <= now)
    }

    /// Drops every timer owned by `peer`; returns how many were removed.
    pub(crate) fn cancel_peer(&mut self, peer: PeerId) -> u64 {
        let before = self.len;
        for slot in &mut self.slots {
            slot.retain(|e| e.peer != peer);
        }
        self.overflow.retain(|e| e.peer != peer);
        self.len = self.slots.iter().map(Vec::len).sum::<usize>() + self.overflow.len();
        (before - self.len) as u64
    }
}

// ---------------------------------------------------------------------------
// Shard plumbing
// ---------------------------------------------------------------------------

/// Shared routing entry for one node: its mailbox, owning shard, and a
/// dedup flag so it sits in its shard's run queue at most once.
pub(crate) struct NodeMeta<M> {
    pub(crate) mailbox: Mailbox<M>,
    pub(crate) shard: usize,
    pub(crate) scheduled: AtomicBool,
}

struct ReadyState {
    queue: VecDeque<PeerId>,
    /// Set when ops were pushed, so a sleeping worker re-checks its queue.
    kick: bool,
    stopping: bool,
}

/// One shard's run queue + wake-up channel. Shared between the owning
/// worker and every thread that schedules nodes onto it.
pub(crate) struct ShardHandle {
    state: Mutex<ReadyState>,
    wake: Condvar,
}

impl ShardHandle {
    pub(crate) fn new() -> Self {
        ShardHandle {
            state: Mutex::new(ReadyState { queue: VecDeque::new(), kick: false, stopping: false }),
            wake: Condvar::new(),
        }
    }

    pub(crate) fn enqueue(&self, id: PeerId) {
        relock(&self.state).queue.push_back(id);
        self.wake.notify_all();
    }

    pub(crate) fn kick(&self) {
        relock(&self.state).kick = true;
        self.wake.notify_all();
    }

    pub(crate) fn stop(&self) {
        relock(&self.state).stopping = true;
        self.wake.notify_all();
    }

    fn stopping(&self) -> bool {
        relock(&self.state).stopping
    }

    fn take_ready(&self) -> Vec<PeerId> {
        let mut state = relock(&self.state);
        state.kick = false;
        state.queue.drain(..).collect()
    }

    fn wait(&self, timeout: Duration) {
        let state = relock(&self.state);
        if !state.queue.is_empty() || state.kick || state.stopping {
            return;
        }
        drop(self.wake.wait_timeout(state, timeout).unwrap_or_else(PoisonError::into_inner));
    }
}

/// Control-plane operations delivered to a shard's worker thread; node
/// state only ever lives on its owning worker.
pub(crate) enum ShardOp<M: Payload, P> {
    Add { id: PeerId, peer: P, meta: Arc<NodeMeta<M>> },
    Retire { id: PeerId, reply: std::sync::mpsc::SyncSender<Option<P>> },
}

/// Bounded-in-practice op queue (harness-driven: adds and retires only).
pub(crate) struct OpsQueue<M: Payload, P> {
    ops: Mutex<VecDeque<ShardOp<M, P>>>,
}

impl<M: Payload, P> OpsQueue<M, P> {
    pub(crate) fn new() -> Self {
        OpsQueue { ops: Mutex::new(VecDeque::new()) }
    }

    pub(crate) fn push(&self, op: ShardOp<M, P>) {
        relock(&self.ops).push_back(op);
    }

    fn drain(&self) -> Vec<ShardOp<M, P>> {
        relock(&self.ops).drain(..).collect()
    }
}

/// State shared by all shards and the harness handle.
pub(crate) struct Shared<M: Payload> {
    pub(crate) router: RwLock<HashMap<PeerId, Arc<NodeMeta<M>>>>,
    pub(crate) pipes: RwLock<HashSet<(PeerId, PeerId)>>,
    pub(crate) board: RwLock<Board>,
    pub(crate) gate: Gate,
    pub(crate) delivered: AtomicU64,
    pub(crate) undeliverable: AtomicU64,
    pub(crate) epoch: Instant,
    pub(crate) schedulers: Vec<Arc<ShardHandle>>,
    /// Max messages drained per node per scheduling visit.
    pub(crate) quantum: usize,
}

impl<M: Payload> Shared<M> {
    pub(crate) fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Marks a node runnable and enqueues it on its shard (once).
    pub(crate) fn schedule(&self, meta: &NodeMeta<M>, id: PeerId) {
        if !meta.scheduled.swap(true, Ordering::SeqCst) {
            self.schedulers[meta.shard].enqueue(id);
        }
    }

    /// Reschedules nodes that were stalled on a mailbox that freed a slot.
    pub(crate) fn wake_waiters(&self, waiters: Vec<Waiter>) {
        if waiters.is_empty() {
            return;
        }
        let router = self.router.read();
        for (_, id) in waiters {
            if let Some(meta) = router.get(&id) {
                self.schedule(meta, id);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The worker loop
// ---------------------------------------------------------------------------

/// A node's worker-local state: the peer machine, its routing entry, and
/// commands parked behind a stalled send.
struct Cell<M: Payload, P> {
    peer: P,
    meta: Arc<NodeMeta<M>>,
    pending: VecDeque<Command<M>>,
    stalled: bool,
}

/// How long a stalled node's due timer is deferred before re-checking.
const STALL_DEFER: SimTime = SimTime(TICK_NANOS);
/// Idle sleep cap when no timer bounds the wait.
const IDLE_WAIT: Duration = Duration::from_millis(100);

/// Body of one worker thread. Returns the final states of the nodes still
/// owned by this shard at shutdown.
pub(crate) fn run_worker<M: Payload, P: Peer<M>>(
    shard: usize,
    shared: Arc<Shared<M>>,
    ops: Arc<OpsQueue<M, P>>,
) -> Vec<(PeerId, P)> {
    let handle = Arc::clone(&shared.schedulers[shard]);
    let mut cells: HashMap<PeerId, Cell<M, P>> = HashMap::new();
    let mut wheel = TimerWheel::new();

    loop {
        for op in ops.drain() {
            apply_op(shard, &shared, &mut cells, &mut wheel, op);
        }
        if handle.stopping() {
            break;
        }
        fire_due_timers(shard, &shared, &mut cells, &mut wheel);
        let batch = handle.take_ready();
        if batch.is_empty() {
            let timeout = wheel
                .next_deadline()
                .map(|at| {
                    Duration::from_nanos(at.saturating_sub(shared.now()).as_nanos())
                        .max(Duration::from_micros(100))
                })
                .unwrap_or(IDLE_WAIT);
            handle.wait(timeout.min(IDLE_WAIT));
            continue;
        }
        for id in batch {
            // Fairness rule: timers that came due never wait behind another
            // node's drain quantum.
            if wheel.has_due(shared.now()) {
                fire_due_timers(shard, &shared, &mut cells, &mut wheel);
            }
            service(shard, &shared, &mut cells, &mut wheel, id);
        }
    }

    // Drain any control ops that raced the stop flag so late retires get
    // answered and late adds are not lost from the shutdown result.
    for op in ops.drain() {
        match op {
            ShardOp::Add { id, peer, .. } => {
                cells.insert(
                    id,
                    Cell { peer, meta: dead_meta(shard), pending: VecDeque::new(), stalled: false },
                );
            }
            ShardOp::Retire { id, reply } => {
                let _ = reply.send(retire(&shared, &mut cells, &mut wheel, id));
            }
        }
    }

    // Close mailboxes so harness threads blocked in `inject` unblock, and
    // settle the gate for any mail left undrained (abrupt shutdown).
    let mut out = Vec::new();
    for (id, cell) in cells {
        let (drained, waiters) = cell.meta.mailbox.close();
        shared.gate.dec(drained.len() as u64);
        shared.undeliverable.fetch_add(drained.len() as u64, Ordering::SeqCst);
        shared.wake_waiters(waiters);
        for cmd in &cell.pending {
            if matches!(cmd, Command::Send { .. } | Command::SetTimer { .. }) {
                shared.gate.dec(1);
            }
        }
        out.push((id, cell.peer));
    }
    shared.gate.dec(wheel.cancel_peer_all());
    out
}

impl TimerWheel {
    /// Drops every remaining timer (shutdown path).
    fn cancel_peer_all(&mut self) -> u64 {
        let n = self.len as u64;
        for slot in &mut self.slots {
            slot.clear();
        }
        self.overflow.clear();
        self.len = 0;
        n
    }
}

/// Placeholder meta for a cell created after the stop flag (its mailbox was
/// never routable; shutdown only needs the peer state back).
fn dead_meta<M>(shard: usize) -> Arc<NodeMeta<M>> {
    Arc::new(NodeMeta { mailbox: Mailbox::new(1), shard, scheduled: AtomicBool::new(false) })
}

fn apply_op<M: Payload, P: Peer<M>>(
    shard: usize,
    shared: &Arc<Shared<M>>,
    cells: &mut HashMap<PeerId, Cell<M, P>>,
    wheel: &mut TimerWheel,
    op: ShardOp<M, P>,
) {
    match op {
        ShardOp::Add { id, mut peer, meta } => {
            let ads = shared.board.read().snapshot().to_vec();
            let mut ctx = Context::new(id, shared.now(), &ads);
            peer.on_start(&mut ctx);
            let cmds = ctx.take_commands();
            shared.gate.inc(count_work(&cmds));
            let mut cell = Cell { peer, meta, pending: cmds.into(), stalled: false };
            flush(shard, shared, wheel, id, &mut cell);
            cells.insert(id, cell);
            // Mail may have arrived before the cell existed; service now —
            // the ready-queue entry for it (if any) was consumed by a visit
            // that found no cell and left the scheduled flag set.
            service(shard, shared, cells, wheel, id);
        }
        ShardOp::Retire { id, reply } => {
            let _ = reply.send(retire(shared, cells, wheel, id));
        }
    }
}

/// Removes a node from this shard, settling every in-flight unit it owned:
/// queued mail and parked commands become `undeliverable`, timers cancel.
fn retire<M: Payload, P>(
    shared: &Arc<Shared<M>>,
    cells: &mut HashMap<PeerId, Cell<M, P>>,
    wheel: &mut TimerWheel,
    id: PeerId,
) -> Option<P> {
    let cell = cells.remove(&id)?;
    shared.gate.dec(wheel.cancel_peer(id));
    for cmd in &cell.pending {
        match cmd {
            Command::Send { .. } => {
                shared.gate.dec(1);
                shared.undeliverable.fetch_add(1, Ordering::SeqCst);
            }
            Command::SetTimer { .. } => shared.gate.dec(1),
            _ => {}
        }
    }
    let (drained, waiters) = cell.meta.mailbox.close();
    shared.gate.dec(drained.len() as u64);
    shared.undeliverable.fetch_add(drained.len() as u64, Ordering::SeqCst);
    shared.wake_waiters(waiters);
    Some(cell.peer)
}

/// Sends + timers in a command batch — the units the gate counts.
fn count_work<M>(cmds: &[Command<M>]) -> u64 {
    cmds.iter().filter(|c| matches!(c, Command::Send { .. } | Command::SetTimer { .. })).count()
        as u64
}

fn fire_due_timers<M: Payload, P: Peer<M>>(
    shard: usize,
    shared: &Arc<Shared<M>>,
    cells: &mut HashMap<PeerId, Cell<M, P>>,
    wheel: &mut TimerWheel,
) {
    let now = shared.now();
    for (id, timer) in wheel.pop_due(now) {
        let Some(cell) = cells.get_mut(&id) else {
            // Owner retired between insert and fire (cancel races are
            // handled at retire; this is belt-and-braces).
            shared.gate.dec(1);
            continue;
        };
        if cell.stalled {
            // A stalled node cannot run callbacks ahead of its parked
            // commands; re-check shortly. The gate unit stays held.
            wheel.insert(now + STALL_DEFER, id, timer);
            continue;
        }
        let ads = shared.board.read().snapshot().to_vec();
        let mut ctx = Context::new(id, shared.now(), &ads);
        cell.peer.on_timer(&mut ctx, timer);
        let cmds = ctx.take_commands();
        shared.gate.inc(count_work(&cmds));
        cell.pending.extend(cmds);
        shared.gate.dec(1); // the fired timer, after counting its output
        flush(shard, shared, wheel, id, cell);
    }
}

/// One scheduling visit: flush parked commands, then drain up to `quantum`
/// messages, then reschedule if mail remains.
fn service<M: Payload, P: Peer<M>>(
    shard: usize,
    shared: &Arc<Shared<M>>,
    cells: &mut HashMap<PeerId, Cell<M, P>>,
    wheel: &mut TimerWheel,
    id: PeerId,
) {
    let Some(cell) = cells.get_mut(&id) else {
        return;
    };
    cell.meta.scheduled.store(false, Ordering::SeqCst);
    if !flush(shard, shared, wheel, id, cell) {
        // Still stalled. Progress rule: drain exactly ONE message anyway
        // (its commands park behind the stalled send, order preserved).
        // The pop is what breaks all-stalled cycles — it frees a slot,
        // wakes this node's own producers, and keeps the scheduling chain
        // alive; without it, a ring of full mailboxes wedges permanently.
        let (item, waiters) = cell.meta.mailbox.pop();
        shared.wake_waiters(waiters);
        if let Some((from, msg)) = item {
            let ads = shared.board.read().snapshot().to_vec();
            shared.delivered.fetch_add(1, Ordering::SeqCst);
            let mut ctx = Context::new(id, shared.now(), &ads);
            cell.peer.on_message(&mut ctx, from, msg);
            let cmds = ctx.take_commands();
            shared.gate.inc(count_work(&cmds));
            cell.pending.extend(cmds);
            shared.gate.dec(1);
            if !flush(shard, shared, wheel, id, cell) {
                return; // the waiter registration will reschedule us
            }
        } else {
            return;
        }
    }
    let ads = shared.board.read().snapshot().to_vec();
    for _ in 0..shared.quantum.max(1) {
        let (item, waiters) = cell.meta.mailbox.pop();
        shared.wake_waiters(waiters);
        let Some((from, msg)) = item else {
            return;
        };
        shared.delivered.fetch_add(1, Ordering::SeqCst);
        let mut ctx = Context::new(id, shared.now(), &ads);
        cell.peer.on_message(&mut ctx, from, msg);
        let cmds = ctx.take_commands();
        shared.gate.inc(count_work(&cmds));
        cell.pending.extend(cmds);
        shared.gate.dec(1); // the consumed message, after counting its output
        if !flush(shard, shared, wheel, id, cell) {
            return;
        }
    }
    // Quantum exhausted with mail (possibly) remaining: go around again so
    // shard-mates get their turn first.
    if cell.meta.mailbox.len() > 0 {
        shared.schedule(&cell.meta, id);
    }
}

/// Applies a cell's parked commands until empty (returns `true`) or a send
/// stalls on a full mailbox (returns `false`; the command stays parked and
/// the node is registered as a waiter on the destination).
fn flush<M: Payload, P>(
    shard: usize,
    shared: &Arc<Shared<M>>,
    wheel: &mut TimerWheel,
    id: PeerId,
    cell: &mut Cell<M, P>,
) -> bool {
    while let Some(cmd) = cell.pending.pop_front() {
        match cmd {
            Command::Send { to, msg } => {
                if !shared.pipes.read().contains(&(id, to)) {
                    shared.gate.dec(1);
                    shared.undeliverable.fetch_add(1, Ordering::SeqCst);
                    continue;
                }
                let meta = shared.router.read().get(&to).cloned();
                let Some(meta) = meta else {
                    shared.gate.dec(1);
                    shared.undeliverable.fetch_add(1, Ordering::SeqCst);
                    continue;
                };
                match meta.mailbox.try_push(id, msg, (shard, id), to == id) {
                    TryPush::Ok => shared.schedule(&meta, to),
                    TryPush::Full(msg) => {
                        cell.pending.push_front(Command::Send { to, msg });
                        cell.stalled = true;
                        return false;
                    }
                    TryPush::Closed(_) => {
                        shared.gate.dec(1);
                        shared.undeliverable.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            Command::SetTimer { delay, timer } => {
                wheel.insert(shared.now() + delay, id, timer);
            }
            Command::OpenPipe { with, .. } => {
                let mut pipes = shared.pipes.write();
                pipes.insert((id, with));
                pipes.insert((with, id));
            }
            Command::ClosePipe { with } => {
                let mut pipes = shared.pipes.write();
                pipes.remove(&(id, with));
                pipes.remove(&(with, id));
            }
            Command::Advertise(ad) => shared.board.write().publish(ad),
        }
    }
    cell.stalled = false;
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_counts_and_settles() {
        let gate = Gate::new();
        gate.inc(2);
        assert_eq!(gate.load(), 2);
        assert!(!gate.await_quiescence(Duration::from_millis(1), Duration::from_millis(20)));
        gate.dec(2);
        assert!(gate.await_quiescence(Duration::from_millis(1), Duration::from_secs(1)));
    }

    #[test]
    fn gate_wakes_blocked_waiter() {
        let gate = Arc::new(Gate::new());
        gate.inc(1);
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || {
            g2.await_quiescence(Duration::from_millis(5), Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(20));
        gate.dec(1);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wheel_fires_in_deadline_order() {
        let mut wheel = TimerWheel::new();
        wheel.insert(SimTime::from_millis(5), PeerId(1), 10);
        wheel.insert(SimTime::from_millis(2), PeerId(2), 20);
        wheel.insert(SimTime::from_millis(900), PeerId(3), 30); // overflow
        assert_eq!(wheel.next_deadline(), Some(SimTime::from_millis(2)));
        assert!(!wheel.has_due(SimTime::from_millis(1)));
        assert_eq!(wheel.pop_due(SimTime::from_millis(6)), vec![(PeerId(2), 20), (PeerId(1), 10)]);
        assert!(wheel.pop_due(SimTime::from_millis(100)).is_empty());
        // The overflow entry fires once its tick comes around.
        assert_eq!(wheel.pop_due(SimTime::from_millis(901)), vec![(PeerId(3), 30)]);
        assert_eq!(wheel.next_deadline(), None);
    }

    #[test]
    fn wheel_same_tick_respects_sub_tick_deadline() {
        let mut wheel = TimerWheel::new();
        wheel.insert(SimTime(5_700_000), PeerId(1), 1); // 5.7ms
        assert!(wheel.pop_due(SimTime(5_200_000)).is_empty(), "must not fire 0.5ms early");
        assert_eq!(wheel.pop_due(SimTime(5_800_000)), vec![(PeerId(1), 1)]);
    }

    #[test]
    fn wheel_cancel_peer_removes_everywhere() {
        let mut wheel = TimerWheel::new();
        wheel.insert(SimTime::from_millis(1), PeerId(1), 1);
        wheel.insert(SimTime::from_millis(2), PeerId(2), 2);
        wheel.insert(SimTime::from_secs(5), PeerId(1), 3); // overflow
        assert_eq!(wheel.cancel_peer(PeerId(1)), 2);
        assert_eq!(wheel.pop_due(SimTime::from_secs(10)), vec![(PeerId(2), 2)]);
    }

    #[test]
    fn wheel_full_revolution_sweep() {
        let mut wheel = TimerWheel::new();
        wheel.insert(SimTime::from_millis(3), PeerId(1), 1);
        wheel.insert(SimTime::from_millis(400), PeerId(2), 2); // overflow band
                                                               // Jump far past a full revolution in one step.
        let due = wheel.pop_due(SimTime::from_secs(2));
        assert_eq!(due, vec![(PeerId(1), 1), (PeerId(2), 2)]);
    }
}
