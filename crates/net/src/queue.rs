//! Time-bucketed event queues for the simulator hot path.
//!
//! A discrete-event network simulation at 10k peers schedules millions
//! of events, almost all of them a few microseconds-to-milliseconds
//! ahead of the clock. A single global `BinaryHeap` pays `O(log n)` per
//! operation on the *total* number of pending events; a calendar queue
//! pays `O(log b)` on the handful of events sharing one small time
//! bucket, with an `O(1)` bucket lookup in front. [`CalendarQueue`] is
//! that structure: a fixed ring of fine-grained buckets covering a
//! sliding window from `now`, with a heap fallback for far-future
//! events (long timers) beyond the window.
//!
//! Ordering contract (shared with the old heap, pinned by the golden
//! trace test and the differential test below): events pop in ascending
//! `(at, seq)` order, where `seq` is the caller-supplied global
//! insertion sequence that breaks same-instant ties deterministically.
//! [`HeapQueue`] keeps the original `BinaryHeap` semantics as the
//! reference implementation the calendar queue is tested against.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Bucket width as a power of two: `2^18` ns ≈ 262 µs, comfortably
/// finer than typical pipe latencies (1 ms LAN, 40 ms WAN).
const BUCKET_SHIFT: u32 = 18;
/// Ring size: 512 buckets × 262 µs ≈ a 134 ms sliding window. Anything
/// scheduled beyond it (e.g. multi-second retry timers) overflows to
/// the fallback heap.
const NUM_BUCKETS: usize = 512;

/// A pending event: scheduled instant, insertion sequence, payload.
#[derive(Debug)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

// Reversed ordering so `BinaryHeap` (a max-heap) pops the earliest
// `(at, seq)` first — same trick as the original event heap.
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

/// The reference event queue: a plain binary heap ordered by
/// `(at, seq)`. This is the pre-restructure implementation, kept so the
/// calendar queue has an executable specification to diff against.
#[derive(Debug)]
pub struct HeapQueue<T> {
    heap: BinaryHeap<Entry<T>>,
}

impl<T> Default for HeapQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HeapQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapQueue { heap: BinaryHeap::new() }
    }

    /// Schedules `item` at `(at, seq)`.
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        self.heap.push(Entry { at, seq, item });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.heap.pop().map(|e| (e.at, e.seq, e.item))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Calendar queue: a 512-bucket ring over a ~134 ms sliding window with
/// a heap fallback for far-future events.
///
/// Each bucket is a tiny `(at, seq)`-ordered heap of the events landing
/// in one 262 µs slice of simulated time. `pop` walks the ring forward
/// from the current window position — buckets between the last popped
/// event and the next are empty and each costs one counter check — and
/// when the in-window population drains it jumps the window straight to
/// the earliest overflow event, migrating the overflow prefix that now
/// fits into buckets.
///
/// Invariant: callers only push events at or after the most recently
/// popped time (the simulator never schedules into the past), so the
/// window start never needs to move backwards.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// Ring of buckets; bucket `i` covers absolute bucket index
    /// `window_bucket + k` where `(window_bucket + k) % NUM_BUCKETS == i`.
    buckets: Vec<BinaryHeap<Entry<T>>>,
    /// Absolute index (`at >> BUCKET_SHIFT`) of the bucket the window
    /// cursor currently points at.
    window_bucket: u64,
    /// Events currently stored in the ring.
    in_buckets: usize,
    /// Far-future events beyond the ring's window.
    overflow: BinaryHeap<Entry<T>>,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue with its window starting at time zero.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..NUM_BUCKETS).map(|_| BinaryHeap::new()).collect(),
            window_bucket: 0,
            in_buckets: 0,
            overflow: BinaryHeap::new(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.in_buckets + self.overflow.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn bucket_of(at: SimTime) -> u64 {
        at.as_nanos() >> BUCKET_SHIFT
    }

    /// Schedules `item` at `(at, seq)`.
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        // Defensive clamp: a push nominally before the window (can't
        // happen — the simulator never schedules into the past) still
        // keeps correct order by landing in the cursor bucket.
        let bucket = Self::bucket_of(at).max(self.window_bucket);
        if bucket >= self.window_bucket + NUM_BUCKETS as u64 {
            self.overflow.push(Entry { at, seq, item });
        } else {
            self.buckets[(bucket % NUM_BUCKETS as u64) as usize].push(Entry { at, seq, item });
            self.in_buckets += 1;
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.in_buckets == 0 {
            // Window drained: jump straight to the earliest far-future
            // event and pull in everything that now fits the window.
            self.advance_to_overflow();
        }
        if self.in_buckets == 0 {
            return None;
        }
        // Walk the ring forward to the first non-empty bucket. Bounded
        // by NUM_BUCKETS because in_buckets > 0 guarantees a hit.
        loop {
            let slot = (self.window_bucket % NUM_BUCKETS as u64) as usize;
            if let Some(e) = self.buckets[slot].pop() {
                self.in_buckets -= 1;
                return Some((e.at, e.seq, e.item));
            }
            self.window_bucket += 1;
            // The slot vacated at the window's tail may now admit
            // overflow events that previously missed the window.
            self.refill_slot_from_overflow();
        }
    }

    /// Removes the earliest event only if it is scheduled at or before
    /// `deadline`; leaves the queue untouched otherwise. This is the
    /// `run_until` primitive — it avoids a separate peek walk.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, u64, T)> {
        match self.pop() {
            Some((at, seq, item)) if at <= deadline => Some((at, seq, item)),
            Some((at, seq, item)) => {
                self.push(at, seq, item);
                None
            }
            None => None,
        }
    }

    /// Jumps the window to the earliest overflow event and migrates the
    /// overflow prefix that fits into the new window. Only called when
    /// the ring is empty, so the jump skips nothing.
    fn advance_to_overflow(&mut self) {
        let Some(min) = self.overflow.peek() else { return };
        self.window_bucket = Self::bucket_of(min.at);
        let window_end = self.window_bucket + NUM_BUCKETS as u64;
        while let Some(e) = self.overflow.peek() {
            if Self::bucket_of(e.at) >= window_end {
                break;
            }
            let e = self.overflow.pop().unwrap();
            let slot = (Self::bucket_of(e.at) % NUM_BUCKETS as u64) as usize;
            self.buckets[slot].push(e);
            self.in_buckets += 1;
        }
    }

    /// After the cursor steps past a bucket, one more absolute bucket
    /// index enters the window at the tail; migrate any overflow events
    /// that land exactly there.
    fn refill_slot_from_overflow(&mut self) {
        let tail = self.window_bucket + NUM_BUCKETS as u64 - 1;
        while let Some(e) = self.overflow.peek() {
            if Self::bucket_of(e.at) > tail {
                break;
            }
            let e = self.overflow.pop().unwrap();
            let slot = (Self::bucket_of(e.at) % NUM_BUCKETS as u64) as usize;
            self.buckets[slot].push(e);
            self.in_buckets += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(500), 2, "b");
        q.push(SimTime(500), 1, "a");
        q.push(SimTime(10), 3, "first");
        q.push(SimTime::from_secs(30), 0, "far");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((SimTime(10), 3, "first")));
        assert_eq!(q.pop(), Some((SimTime(500), 1, "a")));
        assert_eq!(q.pop(), Some((SimTime(500), 2, "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(30), 0, "far")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_millis(5), 0, ());
        assert_eq!(q.pop_before(SimTime::from_millis(4)), None);
        assert_eq!(q.len(), 1, "event must be retained after a refused pop");
        assert_eq!(q.pop_before(SimTime::from_millis(5)), Some((SimTime::from_millis(5), 0, ())));
        assert_eq!(q.pop_before(SimTime::from_secs(1)), None);
    }

    #[test]
    fn interleaved_push_pop_across_window_jumps() {
        let mut q = CalendarQueue::new();
        // Far-future timer first, then near events pushed after pops —
        // exercises advance_to_overflow and tail refill together.
        q.push(SimTime::from_secs(2), 0, 0u64);
        q.push(SimTime(100), 1, 1);
        let (at, _, v) = q.pop().unwrap();
        assert_eq!((at, v), (SimTime(100), 1));
        // Push something between now and the far timer.
        q.push(SimTime::from_millis(200), 2, 2);
        assert_eq!(q.pop().unwrap().2, 2);
        assert_eq!(q.pop().unwrap().2, 0);
        assert!(q.pop().is_none());
    }

    /// The executable spec: random schedules through both queues must
    /// produce identical pop sequences, including far-future overflow
    /// and pops interleaved with pushes (time never regressing).
    #[test]
    fn differential_against_heap_reference() {
        let mut rng = SmallRng::seed_from_u64(0xD1FF);
        for round in 0..50u64 {
            let mut cal = CalendarQueue::new();
            let mut heap = HeapQueue::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for _ in 0..400 {
                if rng.gen_bool(0.6) || cal.is_empty() {
                    // Mostly near-future, occasionally far beyond the
                    // 134 ms window.
                    let horizon = if rng.gen_bool(0.05) { 10_000_000_000 } else { 50_000_000 };
                    let at = SimTime(now + rng.gen_range(0..horizon));
                    cal.push(at, seq, seq);
                    heap.push(at, seq, seq);
                    seq += 1;
                } else {
                    let a = cal.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "divergence in round {round}");
                    now = a.unwrap().0.as_nanos();
                }
            }
            loop {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "drain divergence in round {round}");
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
