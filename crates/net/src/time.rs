//! Simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) of simulated time, in nanoseconds since simulation
/// start. The discrete-event simulator advances this clock; nothing in the
/// system reads wall-clock time, which is what makes runs reproducible.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanosecond count.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Truncated milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (for reports).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}us", self.0 / 1_000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_millis(1);
        assert_eq!(a + b, SimTime::from_millis(4));
        assert_eq!(a - b, SimTime::from_millis(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_millis(), 4);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_micros(7).to_string(), "7us");
    }
}
