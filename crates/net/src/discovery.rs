//! Advertisement & discovery — the JXTA facility coDB uses so a node can
//! show "which other nodes (not acquaintances) it has discovered".
//!
//! Peers publish [`Advertisement`]s on a network-wide board (the analogue
//! of JXTA's rendezvous/advertisement caches) and read a snapshot of the
//! board from their callback [`crate::peer::Context`].

use crate::peer::PeerId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What kind of resource an advertisement describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AdKind {
    /// A peer announcing its presence.
    Peer,
    /// A named service offered by a peer (e.g. coDB's super-peer service).
    Service,
}

/// One advertisement.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Advertisement {
    /// Publishing peer.
    pub peer: PeerId,
    /// Resource kind.
    pub kind: AdKind,
    /// Resource name (e.g. `"codb-node"`, `"super-peer"`).
    pub name: String,
}

impl Advertisement {
    /// A plain peer advertisement.
    pub fn peer(peer: PeerId, name: impl Into<String>) -> Self {
        Advertisement { peer, kind: AdKind::Peer, name: name.into() }
    }

    /// A service advertisement.
    pub fn service(peer: PeerId, name: impl Into<String>) -> Self {
        Advertisement { peer, kind: AdKind::Service, name: name.into() }
    }
}

/// The network-wide advertisement board. One entry per (peer, kind, name);
/// re-advertising is idempotent. Entries of a peer vanish when it leaves.
#[derive(Clone, Debug, Default)]
pub struct Board {
    ads: BTreeMap<(PeerId, AdKind, String), Advertisement>,
    /// Flat snapshot handed to contexts; rebuilt on change.
    snapshot: Vec<Advertisement>,
}

impl Board {
    /// Empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes an advertisement (idempotent).
    pub fn publish(&mut self, ad: Advertisement) {
        self.ads.insert((ad.peer, ad.kind, ad.name.clone()), ad);
        self.rebuild();
    }

    /// Removes all advertisements of `peer` (peer left the network).
    pub fn retract_peer(&mut self, peer: PeerId) {
        self.ads.retain(|(p, _, _), _| *p != peer);
        self.rebuild();
    }

    /// Current snapshot, ordered deterministically.
    pub fn snapshot(&self) -> &[Advertisement] {
        &self.snapshot
    }

    /// Advertisements matching a kind and name.
    pub fn find(&self, kind: AdKind, name: &str) -> Vec<&Advertisement> {
        self.snapshot.iter().filter(|a| a.kind == kind && a.name == name).collect()
    }

    fn rebuild(&mut self) {
        self.snapshot = self.ads.values().cloned().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_is_idempotent() {
        let mut b = Board::new();
        b.publish(Advertisement::peer(PeerId(1), "codb-node"));
        b.publish(Advertisement::peer(PeerId(1), "codb-node"));
        assert_eq!(b.snapshot().len(), 1);
    }

    #[test]
    fn retract_removes_all_of_peer() {
        let mut b = Board::new();
        b.publish(Advertisement::peer(PeerId(1), "codb-node"));
        b.publish(Advertisement::service(PeerId(1), "super-peer"));
        b.publish(Advertisement::peer(PeerId(2), "codb-node"));
        b.retract_peer(PeerId(1));
        assert_eq!(b.snapshot().len(), 1);
        assert_eq!(b.snapshot()[0].peer, PeerId(2));
    }

    #[test]
    fn find_filters_kind_and_name() {
        let mut b = Board::new();
        b.publish(Advertisement::peer(PeerId(1), "codb-node"));
        b.publish(Advertisement::service(PeerId(2), "super-peer"));
        assert_eq!(b.find(AdKind::Service, "super-peer").len(), 1);
        assert_eq!(b.find(AdKind::Peer, "super-peer").len(), 0);
        assert_eq!(b.find(AdKind::Peer, "codb-node")[0].peer, PeerId(1));
    }
}
