//! Bounded per-node mailboxes with backpressure.
//!
//! Each node owned by the sharded runtime ([`crate::parallel::ParallelNet`])
//! receives its mail through one [`Mailbox`]: a capacity-bounded FIFO that
//! never drops and never grows past its configured depth. A full mailbox
//! pushes back on the producer instead:
//!
//! * Harness threads ([`Mailbox::push_blocking`]) block on a condvar until a
//!   slot frees up or the mailbox closes.
//! * Worker threads never block. [`Mailbox::try_push`] either enqueues, or
//!   registers the sending *node* as a waiter and reports `Full` so the
//!   worker can stall that node (park its unapplied commands) and move on to
//!   other runnable nodes. When a slot frees, the waiters are returned to
//!   the popping worker, which reschedules them on their shards.
//!
//! The mailbox also tracks a depth high-water mark so tests and experiments
//! can assert the bound actually held.

use crate::peer::PeerId;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// A node waiting for mailbox space: `(shard index, node id)`. Stored here
/// so the worker that frees a slot knows whom to reschedule.
pub(crate) type Waiter = (usize, PeerId);

/// Outcome of a non-blocking push from a worker thread.
pub(crate) enum TryPush<M> {
    /// Enqueued.
    Ok,
    /// Mailbox at capacity; the waiter was registered and the message is
    /// handed back so the sender can stall on it.
    Full(M),
    /// Mailbox closed (node retired); the message is handed back so the
    /// sender can count it undeliverable.
    Closed(M),
}

struct State<M> {
    queue: VecDeque<(PeerId, M)>,
    /// Nodes stalled on this mailbox being full, to wake on pop.
    waiters: Vec<Waiter>,
    closed: bool,
    /// Depth high-water mark.
    peak: usize,
}

/// A bounded, closeable FIFO of `(from, msg)` pairs.
pub(crate) struct Mailbox<M> {
    state: Mutex<State<M>>,
    not_full: Condvar,
    capacity: usize,
}

impl<M> Mailbox<M> {
    pub(crate) fn new(capacity: usize) -> Self {
        Mailbox {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                waiters: Vec::new(),
                closed: false,
                peak: 0,
            }),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<M>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn enqueue(state: &mut State<M>, from: PeerId, msg: M) {
        state.queue.push_back((from, msg));
        state.peak = state.peak.max(state.queue.len());
    }

    /// Blocking push for harness threads (`inject`). Returns the message if
    /// the mailbox closed before a slot freed up.
    pub(crate) fn push_blocking(&self, from: PeerId, msg: M) -> Result<(), M> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(msg);
            }
            if state.queue.len() < self.capacity {
                Self::enqueue(&mut state, from, msg);
                return Ok(());
            }
            state = self.not_full.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking push for worker threads. `allow_overflow` bypasses the
    /// capacity check — used only for self-sends, where stalling the sender
    /// would deadlock it against its own mailbox.
    pub(crate) fn try_push(
        &self,
        from: PeerId,
        msg: M,
        waiter: Waiter,
        allow_overflow: bool,
    ) -> TryPush<M> {
        let mut state = self.lock();
        if state.closed {
            return TryPush::Closed(msg);
        }
        if state.queue.len() < self.capacity || allow_overflow {
            Self::enqueue(&mut state, from, msg);
            return TryPush::Ok;
        }
        if !state.waiters.contains(&waiter) {
            state.waiters.push(waiter);
        }
        TryPush::Full(msg)
    }

    /// Pops the oldest message. Also returns the nodes to reschedule now
    /// that a slot is free (empty for most pops).
    pub(crate) fn pop(&self) -> (Option<(PeerId, M)>, Vec<Waiter>) {
        let mut state = self.lock();
        let item = state.queue.pop_front();
        let mut waiters = Vec::new();
        if item.is_some() && state.queue.len() < self.capacity {
            if !state.waiters.is_empty() {
                waiters = std::mem::take(&mut state.waiters);
            }
            self.not_full.notify_all();
        }
        (item, waiters)
    }

    /// Closes the mailbox: wakes blocked producers, drains undelivered mail
    /// and pending waiters for the caller to account for.
    pub(crate) fn close(&self) -> (Vec<(PeerId, M)>, Vec<Waiter>) {
        let mut state = self.lock();
        state.closed = true;
        let drained = std::mem::take(&mut state.queue).into_iter().collect();
        let waiters = std::mem::take(&mut state.waiters);
        self.not_full.notify_all();
        (drained, waiters)
    }

    pub(crate) fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Depth high-water mark since creation.
    pub(crate) fn peak(&self) -> usize {
        self.lock().peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn bounded_and_fifo() {
        let mb: Mailbox<u32> = Mailbox::new(2);
        assert!(matches!(mb.try_push(PeerId(9), 1, (0, PeerId(1)), false), TryPush::Ok));
        assert!(matches!(mb.try_push(PeerId(9), 2, (0, PeerId(1)), false), TryPush::Ok));
        // Full: message handed back, waiter registered.
        assert!(matches!(mb.try_push(PeerId(9), 3, (0, PeerId(1)), false), TryPush::Full(3)));
        assert_eq!(mb.peak(), 2);
        let (item, waiters) = mb.pop();
        assert_eq!(item, Some((PeerId(9), 1)));
        assert_eq!(waiters, vec![(0, PeerId(1))]);
        let (item, waiters) = mb.pop();
        assert_eq!(item, Some((PeerId(9), 2)));
        assert!(waiters.is_empty());
        assert_eq!(mb.len(), 0);
    }

    #[test]
    fn overflow_bypasses_capacity_for_self_sends() {
        let mb: Mailbox<u32> = Mailbox::new(1);
        assert!(matches!(mb.try_push(PeerId(1), 1, (0, PeerId(1)), false), TryPush::Ok));
        assert!(matches!(mb.try_push(PeerId(1), 2, (0, PeerId(1)), true), TryPush::Ok));
        assert_eq!(mb.len(), 2);
        assert_eq!(mb.peak(), 2);
    }

    #[test]
    fn close_drains_and_rejects() {
        let mb: Mailbox<u32> = Mailbox::new(4);
        assert!(matches!(mb.try_push(PeerId(5), 7, (0, PeerId(2)), false), TryPush::Ok));
        let (drained, _) = mb.close();
        assert_eq!(drained, vec![(PeerId(5), 7)]);
        assert!(matches!(mb.try_push(PeerId(5), 8, (0, PeerId(2)), false), TryPush::Closed(8)));
        assert!(mb.push_blocking(PeerId(5), 9).is_err());
    }

    #[test]
    fn push_blocking_waits_for_space() {
        let mb: Arc<Mailbox<u32>> = Arc::new(Mailbox::new(1));
        mb.push_blocking(PeerId(0), 1).unwrap();
        let mb2 = Arc::clone(&mb);
        let producer = std::thread::spawn(move || mb2.push_blocking(PeerId(0), 2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(mb.len(), 1, "producer must be blocked while full");
        let (item, _) = mb.pop();
        assert_eq!(item, Some((PeerId(0), 1)));
        producer.join().unwrap().unwrap();
        assert_eq!(mb.pop().0, Some((PeerId(0), 2)));
        assert_eq!(mb.peak(), 1);
    }
}
