//! Link latency models for network construction.
//!
//! A [`LatencyModel`] assigns a one-way propagation latency to each
//! *unordered* peer pair; [`crate::builder::SimBuilder`] bakes the
//! assignment into each pipe's [`crate::PipeConfig`] at build time, so
//! the simulator hot path never evaluates a model. All three models are
//! deterministic functions of their inputs: the same model over the
//! same pair always yields the same latency, on every platform —
//! [`LatencyModel::Geo`] avoids transcendental functions for exactly
//! that reason (see [`GeoPoint::great_circle_km`]).

use crate::peer::PeerId;
use crate::time::SimTime;

/// A point on the globe, for [`LatencyModel::Geo`] placements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, −90 … 90.
    pub lat_deg: f64,
    /// Longitude in degrees, −180 … 180.
    pub lon_deg: f64,
}

/// Mean Earth radius in kilometres.
const EARTH_RADIUS_KM: f64 = 6371.0;

impl GeoPoint {
    /// Creates a placement from latitude/longitude degrees.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        GeoPoint { lat_deg, lon_deg }
    }

    /// Great-circle distance to `other` in kilometres.
    ///
    /// Computed via the chord length between the two points' unit
    /// vectors: `d = R · 2·asin(chord/2)`. Uses only multiplications,
    /// square roots and a polynomial `asin`/`sin`/`cos` — no libm
    /// transcendentals — so results are bit-identical across platforms
    /// and the model can participate in golden traces.
    pub fn great_circle_km(&self, other: &GeoPoint) -> f64 {
        let (ax, ay, az) = self.unit_vector();
        let (bx, by, bz) = other.unit_vector();
        let dx = ax - bx;
        let dy = ay - by;
        let dz = az - bz;
        let chord = (dx * dx + dy * dy + dz * dz).sqrt();
        // chord = 2 sin(θ/2) ⇒ θ = 2 asin(chord/2); chord/2 ∈ [0, 1].
        EARTH_RADIUS_KM * 2.0 * asin_poly((chord / 2.0).clamp(0.0, 1.0))
    }

    fn unit_vector(&self) -> (f64, f64, f64) {
        let lat = self.lat_deg.to_radians();
        let lon = self.lon_deg.to_radians();
        let (sin_lat, cos_lat) = sin_cos_poly(lat);
        let (sin_lon, cos_lon) = sin_cos_poly(lon);
        (cos_lat * cos_lon, cos_lat * sin_lon, sin_lat)
    }

    /// Scatters `n` placements deterministically over the inhabited
    /// latitudes (−55° … 70°) from `seed` — the stock way experiments
    /// get a world-spanning population without a dataset.
    pub fn scatter(seed: u64, n: usize) -> Vec<GeoPoint> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                let a = splitmix64(&mut state);
                let b = splitmix64(&mut state);
                GeoPoint {
                    lat_deg: -55.0 + unit_f64(a) * 125.0,
                    lon_deg: -180.0 + unit_f64(b) * 360.0,
                }
            })
            .collect()
    }
}

/// Polynomial `sin`/`cos` via argument reduction to `[-π, π]` and a
/// degree-13/12 Taylor tail — ~1e-10 absolute error, fully
/// deterministic (no platform libm).
fn sin_cos_poly(x: f64) -> (f64, f64) {
    const TWO_PI: f64 = std::f64::consts::TAU;
    // Inputs are bounded (|x| ≤ π for radians of ±180°), but reduce
    // anyway so the helper is safe for any placement arithmetic.
    let mut r = x % TWO_PI;
    if r > std::f64::consts::PI {
        r -= TWO_PI;
    } else if r < -std::f64::consts::PI {
        r += TWO_PI;
    }
    let x2 = r * r;
    let sin = r
        * (1.0
            + x2 * (-1.0 / 6.0
                + x2 * (1.0 / 120.0
                    + x2 * (-1.0 / 5040.0
                        + x2 * (1.0 / 362_880.0
                            + x2 * (-1.0 / 39_916_800.0 + x2 * (1.0 / 6_227_020_800.0)))))));
    let cos = 1.0
        + x2 * (-1.0 / 2.0
            + x2 * (1.0 / 24.0
                + x2 * (-1.0 / 720.0
                    + x2 * (1.0 / 40_320.0
                        + x2 * (-1.0 / 3_628_800.0 + x2 * (1.0 / 479_001_600.0))))));
    (sin, cos)
}

/// Deterministic `asin` on `[0, 1]` via the identity
/// `asin(x) = atan2(x, sqrt(1-x²))` reduced to a Newton refinement of
/// `sin(y) = x` seeded with a small-angle estimate. Max error ≲ 1e-9.
fn asin_poly(x: f64) -> f64 {
    if x >= 1.0 {
        return std::f64::consts::FRAC_PI_2;
    }
    // Seed: for x ≤ 0.7 the Taylor series converges fast; above that,
    // use asin(x) = π/2 − 2·asin(sqrt((1−x)/2)) to fold into range.
    if x > 0.7 {
        return std::f64::consts::FRAC_PI_2 - 2.0 * asin_poly(((1.0 - x) / 2.0).sqrt());
    }
    let x2 = x * x;
    let mut y = x
        * (1.0
            + x2 * (1.0 / 6.0
                + x2 * (3.0 / 40.0
                    + x2 * (15.0 / 336.0 + x2 * (105.0 / 3456.0 + x2 * (945.0 / 42_240.0))))));
    // Two Newton steps on f(y) = sin(y) − x.
    for _ in 0..2 {
        let (s, c) = sin_cos_poly(y);
        y -= (s - x) / c;
    }
    y
}

/// One step of the splitmix64 sequence (same mixer as the rand shim).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a `u64` to `[0, 1)` using the top 53 bits.
fn unit_f64(v: u64) -> f64 {
    (v >> 11) as f64 / (1u64 << 53) as f64
}

/// Assigns one-way link latency per unordered peer pair.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// Every link gets the same latency.
    Fixed(SimTime),
    /// `base ± jitter`, drawn deterministically per unordered pair from
    /// `seed` — both directions of a link share one latency.
    Jittered {
        /// Midpoint latency.
        base: SimTime,
        /// Maximum absolute deviation from `base`.
        jitter: SimTime,
        /// Seed for the per-pair hash.
        seed: u64,
    },
    /// Latency proportional to great-circle distance between each
    /// peer's placement: `floor + distance / speed`. Peer `PeerId(i)`
    /// uses `points[i % points.len()]`.
    Geo {
        /// One placement per peer (indexed by `PeerId.0`, wrapping).
        points: Vec<GeoPoint>,
        /// Signal propagation speed in km/s; fibre is ≈ 200 000 km/s.
        speed_km_per_s: f64,
        /// Per-link floor added to the propagation delay (serialization,
        /// switching).
        floor: SimTime,
    },
}

impl LatencyModel {
    /// A geo model over `n` placements scattered from `seed`, with
    /// fibre-like propagation speed and a 200 µs floor.
    pub fn geo_scattered(seed: u64, n: usize) -> Self {
        LatencyModel::Geo {
            points: GeoPoint::scatter(seed, n),
            speed_km_per_s: 200_000.0,
            floor: SimTime::from_micros(200),
        }
    }

    /// One-way latency of the link between `a` and `b`. Symmetric:
    /// `link(a, b) == link(b, a)`.
    pub fn link(&self, a: PeerId, b: PeerId) -> SimTime {
        match self {
            LatencyModel::Fixed(t) => *t,
            LatencyModel::Jittered { base, jitter, seed } => {
                let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
                let mut state = seed ^ lo.rotate_left(17) ^ hi.wrapping_mul(0xA24B_AED4_963E_E407);
                let draw = splitmix64(&mut state);
                // Deviation in [-jitter, +jitter], clamped at zero.
                let span = 2 * jitter.as_nanos() + 1;
                let dev = (draw % span) as i64 - jitter.as_nanos() as i64;
                SimTime((base.as_nanos() as i64 + dev).max(0) as u64)
            }
            LatencyModel::Geo { points, speed_km_per_s, floor } => {
                if points.is_empty() {
                    return *floor;
                }
                let pa = points[(a.0 % points.len() as u64) as usize];
                let pb = points[(b.0 % points.len() as u64) as usize];
                let km = pa.great_circle_km(&pb);
                *floor + SimTime((km / speed_km_per_s * 1e9) as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant_and_symmetric() {
        let m = LatencyModel::Fixed(SimTime::from_millis(3));
        assert_eq!(m.link(PeerId(1), PeerId(9)), SimTime::from_millis(3));
        assert_eq!(m.link(PeerId(9), PeerId(1)), m.link(PeerId(1), PeerId(9)));
    }

    #[test]
    fn jittered_stays_in_band_and_is_symmetric() {
        let base = SimTime::from_millis(10);
        let jitter = SimTime::from_millis(4);
        let m = LatencyModel::Jittered { base, jitter, seed: 42 };
        for i in 0..50u64 {
            for j in (i + 1)..50 {
                let l = m.link(PeerId(i), PeerId(j));
                assert!(l >= SimTime::from_millis(6) && l <= SimTime::from_millis(14), "{l}");
                assert_eq!(l, m.link(PeerId(j), PeerId(i)));
            }
        }
        // Different pairs mostly differ (it is a hash, not a constant).
        let a = m.link(PeerId(0), PeerId(1));
        let b = m.link(PeerId(0), PeerId(2));
        let c = m.link(PeerId(1), PeerId(2));
        assert!(a != b || b != c);
    }

    #[test]
    fn great_circle_known_distances() {
        // London ↔ New York ≈ 5570 km.
        let london = GeoPoint::new(51.5074, -0.1278);
        let ny = GeoPoint::new(40.7128, -74.0060);
        let d = london.great_circle_km(&ny);
        assert!((d - 5570.0).abs() < 30.0, "London-NY: {d} km");
        // Antipodal-ish sanity: any distance ≤ half circumference.
        assert!(d <= EARTH_RADIUS_KM * std::f64::consts::PI);
        // Zero distance to self.
        assert!(london.great_circle_km(&london) < 1e-6);
    }

    #[test]
    fn geo_latency_scales_with_distance() {
        let points =
            vec![GeoPoint::new(0.0, 0.0), GeoPoint::new(0.0, 1.0), GeoPoint::new(0.0, 90.0)];
        let m = LatencyModel::Geo {
            points,
            speed_km_per_s: 200_000.0,
            floor: SimTime::from_micros(200),
        };
        let near = m.link(PeerId(0), PeerId(1));
        let far = m.link(PeerId(0), PeerId(2));
        assert!(far > near, "far {far} vs near {near}");
        assert!(near >= SimTime::from_micros(200), "floor applies");
        // 90° of longitude on the equator ≈ 10 000 km ⇒ ≈ 50 ms at
        // 200 000 km/s.
        assert!(far >= SimTime::from_millis(45) && far <= SimTime::from_millis(56), "{far}");
        assert_eq!(m.link(PeerId(2), PeerId(0)), far);
    }

    #[test]
    fn scatter_is_deterministic_and_bounded() {
        let a = GeoPoint::scatter(7, 100);
        let b = GeoPoint::scatter(7, 100);
        assert_eq!(a, b);
        assert!(a.iter().all(|p| (-55.0..=70.0).contains(&p.lat_deg)));
        assert!(a.iter().all(|p| (-180.0..=180.0).contains(&p.lon_deg)));
        assert_ne!(GeoPoint::scatter(8, 100), a);
    }
}
