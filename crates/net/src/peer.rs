//! The peer abstraction: event-driven state machines plugged into a runtime.
//!
//! A [`Peer`] reacts to activation, incoming messages and timers by emitting
//! *commands* through a [`Context`]. The same peer implementation runs
//! unchanged under the deterministic discrete-event simulator
//! ([`crate::sim::SimNet`]) and the threaded runtime
//! ([`crate::parallel::ParallelNet`]) — mirroring how coDB nodes are
//! independent of the JXTA transport beneath them.

use crate::discovery::Advertisement;
use crate::pipe::PipeConfig;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Network-wide peer identifier (JXTA gives peers IP-independent IDs; we
/// use dense integers).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PeerId(pub u64);

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer{}", self.0)
    }
}

/// Payloads must report an approximate wire size so the simulator can model
/// bandwidth and the statistics module can report data volumes.
pub trait Payload: Clone + Send + fmt::Debug + 'static {
    /// Approximate serialized size in bytes.
    fn size_bytes(&self) -> usize;
}

/// A peer state machine.
pub trait Peer<M: Payload>: Send {
    /// Called once when the peer joins the network.
    fn on_start(&mut self, _ctx: &mut Context<M>) {}

    /// Called for every delivered message.
    fn on_message(&mut self, ctx: &mut Context<M>, from: PeerId, msg: M);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<M>, _timer: u64) {}
}

/// Commands a peer may emit during a callback; the runtime applies them
/// after the callback returns.
#[derive(Debug)]
pub enum Command<M> {
    /// Send `msg` to `to` over an existing pipe.
    Send {
        /// Destination peer.
        to: PeerId,
        /// Payload.
        msg: M,
    },
    /// Request a timer callback after `delay`.
    SetTimer {
        /// Delay from now.
        delay: SimTime,
        /// Caller-chosen id passed back to [`Peer::on_timer`].
        timer: u64,
    },
    /// Open (or reconfigure) a pipe between this peer and `with`.
    OpenPipe {
        /// The other endpoint.
        with: PeerId,
        /// Pipe parameters.
        config: PipeConfig,
    },
    /// Close the pipe with `with`, if any.
    ClosePipe {
        /// The other endpoint.
        with: PeerId,
    },
    /// Publish an advertisement on the discovery board.
    Advertise(Advertisement),
}

/// Callback context: read-only view of the runtime plus a command buffer.
pub struct Context<'a, M: Payload> {
    self_id: PeerId,
    now: SimTime,
    /// Peers currently advertised on the discovery board (JXTA's local
    /// discovery cache).
    discovered: &'a [Advertisement],
    commands: Vec<Command<M>>,
}

impl<'a, M: Payload> Context<'a, M> {
    /// Creates a context (runtimes only).
    pub fn new(self_id: PeerId, now: SimTime, discovered: &'a [Advertisement]) -> Self {
        Context { self_id, now, discovered, commands: Vec::new() }
    }

    /// This peer's id.
    pub fn self_id(&self) -> PeerId {
        self.self_id
    }

    /// Current (simulated) time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends a message. Delivery requires a pipe to `to`; messages without
    /// a pipe are counted as undeliverable by the runtime.
    pub fn send(&mut self, to: PeerId, msg: M) {
        self.commands.push(Command::Send { to, msg });
    }

    /// Schedules [`Peer::on_timer`] after `delay` with the given id.
    pub fn set_timer(&mut self, delay: SimTime, timer: u64) {
        self.commands.push(Command::SetTimer { delay, timer });
    }

    /// Opens (or reconfigures) a pipe to `with`.
    pub fn open_pipe(&mut self, with: PeerId, config: PipeConfig) {
        self.commands.push(Command::OpenPipe { with, config });
    }

    /// Closes the pipe to `with`.
    pub fn close_pipe(&mut self, with: PeerId) {
        self.commands.push(Command::ClosePipe { with });
    }

    /// Publishes an advertisement.
    pub fn advertise(&mut self, ad: Advertisement) {
        self.commands.push(Command::Advertise(ad));
    }

    /// Snapshot of the discovery board (instantaneous, like JXTA's local
    /// advertisement cache).
    pub fn discover(&self) -> &[Advertisement] {
        self.discovered
    }

    /// Drains the buffered commands (runtimes only).
    pub fn take_commands(&mut self) -> Vec<Command<M>> {
        std::mem::take(&mut self.commands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl Payload for String {
        fn size_bytes(&self) -> usize {
            self.len()
        }
    }

    #[test]
    fn context_buffers_commands() {
        let ads = vec![];
        let mut ctx: Context<'_, String> = Context::new(PeerId(1), SimTime::from_millis(5), &ads);
        assert_eq!(ctx.self_id(), PeerId(1));
        assert_eq!(ctx.now(), SimTime::from_millis(5));
        ctx.send(PeerId(2), "hi".into());
        ctx.set_timer(SimTime::from_millis(1), 7);
        ctx.close_pipe(PeerId(2));
        let cmds = ctx.take_commands();
        assert_eq!(cmds.len(), 3);
        assert!(matches!(cmds[0], Command::Send { to: PeerId(2), .. }));
        assert!(matches!(cmds[1], Command::SetTimer { timer: 7, .. }));
        assert!(matches!(cmds[2], Command::ClosePipe { with: PeerId(2) }));
        assert!(ctx.take_commands().is_empty());
    }
}
