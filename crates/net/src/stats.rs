//! Network-level statistics: ground truth the coDB statistics module is
//! validated against.

use crate::peer::PeerId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters for one directed pipe.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipeStats {
    /// Messages handed to the pipe.
    pub sent: u64,
    /// Messages delivered to the destination peer.
    pub delivered: u64,
    /// Messages dropped by the loss model.
    pub dropped: u64,
    /// Payload bytes handed to the pipe.
    pub bytes_sent: u64,
}

impl PipeStats {
    /// Adds `other`'s counters into `self` — used when folding a closed
    /// pipe's counters into the surviving per-pipe table.
    pub fn merge(&mut self, other: &PipeStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.bytes_sent += other.bytes_sent;
    }
}

/// Whole-network counters.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Total messages handed to pipes.
    pub sent: u64,
    /// Total messages delivered.
    pub delivered: u64,
    /// Total messages dropped by the loss model.
    pub dropped: u64,
    /// Messages sent without an open pipe (protocol bugs / churn races).
    pub undeliverable: u64,
    /// Total payload bytes handed to pipes.
    pub bytes_sent: u64,
    /// Per directed pipe counters.
    pub per_pipe: BTreeMap<(PeerId, PeerId), PipeStats>,
}

impl NetStats {
    /// Records a send attempt over `(from, to)`.
    pub fn record_sent(&mut self, from: PeerId, to: PeerId, bytes: usize) {
        self.sent += 1;
        self.bytes_sent += bytes as u64;
        let p = self.per_pipe.entry((from, to)).or_default();
        p.sent += 1;
        p.bytes_sent += bytes as u64;
    }

    /// Records a delivery over `(from, to)`.
    pub fn record_delivered(&mut self, from: PeerId, to: PeerId) {
        self.delivered += 1;
        self.per_pipe.entry((from, to)).or_default().delivered += 1;
    }

    /// Records a loss-model drop over `(from, to)`.
    pub fn record_dropped(&mut self, from: PeerId, to: PeerId) {
        self.dropped += 1;
        self.per_pipe.entry((from, to)).or_default().dropped += 1;
    }

    /// Records a send with no open pipe.
    pub fn record_undeliverable(&mut self) {
        self.undeliverable += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NetStats::default();
        s.record_sent(PeerId(1), PeerId(2), 100);
        s.record_sent(PeerId(1), PeerId(2), 50);
        s.record_delivered(PeerId(1), PeerId(2));
        s.record_dropped(PeerId(1), PeerId(2));
        s.record_undeliverable();
        assert_eq!(s.sent, 2);
        assert_eq!(s.bytes_sent, 150);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.undeliverable, 1);
        let p = s.per_pipe[&(PeerId(1), PeerId(2))];
        assert_eq!(p.sent, 2);
        assert_eq!(p.bytes_sent, 150);
    }
}
