//! Declarative network construction: [`SimBuilder`].
//!
//! Before this module every experiment, test and the core harness
//! hand-rolled the same loop: `add_peer` for each id, `open_pipe` for
//! each edge, with per-call-site copies of the edge materialization.
//! The builder replaces that with one pipeline:
//!
//! ```ignore
//! let net = SimBuilder::new(config)
//!     .topology(&topology, PipeConfig::lan())   // any EdgeSource
//!     .latency(LatencyModel::geo_scattered(7, n))
//!     .spawn(|id| MyPeer::new(id));
//! ```
//!
//! Construction order is deterministic: peers spawn in registration
//! order, pipes open in registration order, so two builds from the same
//! inputs schedule identical event sequences. The latency model (if
//! any) is evaluated once per pipe here — the simulator hot path only
//! ever sees the resulting [`PipeConfig`].

use crate::latency::LatencyModel;
use crate::peer::{Payload, Peer, PeerId};
use crate::pipe::PipeConfig;
use crate::sim::{SimConfig, SimNet};

/// Anything that can describe a network as nodes + directed edges.
///
/// Implemented by `codb_workload::Topology` (the canonical generators)
/// and by the in-crate [`Edges`] adapter for ad-hoc shapes. Node
/// indices are `0..node_count()`; the builder maps index `i` to
/// `PeerId(i)`.
pub trait EdgeSource {
    /// Number of nodes in the shape.
    fn node_count(&self) -> usize;
    /// Directed edges `(source, target)` over `0..node_count()`.
    fn edge_list(&self) -> Vec<(usize, usize)>;
}

/// A literal edge list with an explicit node count — the [`EdgeSource`]
/// for shapes that don't warrant a topology enum variant.
#[derive(Clone, Debug)]
pub struct Edges {
    /// Number of nodes (`0..n` are valid endpoints).
    pub n: usize,
    /// Directed edges.
    pub edges: Vec<(usize, usize)>,
}

impl Edges {
    /// A chain `0 → 1 → … → n-1`.
    pub fn chain(n: usize) -> Self {
        Edges { n, edges: (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect() }
    }

    /// A directed ring `0 → 1 → … → n-1 → 0`.
    pub fn ring(n: usize) -> Self {
        let edges = if n < 2 { Vec::new() } else { (0..n).map(|i| (i, (i + 1) % n)).collect() };
        Edges { n, edges }
    }
}

impl EdgeSource for Edges {
    fn node_count(&self) -> usize {
        self.n
    }
    fn edge_list(&self) -> Vec<(usize, usize)> {
        self.edges.clone()
    }
}

/// Builder for a fully-wired [`SimNet`]; see the module docs.
#[derive(Clone, Debug)]
pub struct SimBuilder {
    config: SimConfig,
    latency: Option<LatencyModel>,
    peers: Vec<PeerId>,
    pipes: Vec<(PeerId, PeerId, PipeConfig)>,
}

impl SimBuilder {
    /// Starts a build with the given simulator configuration.
    pub fn new(config: SimConfig) -> Self {
        SimBuilder { config, latency: None, peers: Vec::new(), pipes: Vec::new() }
    }

    /// Registers every node and edge of `shape`, each edge as a pipe
    /// with `pipe` as its base configuration. May be called repeatedly
    /// (ids already registered are not duplicated).
    pub fn topology<T: EdgeSource + ?Sized>(mut self, shape: &T, pipe: PipeConfig) -> Self {
        for i in 0..shape.node_count() {
            let id = PeerId(i as u64);
            if !self.peers.contains(&id) {
                self.peers.push(id);
            }
        }
        for (a, b) in shape.edge_list() {
            self.pipes.push((PeerId(a as u64), PeerId(b as u64), pipe));
        }
        self
    }

    /// Sets the latency model. Each pipe's latency is overridden by
    /// `model.link(a, b)` at [`spawn`](Self::spawn) time; bandwidth and
    /// loss of the base configuration are preserved.
    pub fn latency(mut self, model: LatencyModel) -> Self {
        self.latency = Some(model);
        self
    }

    /// Registers additional peers (for harness-only or off-topology
    /// ids).
    pub fn peers(mut self, ids: impl IntoIterator<Item = PeerId>) -> Self {
        for id in ids {
            if !self.peers.contains(&id) {
                self.peers.push(id);
            }
        }
        self
    }

    /// Registers a single explicit pipe.
    pub fn pipe(mut self, a: PeerId, b: PeerId, config: PipeConfig) -> Self {
        self.pipes.push((a, b, config));
        self
    }

    /// Materializes the network: spawns each registered peer via
    /// `make_peer` (in registration order), opens every pipe (latency
    /// model applied), and returns the ready [`SimNet`] — started peers
    /// have their `on_start` events queued, nothing has run yet.
    pub fn spawn<M, P, F>(self, mut make_peer: F) -> SimNet<M, P>
    where
        M: Payload,
        P: Peer<M>,
        F: FnMut(PeerId) -> P,
    {
        let mut net = SimNet::new(self.config);
        for &id in &self.peers {
            let peer = make_peer(id);
            net.add_peer(id, peer);
        }
        for (a, b, mut config) in self.pipes {
            if let Some(model) = &self.latency {
                config.latency = model.link(a, b);
            }
            net.open_pipe(a, b, config);
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::tests_support::{Echo, Msg};
    use crate::time::SimTime;

    /// Echo peers forwarding along the chain `0 → 1 → … → last`.
    fn forwarder(last: u64) -> impl FnMut(PeerId) -> Echo {
        move |id| Echo { forward: (id.0 < last).then(|| PeerId(id.0 + 1)), ..Default::default() }
    }

    #[test]
    fn builder_wires_a_ring() {
        let mut net: SimNet<Msg, Echo> = SimBuilder::new(SimConfig::default())
            .topology(&Edges::ring(4), PipeConfig::lan())
            .spawn(forwarder(3));
        for i in 0..4u64 {
            assert!(net.has_pipe(PeerId(i), PeerId((i + 1) % 4)));
            assert!(net.has_pipe(PeerId((i + 1) % 4), PeerId(i)), "pipes are bidirectional");
        }
        net.inject(PeerId(99), PeerId(0), Msg(7));
        net.run_until_quiescent();
        assert_eq!(net.stats().delivered, 4, "inject + three forward hops");
        assert_eq!(net.peer(PeerId(3)).unwrap().got, vec![7]);
    }

    #[test]
    fn builder_matches_hand_rolled_construction() {
        let build = |use_builder: bool| {
            let mut net: SimNet<Msg, Echo> = if use_builder {
                SimBuilder::new(SimConfig::default())
                    .topology(&Edges::ring(5), PipeConfig::lan())
                    .spawn(forwarder(4))
            } else {
                let mut net = SimNet::new(SimConfig::default());
                let mut make = forwarder(4);
                for i in 0..5 {
                    net.add_peer(PeerId(i), make(PeerId(i)));
                }
                for i in 0..5 {
                    net.open_pipe(PeerId(i), PeerId((i + 1) % 5), PipeConfig::lan());
                }
                net
            };
            net.enable_trace();
            net.inject(PeerId(99), PeerId(0), Msg(1));
            net.run_until_quiescent();
            (net.now(), net.stats(), net.trace().unwrap().to_vec())
        };
        assert_eq!(build(true), build(false), "builder must not change the schedule");
    }

    #[test]
    fn latency_model_overrides_pipe_latency() {
        let slow = LatencyModel::Fixed(SimTime::from_millis(250));
        let mut net: SimNet<Msg, Echo> = SimBuilder::new(SimConfig::default())
            .topology(&Edges::chain(2), PipeConfig::lan())
            .latency(slow)
            .spawn(forwarder(1));
        net.inject(PeerId(99), PeerId(0), Msg(1));
        let end = net.run_until_quiescent();
        assert!(end >= SimTime::from_millis(250), "model latency applied: {end}");
    }

    #[test]
    fn extra_peers_and_explicit_pipes() {
        let mut net: SimNet<Msg, Echo> = SimBuilder::new(SimConfig::default())
            .topology(&Edges::chain(2), PipeConfig::lan())
            .peers([PeerId(7)])
            .pipe(PeerId(1), PeerId(7), PipeConfig::wan())
            .spawn(|id| Echo {
                forward: match id.0 {
                    0 => Some(PeerId(1)),
                    1 => Some(PeerId(7)),
                    _ => None,
                },
                ..Default::default()
            });
        assert!(net.has_pipe(PeerId(1), PeerId(7)));
        net.inject(PeerId(99), PeerId(0), Msg(2));
        net.run_until_quiescent();
        assert_eq!(net.stats().delivered, 3, "message crosses the explicit pipe too");
        assert_eq!(net.peer(PeerId(7)).unwrap().got, vec![2]);
    }
}
