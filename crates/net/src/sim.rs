//! The deterministic discrete-event network simulator.
//!
//! [`SimNet`] owns the peers, the pipes, an advertisement board, a seeded
//! RNG (for the loss model) and a priority queue of events. Peers are
//! state machines ([`Peer`]); every callback may emit commands which the
//! simulator applies — sends become future `Deliver` events delayed by the
//! pipe's latency/bandwidth model, timers become `Timer` events.
//!
//! Determinism: identical seeds and identical call sequences produce
//! identical runs (events are ordered by `(time, sequence-number)`, and all
//! internal iteration orders are stable).
//!
//! # Hot-path layout
//!
//! The simulator is built to sweep 10k-peer networks (see experiment
//! E19), so the per-event path avoids global logarithmic structures and
//! hashing:
//!
//! * Events live in a [`CalendarQueue`]: fine-grained time buckets over a
//!   sliding window, heap fallback for far-future timers. Pop cost
//!   scales with the population of one ~262 µs bucket, not the whole
//!   queue.
//! * Each [`PeerId`] is interned once into a dense `u32` slot index
//!   (`index: HashMap<PeerId, u32>` is consulted only on the cold
//!   control paths — `add_peer`, `open_pipe`, command targets). Events
//!   carry slot indices, so dispatch is a `Vec` index, not a map probe.
//! * Pipes are adjacency lists: slot `i` holds a `dst`-sorted
//!   `Vec<Edge>` of its outgoing half-pipes, each embedding its
//!   [`PipeConfig`], [`PipeState`] and [`PipeStats`]. A send is a binary
//!   search over the peer's own (typically tiny) neighbour list.
//!
//! Slots are never freed: removing a peer tombstones its slot
//! (`peer: None`) and re-adding the same id revives it, which preserves
//! the original semantics that a message in flight toward a removed peer
//! is delivered to a new incarnation added before the arrival time, and
//! silently discarded otherwise.

use crate::discovery::{Advertisement, Board};
use crate::peer::{Command, Context, Payload, Peer, PeerId};
use crate::pipe::{PipeConfig, PipeState};
use crate::queue::CalendarQueue;
use crate::stats::{NetStats, PipeStats};
use crate::time::SimTime;
use codb_trace::{TraceEvent, Tracer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for the loss model RNG.
    pub seed: u64,
    /// Pipe parameters used by [`SimNet::open_pipe_default`].
    pub default_pipe: PipeConfig,
    /// Safety valve: abort after this many events (0 = unlimited).
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { seed: 0xC0DB, default_pipe: PipeConfig::lan(), max_events: 0 }
    }
}

/// Events reference peers by dense slot index, assigned at interning
/// time — no map lookups on the dispatch path.
enum EventKind<M> {
    Start(u32),
    Deliver { from: u32, to: u32, msg: M },
    Timer { peer: u32, timer: u64 },
}

/// One recorded message delivery (when tracing is enabled).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Delivery time.
    pub at: SimTime,
    /// Sender.
    pub from: PeerId,
    /// Receiver.
    pub to: PeerId,
    /// Payload size.
    pub bytes: usize,
}

/// An outgoing half-pipe: configuration, bandwidth state and counters,
/// stored inline in the source slot's adjacency list.
struct Edge {
    dst: u32,
    config: PipeConfig,
    state: PipeState,
    stats: PipeStats,
}

/// One interned peer. `peer: None` is a tombstone — the id stays bound
/// to this slot forever so in-flight events resolve identically before
/// and after churn.
struct Slot<P> {
    id: PeerId,
    peer: Option<P>,
    /// Outgoing half-pipes, sorted by `dst` for binary search.
    adj: Vec<Edge>,
}

/// Whole-network counters kept hot; per-pipe detail lives in the edges
/// and is assembled on demand by [`SimNet::stats`].
#[derive(Default)]
struct Totals {
    sent: u64,
    delivered: u64,
    dropped: u64,
    undeliverable: u64,
    bytes_sent: u64,
}

/// The deterministic discrete-event network. Generic over the payload type
/// `M` and the (homogeneous) peer type `P`, so harnesses retain typed
/// access to peer state after a run.
pub struct SimNet<M: Payload, P: Peer<M>> {
    slots: Vec<Slot<P>>,
    index: HashMap<PeerId, u32>,
    board: Board,
    queue: CalendarQueue<EventKind<M>>,
    now: SimTime,
    seq: u64,
    rng: SmallRng,
    totals: Totals,
    /// Per-pipe counters with no live edge to live in: harness
    /// injections (which need no pipe) and the folded history of closed
    /// pipes / removed peers.
    folded: BTreeMap<(PeerId, PeerId), PipeStats>,
    config: SimConfig,
    events_processed: u64,
    trace: Option<Vec<TraceEntry>>,
    tracer: Tracer,
}

impl<M: Payload, P: Peer<M>> SimNet<M, P> {
    /// Creates an empty network.
    pub fn new(config: SimConfig) -> Self {
        SimNet {
            slots: Vec::new(),
            index: HashMap::new(),
            board: Board::new(),
            queue: CalendarQueue::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: SmallRng::seed_from_u64(config.seed),
            totals: Totals::default(),
            folded: BTreeMap::new(),
            config,
            events_processed: 0,
            trace: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Enables per-delivery tracing (for tests and message-level reports).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Attaches a flight-recorder handle: the simulator stamps it with
    /// sim-time before dispatching each event (so nested node/store
    /// events inherit the simulated instant) and emits
    /// send/deliver/drop/timer-fire events through it.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached flight-recorder handle (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The recorded trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&[TraceEntry]> {
        self.trace.as_deref()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network statistics (ground truth). Totals are maintained
    /// continuously; the per-pipe table is assembled from the live edges
    /// plus the folded history of closed pipes, so this is a cold-path
    /// accessor — call it between runs, not per event.
    pub fn stats(&self) -> NetStats {
        let mut per_pipe = self.folded.clone();
        for slot in &self.slots {
            for e in &slot.adj {
                if e.stats != PipeStats::default() {
                    per_pipe
                        .entry((slot.id, self.slots[e.dst as usize].id))
                        .or_default()
                        .merge(&e.stats);
                }
            }
        }
        NetStats {
            sent: self.totals.sent,
            delivered: self.totals.delivered,
            dropped: self.totals.dropped,
            undeliverable: self.totals.undeliverable,
            bytes_sent: self.totals.bytes_sent,
            per_pipe,
        }
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Immutable access to a peer's state machine.
    pub fn peer(&self, id: PeerId) -> Option<&P> {
        self.index.get(&id).and_then(|&i| self.slots[i as usize].peer.as_ref())
    }

    /// Mutable access to a peer's state machine (between events).
    pub fn peer_mut(&mut self, id: PeerId) -> Option<&mut P> {
        let i = *self.index.get(&id)?;
        self.slots[i as usize].peer.as_mut()
    }

    /// Iterates over `(id, peer)` pairs in id order.
    pub fn peers(&self) -> impl Iterator<Item = (PeerId, &P)> {
        let mut live: Vec<(PeerId, &P)> =
            self.slots.iter().filter_map(|s| s.peer.as_ref().map(|p| (s.id, p))).collect();
        live.sort_unstable_by_key(|&(id, _)| id);
        live.into_iter()
    }

    /// Ids of all live peers, in id order.
    pub fn peer_ids(&self) -> Vec<PeerId> {
        let mut ids: Vec<PeerId> =
            self.slots.iter().filter(|s| s.peer.is_some()).map(|s| s.id).collect();
        ids.sort_unstable();
        ids
    }

    /// Interns `id` into its permanent slot index.
    fn intern(&mut self, id: PeerId) -> u32 {
        if let Some(&i) = self.index.get(&id) {
            return i;
        }
        let i = u32::try_from(self.slots.len()).expect("more than u32::MAX peers");
        self.slots.push(Slot { id, peer: None, adj: Vec::new() });
        self.index.insert(id, i);
        i
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, kind);
    }

    /// Adds a peer; its [`Peer::on_start`] runs at the current time.
    pub fn add_peer(&mut self, id: PeerId, peer: P) {
        let idx = self.intern(id);
        self.slots[idx as usize].peer = Some(peer);
        self.push(self.now, EventKind::Start(idx));
    }

    /// Removes a peer: its pipes close, its advertisements are retracted,
    /// and in-flight messages to it are discarded at delivery time
    /// (unless a new incarnation is added before they arrive).
    /// Returns the peer state, if it existed.
    pub fn remove_peer(&mut self, id: PeerId) -> Option<P> {
        let idx = *self.index.get(&id)?;
        let adj = std::mem::take(&mut self.slots[idx as usize].adj);
        for e in adj {
            if e.stats != PipeStats::default() {
                let dst_id = self.slots[e.dst as usize].id;
                self.folded.entry((id, dst_id)).or_default().merge(&e.stats);
            }
            let neighbour = &mut self.slots[e.dst as usize];
            if let Ok(pos) = neighbour.adj.binary_search_by_key(&idx, |x| x.dst) {
                let rev = neighbour.adj.remove(pos);
                let neighbour_id = neighbour.id;
                if rev.stats != PipeStats::default() {
                    self.folded.entry((neighbour_id, id)).or_default().merge(&rev.stats);
                }
            }
        }
        self.board.retract_peer(id);
        self.slots[idx as usize].peer.take()
    }

    /// Opens (or reconfigures) one direction of a pipe. Reconfiguring
    /// resets the bandwidth state but keeps accumulated counters.
    fn open_directed(&mut self, from: u32, to: u32, config: PipeConfig) {
        let adj = &mut self.slots[from as usize].adj;
        match adj.binary_search_by_key(&to, |e| e.dst) {
            Ok(pos) => {
                adj[pos].config = config;
                adj[pos].state = PipeState::default();
            }
            Err(pos) => adj.insert(
                pos,
                Edge { dst: to, config, state: PipeState::default(), stats: PipeStats::default() },
            ),
        }
    }

    /// Opens a bidirectional pipe between `a` and `b`.
    pub fn open_pipe(&mut self, a: PeerId, b: PeerId, config: PipeConfig) {
        let ai = self.intern(a);
        let bi = self.intern(b);
        self.open_directed(ai, bi, config);
        self.open_directed(bi, ai, config);
    }

    /// Opens a pipe with the configured default parameters.
    pub fn open_pipe_default(&mut self, a: PeerId, b: PeerId) {
        self.open_pipe(a, b, self.config.default_pipe);
    }

    /// Closes the pipe between `a` and `b` (both directions). Messages
    /// already in flight are still delivered.
    pub fn close_pipe(&mut self, a: PeerId, b: PeerId) {
        let (Some(&ai), Some(&bi)) = (self.index.get(&a), self.index.get(&b)) else { return };
        for (src, dst) in [(ai, bi), (bi, ai)] {
            let slot = &mut self.slots[src as usize];
            if let Ok(pos) = slot.adj.binary_search_by_key(&dst, |e| e.dst) {
                let edge = slot.adj.remove(pos);
                let src_id = slot.id;
                if edge.stats != PipeStats::default() {
                    let dst_id = self.slots[dst as usize].id;
                    self.folded.entry((src_id, dst_id)).or_default().merge(&edge.stats);
                }
            }
        }
    }

    /// True iff a pipe exists from `a` to `b`.
    pub fn has_pipe(&self, a: PeerId, b: PeerId) -> bool {
        let (Some(&ai), Some(&bi)) = (self.index.get(&a), self.index.get(&b)) else {
            return false;
        };
        self.slots[ai as usize].adj.binary_search_by_key(&bi, |e| e.dst).is_ok()
    }

    /// Injects a message from outside the network (e.g. a test harness
    /// acting as a user at node `to`). Delivered at the current time with
    /// `from` as the apparent sender; no pipe required. Counted as a sent
    /// message so `sent == delivered + dropped` holds network-wide.
    pub fn inject(&mut self, from: PeerId, to: PeerId, msg: M) {
        let fi = self.intern(from);
        let ti = self.intern(to);
        let bytes = msg.size_bytes();
        self.totals.sent += 1;
        self.totals.bytes_sent += bytes as u64;
        let p = self.folded.entry((from, to)).or_default();
        p.sent += 1;
        p.bytes_sent += bytes as u64;
        if self.tracer.is_enabled() {
            self.tracer.set_clock(self.now.as_nanos());
            self.tracer.emit(TraceEvent::NetSend { from: from.0, to: to.0, bytes: bytes as u64 });
        }
        self.push(self.now, EventKind::Deliver { from: fi, to: ti, msg });
    }

    /// Publishes an advertisement from the harness.
    pub fn advertise(&mut self, ad: Advertisement) {
        self.board.publish(ad);
    }

    /// The advertisement board.
    pub fn board(&self) -> &Board {
        &self.board
    }

    fn apply_commands(&mut self, origin: u32, commands: Vec<Command<M>>) {
        let origin_id = self.slots[origin as usize].id;
        for cmd in commands {
            match cmd {
                Command::Send { to, msg } => {
                    let bytes = msg.size_bytes();
                    let target = self.index.get(&to).copied().and_then(|ti| {
                        self.slots[origin as usize]
                            .adj
                            .binary_search_by_key(&ti, |e| e.dst)
                            .ok()
                            .map(|pos| (ti, pos))
                    });
                    let Some((ti, pos)) = target else {
                        self.totals.undeliverable += 1;
                        continue;
                    };
                    self.totals.sent += 1;
                    self.totals.bytes_sent += bytes as u64;
                    let now = self.now;
                    let edge = &mut self.slots[origin as usize].adj[pos];
                    edge.stats.sent += 1;
                    edge.stats.bytes_sent += bytes as u64;
                    let loss = edge.config.loss;
                    let start = now.max(edge.state.busy_until);
                    let done = start + edge.config.transmission_time(bytes);
                    edge.state.busy_until = done;
                    let arrival = done + edge.config.latency;
                    if self.tracer.is_enabled() {
                        self.tracer.emit(TraceEvent::NetSend {
                            from: origin_id.0,
                            to: to.0,
                            bytes: bytes as u64,
                        });
                    }
                    if loss > 0.0 && self.rng.gen::<f64>() < loss {
                        self.totals.dropped += 1;
                        self.slots[origin as usize].adj[pos].stats.dropped += 1;
                        if self.tracer.is_enabled() {
                            self.tracer.emit(TraceEvent::NetDrop {
                                from: origin_id.0,
                                to: to.0,
                                bytes: bytes as u64,
                            });
                        }
                    } else {
                        self.push(arrival, EventKind::Deliver { from: origin, to: ti, msg });
                    }
                }
                Command::SetTimer { delay, timer } => {
                    self.push(self.now + delay, EventKind::Timer { peer: origin, timer });
                }
                Command::OpenPipe { with, config } => self.open_pipe(origin_id, with, config),
                Command::ClosePipe { with } => self.close_pipe(origin_id, with),
                Command::Advertise(ad) => self.board.publish(ad),
            }
        }
    }

    /// Processes one event; with a deadline, only an event scheduled at
    /// or before it. Returns `false` when nothing eligible remains or
    /// the event budget is exhausted.
    fn step_inner(&mut self, deadline: Option<SimTime>) -> bool {
        if self.config.max_events != 0 && self.events_processed >= self.config.max_events {
            return false;
        }
        let popped = match deadline {
            None => self.queue.pop(),
            Some(d) => self.queue.pop_before(d),
        };
        let Some((at, _seq, kind)) = popped else { return false };
        debug_assert!(at >= self.now, "time must be monotone");
        self.now = at;
        self.events_processed += 1;
        // Stamp the trace clock first: every event emitted below — by the
        // simulator itself or by node/store code inside a peer callback —
        // carries this event's sim-time.
        self.tracer.set_clock(at.as_nanos());
        // The board snapshot is cloned so the peer callback can't observe
        // its own command effects mid-callback.
        let snapshot: Vec<Advertisement> = self.board.snapshot().to_vec();
        match kind {
            EventKind::Start(idx) => {
                let id = self.slots[idx as usize].id;
                if let Some(peer) = self.slots[idx as usize].peer.as_mut() {
                    let mut ctx = Context::new(id, self.now, &snapshot);
                    peer.on_start(&mut ctx);
                    let cmds = ctx.take_commands();
                    self.apply_commands(idx, cmds);
                }
            }
            EventKind::Deliver { from, to, msg } => {
                if self.slots[to as usize].peer.is_some() {
                    let from_id = self.slots[from as usize].id;
                    let to_id = self.slots[to as usize].id;
                    self.totals.delivered += 1;
                    // The pipe may have closed while the message was in
                    // flight; its delivery then counts against the
                    // folded history, keeping per-pipe totals exact.
                    match self.slots[from as usize].adj.binary_search_by_key(&to, |e| e.dst) {
                        Ok(pos) => self.slots[from as usize].adj[pos].stats.delivered += 1,
                        Err(_) => self.folded.entry((from_id, to_id)).or_default().delivered += 1,
                    }
                    if let Some(trace) = &mut self.trace {
                        trace.push(TraceEntry {
                            at: self.now,
                            from: from_id,
                            to: to_id,
                            bytes: msg.size_bytes(),
                        });
                    }
                    if self.tracer.is_enabled() {
                        self.tracer.emit(TraceEvent::NetDeliver {
                            from: from_id.0,
                            to: to_id.0,
                            bytes: msg.size_bytes() as u64,
                        });
                    }
                    let mut ctx = Context::new(to_id, self.now, &snapshot);
                    let peer = self.slots[to as usize].peer.as_mut().unwrap();
                    peer.on_message(&mut ctx, from_id, msg);
                    let cmds = ctx.take_commands();
                    self.apply_commands(to, cmds);
                }
                // Peer gone: the in-flight message is silently discarded,
                // matching a crashed JXTA peer.
            }
            EventKind::Timer { peer: idx, timer } => {
                let id = self.slots[idx as usize].id;
                if let Some(peer) = self.slots[idx as usize].peer.as_mut() {
                    if self.tracer.is_enabled() {
                        self.tracer.emit(TraceEvent::NetTimer { peer: id.0, timer });
                    }
                    let mut ctx = Context::new(id, self.now, &snapshot);
                    peer.on_timer(&mut ctx, timer);
                    let cmds = ctx.take_commands();
                    self.apply_commands(idx, cmds);
                }
            }
        }
        true
    }

    /// Processes one event. Returns `false` when the queue is empty or the
    /// event budget is exhausted.
    pub fn step(&mut self) -> bool {
        self.step_inner(None)
    }

    /// Runs until no events remain (quiescence) or the event budget is
    /// exhausted. Returns the final simulated time.
    pub fn run_until_quiescent(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Runs every event scheduled at or before `deadline`, then advances
    /// the clock to the deadline (time never moves backwards: a deadline
    /// in the past leaves `now` unchanged). Later events stay queued.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while self.step_inner(Some(deadline)) {}
        self.now = self.now.max(deadline);
        self.now
    }

    /// True iff no events are pending.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Ping(u32, usize);

    impl Payload for Ping {
        fn size_bytes(&self) -> usize {
            self.1
        }
    }

    /// Relays every message to `next` until the hop counter reaches zero.
    struct Relay {
        next: PeerId,
        received: Vec<u32>,
        start_with: Option<u32>,
    }

    impl Peer<Ping> for Relay {
        fn on_start(&mut self, ctx: &mut Context<Ping>) {
            if let Some(hops) = self.start_with {
                ctx.send(self.next, Ping(hops, 100));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<Ping>, _from: PeerId, msg: Ping) {
            self.received.push(msg.0);
            if msg.0 > 0 {
                ctx.send(self.next, Ping(msg.0 - 1, msg.1));
            }
        }
    }

    fn ring(n: u64, hops: u32) -> SimNet<Ping, Relay> {
        crate::builder::SimBuilder::new(SimConfig::default())
            .topology(&crate::builder::Edges::ring(n as usize), PipeConfig::lan())
            .spawn(|id| Relay {
                next: PeerId((id.0 + 1) % n),
                received: vec![],
                start_with: (id.0 == 0).then_some(hops),
            })
    }

    #[test]
    fn messages_travel_the_ring() {
        let mut net = ring(4, 7);
        let end = net.run_until_quiescent();
        // 8 deliveries of 1ms latency each.
        assert_eq!(end, SimTime::from_millis(8));
        assert_eq!(net.stats().delivered, 8);
        assert_eq!(net.peer(PeerId(1)).unwrap().received, vec![7, 3]);
        assert_eq!(net.peer(PeerId(0)).unwrap().received, vec![4, 0]);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut net = ring(5, 20);
            net.enable_trace();
            net.run_until_quiescent();
            (net.now(), net.stats(), net.trace().unwrap().to_vec())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn latency_accumulates() {
        let mut net: SimNet<Ping, Relay> = SimNet::new(SimConfig::default());
        net.add_peer(PeerId(0), Relay { next: PeerId(1), received: vec![], start_with: Some(0) });
        net.add_peer(PeerId(1), Relay { next: PeerId(0), received: vec![], start_with: None });
        net.open_pipe(
            PeerId(0),
            PeerId(1),
            PipeConfig::lan().with_latency(SimTime::from_millis(25)),
        );
        let end = net.run_until_quiescent();
        assert_eq!(end, SimTime::from_millis(25));
    }

    #[test]
    fn bandwidth_serializes_messages() {
        // Two 1000-byte messages over a 1000 B/s pipe: the second waits for
        // the first to finish transmitting.
        struct Burst {
            to: PeerId,
        }
        impl Peer<Ping> for Burst {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                ctx.send(self.to, Ping(0, 1000));
                ctx.send(self.to, Ping(0, 1000));
            }
            fn on_message(&mut self, _: &mut Context<Ping>, _: PeerId, _: Ping) {}
        }
        #[allow(clippy::type_complexity)]
        let mut net: SimNet<Ping, Burst> = {
            let mut n = SimNet::new(SimConfig::default());
            n.add_peer(PeerId(0), Burst { to: PeerId(1) });
            n.add_peer(PeerId(1), Burst { to: PeerId(0) });
            n.open_pipe(
                PeerId(0),
                PeerId(1),
                PipeConfig {
                    latency: SimTime::ZERO,
                    bandwidth_bytes_per_sec: Some(1000),
                    loss: 0.0,
                },
            );
            n
        };
        net.enable_trace();
        let end = net.run_until_quiescent();
        assert_eq!(end, SimTime::from_secs(2));
        // Per direction, the second message waits for the first to finish
        // transmitting.
        let forward: Vec<SimTime> =
            net.trace().unwrap().iter().filter(|t| t.from == PeerId(0)).map(|t| t.at).collect();
        assert_eq!(forward, vec![SimTime::from_secs(1), SimTime::from_secs(2)]);
    }

    #[test]
    fn loss_drops_deterministically() {
        let mut net: SimNet<Ping, Relay> = SimNet::new(SimConfig { seed: 1, ..Default::default() });
        net.add_peer(PeerId(0), Relay { next: PeerId(1), received: vec![], start_with: None });
        net.add_peer(PeerId(1), Relay { next: PeerId(0), received: vec![], start_with: None });
        net.open_pipe(PeerId(0), PeerId(1), PipeConfig::lan().with_loss(0.5));
        // Fire 100 one-hop messages from outside.
        for _ in 0..100 {
            net.inject(PeerId(1), PeerId(0), Ping(1, 10));
        }
        net.run_until_quiescent();
        let stats = net.stats();
        assert!(stats.dropped > 20 && stats.dropped < 80, "loss ~50%, got {}", stats.dropped);
        // Deliveries + drops account for every peer-sent message.
        assert_eq!(stats.sent, stats.delivered + stats.dropped);
    }

    #[test]
    fn send_without_pipe_is_undeliverable() {
        let mut net: SimNet<Ping, Relay> = SimNet::new(SimConfig::default());
        net.add_peer(PeerId(0), Relay { next: PeerId(9), received: vec![], start_with: Some(1) });
        net.run_until_quiescent();
        assert_eq!(net.stats().undeliverable, 1);
        assert_eq!(net.stats().sent, 0);
    }

    #[test]
    fn removed_peer_discards_in_flight() {
        let mut net = ring(3, 10);
        // Let the first hop get scheduled, then remove the receiver.
        net.step(); // start of peer 0 → send to 1 in flight
        net.remove_peer(PeerId(1));
        net.run_until_quiescent();
        assert_eq!(net.stats().delivered, 0);
        assert!(!net.has_pipe(PeerId(0), PeerId(1)));
    }

    #[test]
    fn readded_peer_receives_in_flight_messages() {
        // A message in flight toward a removed peer is delivered to a new
        // incarnation added (and re-piped) before the arrival time — the
        // slot-reuse guarantee restart_node_from_disk depends on.
        let mut net = ring(3, 10);
        net.step(); // start of peer 0 → send to 1 in flight (arrives at 1ms)
        let old = net.remove_peer(PeerId(1)).unwrap();
        assert!(old.received.is_empty());
        net.add_peer(PeerId(1), Relay { next: PeerId(2), received: vec![], start_with: None });
        net.open_pipe_default(PeerId(1), PeerId(2));
        net.run_until_quiescent();
        let revived = net.peer(PeerId(1)).unwrap();
        assert_eq!(revived.received, vec![10], "new incarnation got the in-flight message");
        // …and kept relaying: the token continued around the ring.
        assert!(net.stats().delivered > 1);
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timed {
            fired: Vec<u64>,
        }
        impl Peer<Ping> for Timed {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                ctx.set_timer(SimTime::from_millis(10), 1);
                ctx.set_timer(SimTime::from_millis(5), 2);
            }
            fn on_message(&mut self, _: &mut Context<Ping>, _: PeerId, _: Ping) {}
            fn on_timer(&mut self, _: &mut Context<Ping>, t: u64) {
                self.fired.push(t);
            }
        }
        let mut net: SimNet<Ping, Timed> = SimNet::new(SimConfig::default());
        net.add_peer(PeerId(0), Timed { fired: vec![] });
        let end = net.run_until_quiescent();
        assert_eq!(net.peer(PeerId(0)).unwrap().fired, vec![2, 1]);
        assert_eq!(end, SimTime::from_millis(10));
    }

    #[test]
    fn max_events_bounds_runaway() {
        // Peer 0 and 1 ping forever (hop count never reaches 0 because we
        // reset it).
        struct Forever {
            other: PeerId,
        }
        impl Peer<Ping> for Forever {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                ctx.send(self.other, Ping(1, 10));
            }
            fn on_message(&mut self, ctx: &mut Context<Ping>, _: PeerId, _: Ping) {
                ctx.send(self.other, Ping(1, 10));
            }
        }
        let mut net: SimNet<Ping, Forever> =
            SimNet::new(SimConfig { max_events: 50, ..Default::default() });
        net.add_peer(PeerId(0), Forever { other: PeerId(1) });
        net.add_peer(PeerId(1), Forever { other: PeerId(0) });
        net.open_pipe_default(PeerId(0), PeerId(1));
        net.run_until_quiescent();
        assert_eq!(net.events_processed(), 50);
    }

    #[test]
    fn advertisements_visible_to_peers() {
        struct Looker {
            seen: usize,
        }
        impl Peer<Ping> for Looker {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                ctx.advertise(Advertisement::peer(ctx.self_id(), "codb-node"));
                ctx.set_timer(SimTime::from_millis(1), 0);
            }
            fn on_message(&mut self, _: &mut Context<Ping>, _: PeerId, _: Ping) {}
            fn on_timer(&mut self, ctx: &mut Context<Ping>, _: u64) {
                self.seen = ctx.discover().len();
            }
        }
        let mut net: SimNet<Ping, Looker> = SimNet::new(SimConfig::default());
        net.add_peer(PeerId(0), Looker { seen: 0 });
        net.add_peer(PeerId(1), Looker { seen: 0 });
        net.run_until_quiescent();
        assert_eq!(net.peer(PeerId(0)).unwrap().seen, 2);
        assert_eq!(net.board().snapshot().len(), 2);
    }

    #[test]
    fn inject_reaches_peer_without_pipe() {
        let mut net = ring(2, 0);
        net.run_until_quiescent();
        net.inject(PeerId(99), PeerId(0), Ping(0, 5));
        net.run_until_quiescent();
        assert_eq!(net.peer(PeerId(0)).unwrap().received.last(), Some(&0));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut net = ring(4, 100);
        net.run_until(SimTime::from_millis(3));
        assert!(net.now() <= SimTime::from_millis(3));
        assert!(!net.is_quiescent());
    }

    #[test]
    fn run_until_deadline_semantics() {
        // Empty queue: the clock still advances to the deadline.
        let mut net = ring(2, 0);
        net.run_until_quiescent();
        let t0 = net.now();
        let end = net.run_until(t0 + SimTime::from_secs(5));
        assert_eq!(end, t0 + SimTime::from_secs(5));
        assert_eq!(net.now(), end);

        // Deadline in the past: time never moves backwards.
        assert_eq!(net.run_until(SimTime::ZERO), end);

        // Pending event beyond the deadline: clock stops exactly at the
        // deadline, the event stays queued and fires later.
        let mut net = ring(2, 3); // LAN pipes: one hop per ms
        let end = net.run_until(SimTime::from_micros(1500));
        assert_eq!(end, SimTime::from_micros(1500), "clock parks at the deadline");
        assert!(!net.is_quiescent(), "the 2ms hop must remain queued");
        let delivered_early = net.stats().delivered;
        net.run_until_quiescent();
        assert!(net.stats().delivered > delivered_early, "queued event fired afterwards");
    }

    #[test]
    fn per_pipe_stats_survive_close_and_removal() {
        let mut net = ring(3, 5);
        net.run_until_quiescent();
        let before = net.stats();
        let key = (PeerId(0), PeerId(1));
        let pipe_before = before.per_pipe[&key];
        assert!(pipe_before.sent > 0);
        // Closing the pipe folds its counters; totals must not change.
        net.close_pipe(PeerId(0), PeerId(1));
        let after_close = net.stats();
        assert_eq!(after_close.per_pipe[&key], pipe_before);
        // Removing the peer folds the remaining edges; still unchanged.
        net.remove_peer(PeerId(1));
        let after_remove = net.stats();
        assert_eq!(after_remove.per_pipe[&key], pipe_before);
        assert_eq!(after_remove.sent, before.sent);
        assert_eq!(after_remove.delivered, before.delivered);
    }
}

#[cfg(test)]
mod more_tests {
    use super::tests_support::*;
    use super::*;

    #[test]
    fn peer_joining_mid_run_participates() {
        let mut net: SimNet<Msg, Echo> = SimNet::new(SimConfig::default());
        net.add_peer(PeerId(0), Echo::default());
        net.run_until_quiescent();
        // Join later; the simulated clock keeps running monotonically.
        net.add_peer(PeerId(1), Echo::default());
        net.open_pipe_default(PeerId(0), PeerId(1));
        net.inject(PeerId(9), PeerId(1), Msg(3));
        net.run_until_quiescent();
        assert_eq!(net.peer(PeerId(1)).unwrap().got, vec![3]);
        assert_eq!(net.peer_ids(), vec![PeerId(0), PeerId(1)]);
    }

    #[test]
    fn pipe_reconfiguration_changes_latency() {
        let mut net: SimNet<Msg, Echo> = SimNet::new(SimConfig::default());
        net.add_peer(PeerId(0), Echo { forward: Some(PeerId(1)), ..Default::default() });
        net.add_peer(PeerId(1), Echo::default());
        net.open_pipe(PeerId(0), PeerId(1), PipeConfig::lan()); // 1ms
        net.inject(PeerId(9), PeerId(0), Msg(1));
        net.run_until_quiescent();
        let t1 = net.now();
        assert_eq!(t1, SimTime::from_millis(1));
        // Re-open with 10x latency: replaces the config in place.
        net.open_pipe(
            PeerId(0),
            PeerId(1),
            PipeConfig::lan().with_latency(SimTime::from_millis(10)),
        );
        net.inject(PeerId(9), PeerId(0), Msg(2));
        net.run_until_quiescent();
        assert_eq!(net.now(), t1 + SimTime::from_millis(10));
    }

    #[test]
    fn stats_bytes_match_payload_sizes() {
        let mut net: SimNet<Msg, Echo> = SimNet::new(SimConfig::default());
        net.add_peer(PeerId(0), Echo { forward: Some(PeerId(1)), ..Default::default() });
        net.add_peer(PeerId(1), Echo::default());
        net.open_pipe_default(PeerId(0), PeerId(1));
        net.inject(PeerId(9), PeerId(0), Msg(5));
        net.run_until_quiescent();
        // inject (4 bytes) + forward (4 bytes).
        assert_eq!(net.stats().bytes_sent, 8);
        let pipe = net.stats().per_pipe[&(PeerId(0), PeerId(1))];
        assert_eq!(pipe.bytes_sent, 4);
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    #[derive(Clone, Debug)]
    pub struct Msg(pub u32);
    impl Payload for Msg {
        fn size_bytes(&self) -> usize {
            4
        }
    }

    #[derive(Default)]
    pub struct Echo {
        pub got: Vec<u32>,
        pub forward: Option<PeerId>,
    }

    impl Peer<Msg> for Echo {
        fn on_message(&mut self, ctx: &mut Context<Msg>, _from: PeerId, msg: Msg) {
            self.got.push(msg.0);
            if let Some(to) = self.forward {
                ctx.send(to, msg);
            }
        }
    }
}
