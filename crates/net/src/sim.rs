//! The deterministic discrete-event network simulator.
//!
//! [`SimNet`] owns the peers, the pipes, an advertisement board, a seeded
//! RNG (for the loss model) and a priority queue of events. Peers are
//! state machines ([`Peer`]); every callback may emit commands which the
//! simulator applies — sends become future `Deliver` events delayed by the
//! pipe's latency/bandwidth model, timers become `Timer` events.
//!
//! Determinism: identical seeds and identical call sequences produce
//! identical runs (events are ordered by `(time, sequence-number)`, and all
//! internal maps iterate in a stable order).

use crate::discovery::{Advertisement, Board};
use crate::peer::{Command, Context, Payload, Peer, PeerId};
use crate::pipe::{PipeConfig, PipeState};
use crate::stats::NetStats;
use crate::time::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for the loss model RNG.
    pub seed: u64,
    /// Pipe parameters used by [`SimNet::open_pipe_default`].
    pub default_pipe: PipeConfig,
    /// Safety valve: abort after this many events (0 = unlimited).
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { seed: 0xC0DB, default_pipe: PipeConfig::lan(), max_events: 0 }
    }
}

enum EventKind<M> {
    Start(PeerId),
    Deliver { from: PeerId, to: PeerId, msg: M },
    Timer { peer: PeerId, timer: u64 },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One recorded message delivery (when tracing is enabled).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Delivery time.
    pub at: SimTime,
    /// Sender.
    pub from: PeerId,
    /// Receiver.
    pub to: PeerId,
    /// Payload size.
    pub bytes: usize,
}

/// The deterministic discrete-event network. Generic over the payload type
/// `M` and the (homogeneous) peer type `P`, so harnesses retain typed
/// access to peer state after a run.
pub struct SimNet<M: Payload, P: Peer<M>> {
    peers: BTreeMap<PeerId, P>,
    pipes: HashMap<(PeerId, PeerId), (PipeConfig, PipeState)>,
    board: Board,
    queue: BinaryHeap<Event<M>>,
    now: SimTime,
    seq: u64,
    rng: SmallRng,
    stats: NetStats,
    config: SimConfig,
    events_processed: u64,
    trace: Option<Vec<TraceEntry>>,
}

impl<M: Payload, P: Peer<M>> SimNet<M, P> {
    /// Creates an empty network.
    pub fn new(config: SimConfig) -> Self {
        SimNet {
            peers: BTreeMap::new(),
            pipes: HashMap::new(),
            board: Board::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: SmallRng::seed_from_u64(config.seed),
            stats: NetStats::default(),
            config,
            events_processed: 0,
            trace: None,
        }
    }

    /// Enables per-delivery tracing (for tests and message-level reports).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&[TraceEntry]> {
        self.trace.as_deref()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network statistics (ground truth).
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Immutable access to a peer's state machine.
    pub fn peer(&self, id: PeerId) -> Option<&P> {
        self.peers.get(&id)
    }

    /// Mutable access to a peer's state machine (between events).
    pub fn peer_mut(&mut self, id: PeerId) -> Option<&mut P> {
        self.peers.get_mut(&id)
    }

    /// Iterates over `(id, peer)` pairs in id order.
    pub fn peers(&self) -> impl Iterator<Item = (PeerId, &P)> {
        self.peers.iter().map(|(k, v)| (*k, v))
    }

    /// Ids of all live peers.
    pub fn peer_ids(&self) -> Vec<PeerId> {
        self.peers.keys().copied().collect()
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { at, seq, kind });
    }

    /// Adds a peer; its [`Peer::on_start`] runs at the current time.
    pub fn add_peer(&mut self, id: PeerId, peer: P) {
        self.peers.insert(id, peer);
        self.push(self.now, EventKind::Start(id));
    }

    /// Removes a peer: its pipes close, its advertisements are retracted,
    /// and in-flight messages to it are discarded at delivery time.
    /// Returns the peer state, if it existed.
    pub fn remove_peer(&mut self, id: PeerId) -> Option<P> {
        self.pipes.retain(|(a, b), _| *a != id && *b != id);
        self.board.retract_peer(id);
        self.peers.remove(&id)
    }

    /// Opens a bidirectional pipe between `a` and `b`.
    pub fn open_pipe(&mut self, a: PeerId, b: PeerId, config: PipeConfig) {
        self.pipes.insert((a, b), (config, PipeState::default()));
        self.pipes.insert((b, a), (config, PipeState::default()));
    }

    /// Opens a pipe with the configured default parameters.
    pub fn open_pipe_default(&mut self, a: PeerId, b: PeerId) {
        self.open_pipe(a, b, self.config.default_pipe);
    }

    /// Closes the pipe between `a` and `b` (both directions). Messages
    /// already in flight are still delivered.
    pub fn close_pipe(&mut self, a: PeerId, b: PeerId) {
        self.pipes.remove(&(a, b));
        self.pipes.remove(&(b, a));
    }

    /// True iff a pipe exists from `a` to `b`.
    pub fn has_pipe(&self, a: PeerId, b: PeerId) -> bool {
        self.pipes.contains_key(&(a, b))
    }

    /// Injects a message from outside the network (e.g. a test harness
    /// acting as a user at node `to`). Delivered at the current time with
    /// `from` as the apparent sender; no pipe required. Counted as a sent
    /// message so `sent == delivered + dropped` holds network-wide.
    pub fn inject(&mut self, from: PeerId, to: PeerId, msg: M) {
        self.stats.record_sent(from, to, msg.size_bytes());
        self.push(self.now, EventKind::Deliver { from, to, msg });
    }

    /// Publishes an advertisement from the harness.
    pub fn advertise(&mut self, ad: Advertisement) {
        self.board.publish(ad);
    }

    /// The advertisement board.
    pub fn board(&self) -> &Board {
        &self.board
    }

    fn apply_commands(&mut self, origin: PeerId, commands: Vec<Command<M>>) {
        for cmd in commands {
            match cmd {
                Command::Send { to, msg } => {
                    let bytes = msg.size_bytes();
                    match self.pipes.get_mut(&(origin, to)) {
                        None => self.stats.record_undeliverable(),
                        Some((config, state)) => {
                            self.stats.record_sent(origin, to, bytes);
                            let loss = config.loss;
                            let start = self.now.max(state.busy_until);
                            let done = start + config.transmission_time(bytes);
                            state.busy_until = done;
                            let arrival = done + config.latency;
                            if loss > 0.0 && self.rng.gen::<f64>() < loss {
                                self.stats.record_dropped(origin, to);
                            } else {
                                self.push(arrival, EventKind::Deliver { from: origin, to, msg });
                            }
                        }
                    }
                }
                Command::SetTimer { delay, timer } => {
                    self.push(self.now + delay, EventKind::Timer { peer: origin, timer });
                }
                Command::OpenPipe { with, config } => self.open_pipe(origin, with, config),
                Command::ClosePipe { with } => self.close_pipe(origin, with),
                Command::Advertise(ad) => self.board.publish(ad),
            }
        }
    }

    /// Processes one event. Returns `false` when the queue is empty or the
    /// event budget is exhausted.
    pub fn step(&mut self) -> bool {
        if self.config.max_events != 0 && self.events_processed >= self.config.max_events {
            return false;
        }
        let Some(ev) = self.queue.pop() else { return false };
        debug_assert!(ev.at >= self.now, "time must be monotone");
        self.now = ev.at;
        self.events_processed += 1;
        // The board snapshot is cloned so the peer callback can't observe
        // its own command effects mid-callback.
        let snapshot: Vec<Advertisement> = self.board.snapshot().to_vec();
        match ev.kind {
            EventKind::Start(id) => {
                if let Some(peer) = self.peers.get_mut(&id) {
                    let mut ctx = Context::new(id, self.now, &snapshot);
                    peer.on_start(&mut ctx);
                    let cmds = ctx.take_commands();
                    self.apply_commands(id, cmds);
                }
            }
            EventKind::Deliver { from, to, msg } => {
                if let Some(peer) = self.peers.get_mut(&to) {
                    self.stats.record_delivered(from, to);
                    if let Some(trace) = &mut self.trace {
                        trace.push(TraceEntry { at: self.now, from, to, bytes: msg.size_bytes() });
                    }
                    let mut ctx = Context::new(to, self.now, &snapshot);
                    peer.on_message(&mut ctx, from, msg);
                    let cmds = ctx.take_commands();
                    self.apply_commands(to, cmds);
                }
                // Peer gone: the in-flight message is silently discarded,
                // matching a crashed JXTA peer.
            }
            EventKind::Timer { peer: id, timer } => {
                if let Some(peer) = self.peers.get_mut(&id) {
                    let mut ctx = Context::new(id, self.now, &snapshot);
                    peer.on_timer(&mut ctx, timer);
                    let cmds = ctx.take_commands();
                    self.apply_commands(id, cmds);
                }
            }
        }
        true
    }

    /// Runs until no events remain (quiescence) or the event budget is
    /// exhausted. Returns the final simulated time.
    pub fn run_until_quiescent(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Runs while the next event is at or before `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(ev) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            if !self.step() {
                break;
            }
        }
        self.now = self.now.max(deadline.min(self.now.max(deadline)));
        self.now
    }

    /// True iff no events are pending.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Ping(u32, usize);

    impl Payload for Ping {
        fn size_bytes(&self) -> usize {
            self.1
        }
    }

    /// Relays every message to `next` until the hop counter reaches zero.
    struct Relay {
        next: PeerId,
        received: Vec<u32>,
        start_with: Option<u32>,
    }

    impl Peer<Ping> for Relay {
        fn on_start(&mut self, ctx: &mut Context<Ping>) {
            if let Some(hops) = self.start_with {
                ctx.send(self.next, Ping(hops, 100));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<Ping>, _from: PeerId, msg: Ping) {
            self.received.push(msg.0);
            if msg.0 > 0 {
                ctx.send(self.next, Ping(msg.0 - 1, msg.1));
            }
        }
    }

    fn ring(n: u64, hops: u32) -> SimNet<Ping, Relay> {
        let mut net = SimNet::new(SimConfig::default());
        for i in 0..n {
            let next = PeerId((i + 1) % n);
            net.add_peer(
                PeerId(i),
                Relay { next, received: vec![], start_with: (i == 0).then_some(hops) },
            );
        }
        for i in 0..n {
            net.open_pipe_default(PeerId(i), PeerId((i + 1) % n));
        }
        net
    }

    #[test]
    fn messages_travel_the_ring() {
        let mut net = ring(4, 7);
        let end = net.run_until_quiescent();
        // 8 deliveries of 1ms latency each.
        assert_eq!(end, SimTime::from_millis(8));
        assert_eq!(net.stats().delivered, 8);
        assert_eq!(net.peer(PeerId(1)).unwrap().received, vec![7, 3]);
        assert_eq!(net.peer(PeerId(0)).unwrap().received, vec![4, 0]);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut net = ring(5, 20);
            net.enable_trace();
            net.run_until_quiescent();
            (net.now(), net.stats().clone(), net.trace().unwrap().to_vec())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn latency_accumulates() {
        let mut net: SimNet<Ping, Relay> = SimNet::new(SimConfig::default());
        net.add_peer(PeerId(0), Relay { next: PeerId(1), received: vec![], start_with: Some(0) });
        net.add_peer(PeerId(1), Relay { next: PeerId(0), received: vec![], start_with: None });
        net.open_pipe(
            PeerId(0),
            PeerId(1),
            PipeConfig::lan().with_latency(SimTime::from_millis(25)),
        );
        let end = net.run_until_quiescent();
        assert_eq!(end, SimTime::from_millis(25));
    }

    #[test]
    fn bandwidth_serializes_messages() {
        // Two 1000-byte messages over a 1000 B/s pipe: the second waits for
        // the first to finish transmitting.
        struct Burst {
            to: PeerId,
        }
        impl Peer<Ping> for Burst {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                ctx.send(self.to, Ping(0, 1000));
                ctx.send(self.to, Ping(0, 1000));
            }
            fn on_message(&mut self, _: &mut Context<Ping>, _: PeerId, _: Ping) {}
        }
        #[allow(clippy::type_complexity)]
        let mut net: SimNet<Ping, Burst> = {
            let mut n = SimNet::new(SimConfig::default());
            n.add_peer(PeerId(0), Burst { to: PeerId(1) });
            n.add_peer(PeerId(1), Burst { to: PeerId(0) });
            n.open_pipe(
                PeerId(0),
                PeerId(1),
                PipeConfig {
                    latency: SimTime::ZERO,
                    bandwidth_bytes_per_sec: Some(1000),
                    loss: 0.0,
                },
            );
            n
        };
        net.enable_trace();
        let end = net.run_until_quiescent();
        assert_eq!(end, SimTime::from_secs(2));
        // Per direction, the second message waits for the first to finish
        // transmitting.
        let forward: Vec<SimTime> =
            net.trace().unwrap().iter().filter(|t| t.from == PeerId(0)).map(|t| t.at).collect();
        assert_eq!(forward, vec![SimTime::from_secs(1), SimTime::from_secs(2)]);
    }

    #[test]
    fn loss_drops_deterministically() {
        let mut net: SimNet<Ping, Relay> = SimNet::new(SimConfig { seed: 1, ..Default::default() });
        net.add_peer(PeerId(0), Relay { next: PeerId(1), received: vec![], start_with: None });
        net.add_peer(PeerId(1), Relay { next: PeerId(0), received: vec![], start_with: None });
        net.open_pipe(PeerId(0), PeerId(1), PipeConfig::lan().with_loss(0.5));
        // Fire 100 one-hop messages from outside.
        for _ in 0..100 {
            net.inject(PeerId(1), PeerId(0), Ping(1, 10));
        }
        net.run_until_quiescent();
        let dropped = net.stats().dropped;
        assert!(dropped > 20 && dropped < 80, "loss ~50%, got {dropped}");
        // Deliveries + drops account for every peer-sent message.
        assert_eq!(net.stats().sent, net.stats().delivered + net.stats().dropped);
    }

    #[test]
    fn send_without_pipe_is_undeliverable() {
        let mut net: SimNet<Ping, Relay> = SimNet::new(SimConfig::default());
        net.add_peer(PeerId(0), Relay { next: PeerId(9), received: vec![], start_with: Some(1) });
        net.run_until_quiescent();
        assert_eq!(net.stats().undeliverable, 1);
        assert_eq!(net.stats().sent, 0);
    }

    #[test]
    fn removed_peer_discards_in_flight() {
        let mut net = ring(3, 10);
        // Let the first hop get scheduled, then remove the receiver.
        net.step(); // start of peer 0 → send to 1 in flight
        net.remove_peer(PeerId(1));
        net.run_until_quiescent();
        assert_eq!(net.stats().delivered, 0);
        assert!(!net.has_pipe(PeerId(0), PeerId(1)));
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timed {
            fired: Vec<u64>,
        }
        impl Peer<Ping> for Timed {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                ctx.set_timer(SimTime::from_millis(10), 1);
                ctx.set_timer(SimTime::from_millis(5), 2);
            }
            fn on_message(&mut self, _: &mut Context<Ping>, _: PeerId, _: Ping) {}
            fn on_timer(&mut self, _: &mut Context<Ping>, t: u64) {
                self.fired.push(t);
            }
        }
        let mut net: SimNet<Ping, Timed> = SimNet::new(SimConfig::default());
        net.add_peer(PeerId(0), Timed { fired: vec![] });
        let end = net.run_until_quiescent();
        assert_eq!(net.peer(PeerId(0)).unwrap().fired, vec![2, 1]);
        assert_eq!(end, SimTime::from_millis(10));
    }

    #[test]
    fn max_events_bounds_runaway() {
        // Peer 0 and 1 ping forever (hop count never reaches 0 because we
        // reset it).
        struct Forever {
            other: PeerId,
        }
        impl Peer<Ping> for Forever {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                ctx.send(self.other, Ping(1, 10));
            }
            fn on_message(&mut self, ctx: &mut Context<Ping>, _: PeerId, _: Ping) {
                ctx.send(self.other, Ping(1, 10));
            }
        }
        let mut net: SimNet<Ping, Forever> =
            SimNet::new(SimConfig { max_events: 50, ..Default::default() });
        net.add_peer(PeerId(0), Forever { other: PeerId(1) });
        net.add_peer(PeerId(1), Forever { other: PeerId(0) });
        net.open_pipe_default(PeerId(0), PeerId(1));
        net.run_until_quiescent();
        assert_eq!(net.events_processed(), 50);
    }

    #[test]
    fn advertisements_visible_to_peers() {
        struct Looker {
            seen: usize,
        }
        impl Peer<Ping> for Looker {
            fn on_start(&mut self, ctx: &mut Context<Ping>) {
                ctx.advertise(Advertisement::peer(ctx.self_id(), "codb-node"));
                ctx.set_timer(SimTime::from_millis(1), 0);
            }
            fn on_message(&mut self, _: &mut Context<Ping>, _: PeerId, _: Ping) {}
            fn on_timer(&mut self, ctx: &mut Context<Ping>, _: u64) {
                self.seen = ctx.discover().len();
            }
        }
        let mut net: SimNet<Ping, Looker> = SimNet::new(SimConfig::default());
        net.add_peer(PeerId(0), Looker { seen: 0 });
        net.add_peer(PeerId(1), Looker { seen: 0 });
        net.run_until_quiescent();
        assert_eq!(net.peer(PeerId(0)).unwrap().seen, 2);
        assert_eq!(net.board().snapshot().len(), 2);
    }

    #[test]
    fn inject_reaches_peer_without_pipe() {
        let mut net = ring(2, 0);
        net.run_until_quiescent();
        net.inject(PeerId(99), PeerId(0), Ping(0, 5));
        net.run_until_quiescent();
        assert_eq!(net.peer(PeerId(0)).unwrap().received.last(), Some(&0));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut net = ring(4, 100);
        net.run_until(SimTime::from_millis(3));
        assert!(net.now() <= SimTime::from_millis(3));
        assert!(!net.is_quiescent());
    }
}

#[cfg(test)]
mod more_tests {
    use super::tests_support::*;
    use super::*;

    #[test]
    fn peer_joining_mid_run_participates() {
        let mut net: SimNet<Msg, Echo> = SimNet::new(SimConfig::default());
        net.add_peer(PeerId(0), Echo::default());
        net.run_until_quiescent();
        // Join later; the simulated clock keeps running monotonically.
        net.add_peer(PeerId(1), Echo::default());
        net.open_pipe_default(PeerId(0), PeerId(1));
        net.inject(PeerId(9), PeerId(1), Msg(3));
        net.run_until_quiescent();
        assert_eq!(net.peer(PeerId(1)).unwrap().got, vec![3]);
        assert_eq!(net.peer_ids(), vec![PeerId(0), PeerId(1)]);
    }

    #[test]
    fn pipe_reconfiguration_changes_latency() {
        let mut net: SimNet<Msg, Echo> = SimNet::new(SimConfig::default());
        net.add_peer(PeerId(0), Echo { forward: Some(PeerId(1)), ..Default::default() });
        net.add_peer(PeerId(1), Echo::default());
        net.open_pipe(PeerId(0), PeerId(1), PipeConfig::lan()); // 1ms
        net.inject(PeerId(9), PeerId(0), Msg(1));
        net.run_until_quiescent();
        let t1 = net.now();
        assert_eq!(t1, SimTime::from_millis(1));
        // Re-open with 10x latency: replaces the config in place.
        net.open_pipe(
            PeerId(0),
            PeerId(1),
            PipeConfig::lan().with_latency(SimTime::from_millis(10)),
        );
        net.inject(PeerId(9), PeerId(0), Msg(2));
        net.run_until_quiescent();
        assert_eq!(net.now(), t1 + SimTime::from_millis(10));
    }

    #[test]
    fn stats_bytes_match_payload_sizes() {
        let mut net: SimNet<Msg, Echo> = SimNet::new(SimConfig::default());
        net.add_peer(PeerId(0), Echo { forward: Some(PeerId(1)), ..Default::default() });
        net.add_peer(PeerId(1), Echo::default());
        net.open_pipe_default(PeerId(0), PeerId(1));
        net.inject(PeerId(9), PeerId(0), Msg(5));
        net.run_until_quiescent();
        // inject (4 bytes) + forward (4 bytes).
        assert_eq!(net.stats().bytes_sent, 8);
        let pipe = net.stats().per_pipe[&(PeerId(0), PeerId(1))];
        assert_eq!(pipe.bytes_sent, 4);
    }
}

#[cfg(test)]
mod tests_support {
    use super::*;

    #[derive(Clone, Debug)]
    pub struct Msg(pub u32);
    impl Payload for Msg {
        fn size_bytes(&self) -> usize {
            4
        }
    }

    #[derive(Default)]
    pub struct Echo {
        pub got: Vec<u32>,
        pub forward: Option<PeerId>,
    }

    impl Peer<Msg> for Echo {
        fn on_message(&mut self, ctx: &mut Context<Msg>, _from: PeerId, msg: Msg) {
            self.got.push(msg.0);
            if let Some(to) = self.forward {
                ctx.send(to, msg);
            }
        }
    }
}
