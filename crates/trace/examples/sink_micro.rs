//! Microbenchmark of the sink hot path: ns/event for the no-op sink,
//! the file recorder, and the file recorder with sealing factored out.
//!
//! Run with: `cargo run --release -p codb-trace --example sink_micro`

use codb_trace::{FileRecorder, NoopSink, TraceEvent, TraceSink};
use std::time::Instant;

fn main() {
    const N: u64 = 1_000_000;
    let ev = |i: u64| TraceEvent::NetSend { from: i % 1000, to: (i + 1) % 1000, bytes: 64 };

    let mut noop = NoopSink;
    let t = Instant::now();
    for i in 0..N {
        noop.record(i * 31, &ev(i));
    }
    let noop_ns = t.elapsed().as_nanos() as f64 / N as f64;

    let path = std::env::temp_dir().join("sink-micro.trc");
    let mut file = FileRecorder::create(&path).unwrap();
    let t = Instant::now();
    for i in 0..N {
        file.record(i * 31, &ev(i));
    }
    file.flush().unwrap();
    let file_ns = t.elapsed().as_nanos() as f64 / N as f64;

    // Encode-only: a block threshold so large nothing ever seals.
    let path2 = std::env::temp_dir().join("sink-micro2.trc");
    let mut big = FileRecorder::with_block_bytes(&path2, 1 << 30).unwrap();
    let t = Instant::now();
    for i in 0..N {
        big.record(i * 31, &ev(i));
    }
    let enc_ns = t.elapsed().as_nanos() as f64 / N as f64;

    println!(
        "noop: {noop_ns:.1}ns/ev  file: {file_ns:.1}ns/ev  encode-only(no seal): {enc_ns:.1}ns/ev"
    );
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(path2);
}
