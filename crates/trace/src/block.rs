//! Checksummed trace blocks, in the `codb-store` frame style.
//!
//! Layout: `[len: u32 LE][!len: u32 LE][crc32: u32 LE][payload: len bytes]`
//! — the same self-delimiting frame the WAL and snapshots use, duplicated
//! here because the dependency arrow points the other way (`codb-store`
//! *emits* trace events, so the trace crate must stay below it in the
//! crate DAG). The complemented length copy lets the scanner tell a *torn
//! tail* (a crash mid-write, tolerated as a clean end-of-trace) from a
//! *corrupted length field* (rejected loudly): bit rot in a length field
//! can never silently truncate the blocks behind it.

/// Block header size: `len` + `!len` + `crc`.
pub const BLOCK_HEADER: usize = 12;

/// Slicing-by-8 lookup tables: table 0 is the classic bytewise table,
/// table `j` maps a byte to its CRC contribution `j` positions further
/// ahead, so the hot loop folds 8 input bytes per iteration. Same
/// polynomial, same checksums as the bytewise form — only faster, which
/// matters because every sealed trace block pays one pass here.
const CRC_TABLES: [[u32; 256]; 8] = crc_tables();

const fn crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[j - 1][i];
            tables[j][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    tables
}

/// IEEE CRC-32 (the polynomial used by zip/png/ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    !crc_fold(!0u32, data)
}

/// Streaming CRC-32 with the same polynomial (and therefore the same
/// final value) as [`crc32`]. The file recorder updates it over each
/// event's freshly appended bytes — still warm in cache — so sealing a
/// block never has to re-read the whole buffer.
#[derive(Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh streaming checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        self.state = crc_fold(self.state, data);
    }

    /// The checksum of everything folded in so far (does not consume —
    /// more updates may follow after a peek).
    pub fn finish(&self) -> u32 {
        !self.state
    }

    /// Rewinds to the fresh state (start of a new block).
    pub fn reset(&mut self) {
        self.state = !0;
    }
}

fn crc_fold(mut c: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = (c >> 8) ^ CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize];
    }
    c
}

/// Appends one block wrapping `payload` to `out`.
pub fn encode_block(payload: &[u8], out: &mut Vec<u8>) {
    let len = payload.len() as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&(!len).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One step of block scanning.
#[derive(Debug, PartialEq, Eq)]
pub enum BlockStep<'a> {
    /// A complete, checksum-valid block.
    Block(&'a [u8]),
    /// End of input exactly at a block boundary.
    End,
    /// The remaining bytes are a prefix of a block (crash mid-write): the
    /// header is cut off, or a *validated* header promises more payload
    /// than the file holds.
    TornTail,
    /// The block is damaged: its length check or payload checksum failed.
    Corrupt {
        /// Byte offset of the block's header within the scanned region.
        offset: usize,
        /// What failed.
        reason: String,
    },
}

/// Iterator-style scanner over a byte region containing blocks.
pub struct BlockScanner<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BlockScanner<'a> {
    /// Scans `buf` (which must start at a block boundary).
    pub fn new(buf: &'a [u8]) -> Self {
        BlockScanner { buf, pos: 0 }
    }

    /// Byte offset of the next unread block header.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Advances to the next block.
    pub fn next_block(&mut self) -> BlockStep<'a> {
        let rest = &self.buf[self.pos..];
        if rest.is_empty() {
            return BlockStep::End;
        }
        if rest.len() < BLOCK_HEADER {
            return BlockStep::TornTail;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        let len_inv = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len_inv != !len {
            return BlockStep::Corrupt {
                offset: self.pos,
                reason: format!("length check failed: len {len:#010x}, complement {len_inv:#010x}"),
            };
        }
        let stored = u32::from_le_bytes(rest[8..12].try_into().expect("4 bytes"));
        let Some(payload) = rest.get(BLOCK_HEADER..BLOCK_HEADER + len as usize) else {
            return BlockStep::TornTail;
        };
        let computed = crc32(payload);
        if computed != stored {
            return BlockStep::Corrupt {
                offset: self.pos,
                reason: format!(
                    "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                ),
            };
        }
        self.pos += BLOCK_HEADER + len as usize;
        BlockStep::Block(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_multiple_blocks() {
        let mut buf = Vec::new();
        encode_block(b"alpha", &mut buf);
        encode_block(b"", &mut buf);
        encode_block(b"beta-beta", &mut buf);
        let mut sc = BlockScanner::new(&buf);
        assert_eq!(sc.next_block(), BlockStep::Block(b"alpha" as &[u8]));
        assert_eq!(sc.next_block(), BlockStep::Block(b"" as &[u8]));
        assert_eq!(sc.next_block(), BlockStep::Block(b"beta-beta" as &[u8]));
        assert_eq!(sc.next_block(), BlockStep::End);
    }

    #[test]
    fn truncation_is_torn_not_corrupt() {
        let mut buf = Vec::new();
        encode_block(b"payload-bytes", &mut buf);
        for cut in 1..buf.len() {
            let mut sc = BlockScanner::new(&buf[..cut]);
            assert_eq!(sc.next_block(), BlockStep::TornTail, "cut at {cut}");
        }
    }

    #[test]
    fn length_bit_flip_is_corrupt_not_torn() {
        let mut buf = Vec::new();
        encode_block(b"first", &mut buf);
        encode_block(b"second", &mut buf);
        buf[1] ^= 0x80;
        match BlockScanner::new(&buf).next_block() {
            BlockStep::Corrupt { offset: 0, reason } => {
                assert!(reason.contains("length check"), "{reason}");
            }
            other => panic!("expected length-check corruption, got {other:?}"),
        }
    }
}
