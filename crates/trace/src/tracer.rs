//! The [`Tracer`] handle threaded through the stack.
//!
//! One cloneable handle is shared by the simulator, every node and every
//! store. Disabled (the default) it is a single `Option` branch per
//! would-be event — no lock, no allocation, no clock read. Enabled, it
//! stamps each event from a shared trace clock (the simulator sets it to
//! sim-time before dispatching each event, so nested node/store events
//! inherit the simulated instant) and forwards to one shared
//! [`TraceSink`] behind a mutex.

use crate::event::TraceEvent;
use crate::sink::{FileRecorder, RingRecorder, TraceSink};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Host monotonic nanoseconds since the first call in this process —
/// what [`TraceEvent::PhaseBegin`]/[`TraceEvent::PhaseEnd`] carry so a
/// reader can attribute *wall-clock* time to phases independently of the
/// (simulated) trace clock.
pub fn host_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

struct Inner {
    clock: AtomicU64,
    sink: Arc<Mutex<dyn TraceSink>>,
    interned: Mutex<HashMap<String, u32>>,
}

/// A cloneable recording handle; see the module docs.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.is_enabled()).finish()
    }
}

/// Recovers a sink guard even if a previous holder panicked mid-record —
/// a poisoned trace mutex must never take the database down with it.
fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Tracer {
    /// The no-op handle: every emit is one branch, nothing is recorded.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer recording into `sink`. The caller keeps its own `Arc` to
    /// the sink and reads it back (or flushes it) after the run.
    pub fn new(sink: Arc<Mutex<dyn TraceSink>>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                clock: AtomicU64::new(0),
                sink,
                interned: Mutex::new(HashMap::new()),
            })),
        }
    }

    /// Convenience: a tracer over a fresh [`RingRecorder`] keeping the
    /// last `capacity` events, returning both handles.
    pub fn ring(capacity: usize) -> (Tracer, Arc<Mutex<RingRecorder>>) {
        let ring = Arc::new(Mutex::new(RingRecorder::new(capacity)));
        (Tracer::new(ring.clone()), ring)
    }

    /// Convenience: a tracer over a fresh [`FileRecorder`] writing to
    /// `path`, returning both handles (keep the recorder to flush it).
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<(Tracer, Arc<Mutex<FileRecorder>>)> {
        let file = Arc::new(Mutex::new(FileRecorder::create(path)?));
        Ok((Tracer::new(file.clone()), file))
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the trace clock (nanoseconds). The simulator calls this with
    /// sim-time before dispatching each event.
    pub fn set_clock(&self, nanos: u64) {
        if let Some(inner) = &self.inner {
            inner.clock.store(nanos, Ordering::Relaxed);
        }
    }

    /// The current trace clock (0 when disabled).
    pub fn clock(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.load(Ordering::Relaxed))
    }

    /// Records `ev` stamped at the current trace clock.
    pub fn emit(&self, ev: TraceEvent) {
        if let Some(inner) = &self.inner {
            let at = inner.clock.load(Ordering::Relaxed);
            lock(&inner.sink).record(at, &ev);
        }
    }

    /// Records the event built by `f` — the closure never runs when the
    /// tracer is disabled, so argument computation is free in the off
    /// state.
    pub fn emit_with(&self, f: impl FnOnce() -> TraceEvent) {
        if self.is_enabled() {
            self.emit(f());
        }
    }

    /// Interns `text`, emitting the [`TraceEvent::Intern`] binding the
    /// first time it is seen. Returns 0 without recording anything when
    /// disabled.
    pub fn intern(&self, text: &str) -> u32 {
        let Some(inner) = &self.inner else {
            return 0;
        };
        let fresh = {
            let mut table = lock(&inner.interned);
            match table.get(text) {
                Some(&id) => return id,
                None => {
                    // Ids start at 1: 0 is the disabled-tracer sentinel.
                    let id = table.len() as u32 + 1;
                    table.insert(text.to_owned(), id);
                    id
                }
            }
        };
        self.emit(TraceEvent::Intern { id: fresh, text: text.to_owned() });
        fresh
    }

    /// Marks the start of phase `name` (host wall-clock stamped).
    pub fn phase_begin(&self, name: &str) {
        if self.is_enabled() {
            let name = self.intern(name);
            self.emit(TraceEvent::PhaseBegin { name, host_nanos: host_nanos() });
        }
    }

    /// Marks the end of phase `name` (host wall-clock stamped).
    pub fn phase_end(&self, name: &str) {
        if self.is_enabled() {
            let name = self.intern(name);
            self.emit(TraceEvent::PhaseEnd { name, host_nanos: host_nanos() });
        }
    }

    /// Runs `f` bracketed by phase markers.
    pub fn phase<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        self.phase_begin(name);
        let out = f();
        self.phase_end(name);
        out
    }

    /// Flushes the underlying sink (seals a file recorder's open block).
    pub fn flush(&self) -> std::io::Result<()> {
        match &self.inner {
            Some(inner) => lock(&inner.sink).flush(),
            None => Ok(()),
        }
    }
}
