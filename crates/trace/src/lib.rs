//! coDB flight recorder: a low-overhead binary trace of what a run
//! actually did.
//!
//! A million-message simulator run used to be a black box — a failing
//! seeded faultplan or a slow E19 sweep could only be diagnosed by
//! re-running under ad-hoc prints. This crate is the instrument: every
//! layer of the stack emits typed [`TraceEvent`]s through one shared
//! [`Tracer`] handle into a pluggable [`TraceSink`], and the read side
//! turns the recorded stream back into a postmortem — a human-readable
//! dump, or a summary with per-phase time attribution, per-peer traffic
//! and an fsync-latency histogram ([`Summary`]).
//!
//! ## Wire format
//!
//! A trace file is the 8-byte magic [`TRACE_MAGIC`] (`CODBTRC1` — the
//! trailing byte is the format version) followed by CRC-framed blocks in
//! the `codb-store` frame style (`len`/`!len`/`crc32` header). Each
//! block's payload is one absolute base timestamp followed by events,
//! each a ZigZag timestamp *delta* plus a tag byte plus LEB128 varint
//! fields (the primitives of [`codb_relational::binenc`]) — a hot-path
//! event is a handful of bytes. Strings are interned in-stream
//! ([`TraceEvent::Intern`]), so the trace is self-describing.
//!
//! The reader treats a torn final block as a **clean end-of-trace**: a
//! crash mid-run still yields a readable prefix, which is the whole
//! point of a flight recorder. Anything else — a flipped bit, an unknown
//! tag, trailing garbage — is a typed [`TraceError`], never a panic.
//!
//! ## The off state costs one branch
//!
//! [`Tracer::disabled`] carries no sink at all; every emission site
//! compiles down to one `Option` discriminant test. Recording is opt-in
//! per run: attach a [`RingRecorder`] (bounded memory, last-N events)
//! for always-on crash forensics, or a [`FileRecorder`] (streaming,
//! CRC-framed) for full-run profiling.

pub mod block;
pub mod event;
pub mod inspect;
pub mod reader;
pub mod sink;
pub mod tracer;

pub use event::TraceEvent;
pub use inspect::{fmt_nanos, FsyncHistogram, PeerTraffic, PhaseSummary, Summary};
pub use reader::{dump, read_trace, read_trace_file, TraceError, TraceFile};
pub use sink::{FileRecorder, NoopSink, RingRecorder, TraceSink};
pub use tracer::{host_nanos, Tracer};

/// Magic prefix of every trace file; the eighth byte is the format
/// version.
pub const TRACE_MAGIC: [u8; 8] = *b"CODBTRC1";

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn disabled_tracer_records_nothing_and_interns_zero() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.intern("anything"), 0);
        t.set_clock(99);
        assert_eq!(t.clock(), 0);
        t.emit(TraceEvent::NetTimer { peer: 1, timer: 2 });
        t.emit_with(|| unreachable!("closure must not run when disabled"));
        t.flush().unwrap();
    }

    #[test]
    fn ring_round_trips_through_bytes() {
        let (t, ring) = Tracer::ring(64);
        t.set_clock(100);
        let rule = t.intern("r1");
        t.emit(TraceEvent::UpdateApply { peer: 4, rule, tuples: 9 });
        t.set_clock(250);
        t.emit(TraceEvent::NetSend { from: 4, to: 5, bytes: 32 });
        let bytes = ring.lock().unwrap().to_bytes();
        let trace = read_trace(&bytes).unwrap();
        assert!(!trace.torn);
        assert_eq!(
            trace.events,
            vec![
                (100, TraceEvent::Intern { id: 1, text: "r1".into() }),
                (100, TraceEvent::UpdateApply { peer: 4, rule: 1, tuples: 9 }),
                (250, TraceEvent::NetSend { from: 4, to: 5, bytes: 32 }),
            ]
        );
    }

    #[test]
    fn ring_evicts_events_but_never_interns() {
        let (t, ring) = Tracer::ring(2);
        let name = t.intern("kept");
        for i in 0..10 {
            t.set_clock(i);
            t.emit(TraceEvent::NetTimer { peer: i, timer: 0 });
        }
        let r = ring.lock().unwrap();
        assert_eq!(r.evicted(), 8);
        let events = r.events();
        assert_eq!(events.len(), 3); // 1 intern + last 2
        assert_eq!(events[0].1, TraceEvent::Intern { id: name, text: "kept".into() });
        assert_eq!(events[1].1, TraceEvent::NetTimer { peer: 8, timer: 0 });
    }

    #[test]
    fn file_recorder_round_trips_across_blocks() {
        let dir = std::env::temp_dir().join(format!("codb-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("multi-block.trc");
        let file = Arc::new(Mutex::new(FileRecorder::with_block_bytes(&path, 32).unwrap()));
        let t = Tracer::new(file.clone());
        for i in 0..100u64 {
            t.set_clock(i * 10);
            t.emit(TraceEvent::NetSend { from: i, to: i + 1, bytes: 64 });
        }
        t.flush().unwrap();
        let trace = read_trace_file(&path).unwrap();
        assert!(!trace.torn);
        assert_eq!(trace.events.len(), 100);
        assert_eq!(trace.events[42], (420, TraceEvent::NetSend { from: 42, to: 43, bytes: 64 }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn phase_markers_bracket_work() {
        let (t, ring) = Tracer::ring(16);
        let out = t.phase("flood", || 7);
        assert_eq!(out, 7);
        let bytes = ring.lock().unwrap().to_bytes();
        let trace = read_trace(&bytes).unwrap();
        let s = Summary::from_trace(&trace);
        assert_eq!(s.phases.len(), 1);
        assert_eq!(s.phases[0].name, "flood");
        assert!(!s.phases[0].open);
    }

    #[test]
    fn torn_tail_is_a_clean_end() {
        let (t, ring) = Tracer::ring(16);
        t.set_clock(5);
        t.emit(TraceEvent::NetTimer { peer: 1, timer: 1 });
        let mut bytes = ring.lock().unwrap().to_bytes();
        let full = read_trace(&bytes).unwrap();
        assert_eq!(full.events.len(), 1);
        bytes.truncate(bytes.len() - 1);
        let torn = read_trace(&bytes).unwrap();
        assert!(torn.torn);
        assert!(torn.events.is_empty());
    }

    #[test]
    fn empty_trace_is_valid() {
        let trace = read_trace(&TRACE_MAGIC).unwrap();
        assert!(trace.events.is_empty());
        assert!(!trace.torn);
    }

    #[test]
    fn bad_magic_is_a_typed_error() {
        assert!(matches!(read_trace(b"NOTATRCE"), Err(TraceError::BadMagic { .. })));
        assert!(matches!(read_trace(b"COD"), Err(TraceError::BadMagic { .. })));
    }
}
