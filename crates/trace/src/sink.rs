//! Where recorded events go: the [`TraceSink`] trait and its three
//! implementations — discard ([`NoopSink`]), keep the last N in memory
//! ([`RingRecorder`]), stream to disk ([`FileRecorder`]).

use crate::block::{encode_block, Crc32};
use crate::event::{put_event, TraceEvent};
use crate::TRACE_MAGIC;
use codb_relational::binenc::put_i64;
use codb_relational::binenc::put_u64;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Byte threshold at which [`FileRecorder`] seals the open block. Small
/// enough that a crash loses at most a sliver of recent events and the
/// resident buffer stays cache-friendly next to a hot simulator loop,
/// large enough that the 12-byte block header is noise.
pub const DEFAULT_BLOCK_BYTES: usize = 16 * 1024;

/// A destination for recorded events.
///
/// Implementations receive every event *with* its already-stamped
/// timestamp; they decide retention (ring), encoding (file) or nothing
/// (no-op). The [`crate::Tracer`] in front of a sink is what makes the
/// disabled path free — a disabled tracer never calls its sink.
pub trait TraceSink: Send {
    /// Records one event stamped at `at` (trace-clock nanoseconds).
    fn record(&mut self, at: u64, ev: &TraceEvent);

    /// Flushes any buffered state (a file recorder seals and writes its
    /// open block). The default is a no-op.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The zero-cost default: discards everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&mut self, _at: u64, _ev: &TraceEvent) {}
}

/// Bounded in-memory recorder: keeps the **last** `capacity` events.
///
/// [`TraceEvent::Intern`] bindings are stored in a separate, never
/// evicted list — eviction of old events must not orphan the string ids
/// the survivors reference.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    events: VecDeque<(u64, TraceEvent)>,
    interns: Vec<(u64, TraceEvent)>,
    evicted: u64,
}

impl RingRecorder {
    /// A ring keeping the last `capacity` non-intern events.
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            interns: Vec::new(),
            evicted: 0,
        }
    }

    /// The retained events: every intern binding first, then the last-N
    /// window in arrival order.
    pub fn events(&self) -> Vec<(u64, TraceEvent)> {
        self.interns.iter().chain(self.events.iter()).cloned().collect()
    }

    /// How many events fell out of the window.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Serialises the retained window as a complete trace (magic +
    /// blocks), as [`crate::read_trace`] expects.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = TRACE_MAGIC.to_vec();
        let mut payload = Vec::new();
        let mut prev = 0u64;
        let mut first = true;
        for (at, ev) in self.interns.iter().chain(self.events.iter()) {
            if first {
                put_u64(&mut payload, *at);
                prev = *at;
                first = false;
            }
            // Wrapping delta: the reader reconstructs with wrapping_add,
            // so any timestamp jump (even > i64::MAX) survives.
            put_i64(&mut payload, at.wrapping_sub(prev) as i64);
            prev = *at;
            put_event(&mut payload, ev);
        }
        if !payload.is_empty() {
            encode_block(&payload, &mut out);
        }
        out
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, at: u64, ev: &TraceEvent) {
        if matches!(ev, TraceEvent::Intern { .. }) {
            self.interns.push((at, ev.clone()));
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back((at, ev.clone()));
    }
}

/// Streams events to a file as CRC-framed blocks.
///
/// The magic header is written at creation; events accumulate in an open
/// block that is sealed (framed, CRC'd, written) every
/// [`DEFAULT_BLOCK_BYTES`] or on [`TraceSink::flush`]. A crash mid-run
/// therefore costs at most the open block — everything sealed before it
/// reads back cleanly, and the torn remainder is a clean end-of-trace to
/// the reader. Each block's first timestamp is absolute (later ones are
/// ZigZag deltas), so a lost block never breaks the decode of its
/// successors' times.
#[derive(Debug)]
pub struct FileRecorder {
    out: BufWriter<File>,
    block: Vec<u8>,
    /// Running checksum of `block`, folded in as events are appended (the
    /// fresh bytes are still in cache) so sealing never re-reads the
    /// buffer.
    crc: Crc32,
    block_bytes: usize,
    prev_at: u64,
    recorded: u64,
}

impl FileRecorder {
    /// Creates (truncates) `path` and writes the magic header.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::with_block_bytes(path, DEFAULT_BLOCK_BYTES)
    }

    /// [`FileRecorder::create`] with a custom block-seal threshold
    /// (tests use tiny blocks to pin the multi-block layout).
    pub fn with_block_bytes(path: impl AsRef<Path>, block_bytes: usize) -> std::io::Result<Self> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&TRACE_MAGIC)?;
        let block_bytes = block_bytes.max(16);
        Ok(FileRecorder {
            out,
            // Headroom past the seal threshold: the event that crosses it
            // finishes encoding before the seal, so the buffer never
            // reallocates mid-record.
            block: Vec::with_capacity(block_bytes + 256),
            crc: Crc32::new(),
            block_bytes,
            prev_at: 0,
            recorded: 0,
        })
    }

    /// Events recorded so far.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    fn seal_block(&mut self) -> std::io::Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        // Frame written directly from the running state — the payload is
        // only read once more, sequentially, by the write below.
        let len = self.block.len() as u32;
        self.out.write_all(&len.to_le_bytes())?;
        self.out.write_all(&(!len).to_le_bytes())?;
        self.out.write_all(&self.crc.finish().to_le_bytes())?;
        self.out.write_all(&self.block)?;
        self.block.clear();
        self.crc.reset();
        Ok(())
    }
}

impl TraceSink for FileRecorder {
    fn record(&mut self, at: u64, ev: &TraceEvent) {
        let start = self.block.len();
        if self.block.is_empty() {
            put_u64(&mut self.block, at);
            self.prev_at = at;
        }
        // Wrapping delta — mirrors the reader's wrapping_add reconstruction.
        put_i64(&mut self.block, at.wrapping_sub(self.prev_at) as i64);
        self.prev_at = at;
        put_event(&mut self.block, ev);
        self.crc.update(&self.block[start..]);
        self.recorded += 1;
        if self.block.len() >= self.block_bytes {
            // A failed seal is latched silently here (the hot path cannot
            // return errors); the final explicit flush surfaces it.
            let _ = self.seal_block();
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.seal_block()?;
        self.out.flush()
    }
}

impl Drop for FileRecorder {
    fn drop(&mut self) {
        let _ = TraceSink::flush(self);
    }
}
