//! The typed event model and its wire encoding.
//!
//! Every event is `[tag: u8][fields…]` where every numeric field is a
//! LEB128 varint from [`codb_relational::binenc`] (ZigZag for the one
//! signed field family, the timestamp *deltas*, which live one layer up
//! in the block writer). Hot-path events — a simulator send, a WAL
//! append — are therefore a handful of bytes: one tag plus two or three
//! small varints. Strings never appear in hot-path events; they are
//! bound once by an [`TraceEvent::Intern`] record and referenced by id
//! afterwards, which keeps the stream self-describing (the intern table
//! is *in* the stream, not beside it).

use codb_relational::binenc::{put_str, put_u32, put_u64, BinDecodeError, Reader};

const TAG_INTERN: u8 = 0;
const TAG_PHASE_BEGIN: u8 = 1;
const TAG_PHASE_END: u8 = 2;
const TAG_NET_SEND: u8 = 3;
const TAG_NET_DELIVER: u8 = 4;
const TAG_NET_DROP: u8 = 5;
const TAG_NET_TIMER: u8 = 6;
const TAG_UPDATE_APPLY: u8 = 7;
const TAG_RULE_FIRE: u8 = 8;
const TAG_DS_ACK: u8 = 9;
const TAG_DS_CREDIT: u8 = 10;
const TAG_REJOIN_ANNOUNCE: u8 = 11;
const TAG_REJOIN_RECV: u8 = 12;
const TAG_REJOIN_ACK: u8 = 13;
const TAG_WAL_APPEND: u8 = 14;
const TAG_FSYNC: u8 = 15;
const TAG_GROUP_DRAIN: u8 = 16;
const TAG_CHECKPOINT: u8 = 17;
const TAG_BARRIER_HOLD: u8 = 18;
const TAG_BARRIER_RELEASE: u8 = 19;

/// One recorded occurrence, from any layer of the stack.
///
/// The variants mirror the three instrumented layers: `Net*` from the
/// discrete-event simulator, `UpdateApply`/`RuleFire`/`Ds*`/`Rejoin*`/
/// `Barrier*` from the coDB node protocol, and `WalAppend`/`Fsync`/`GroupDrain`/
/// `Checkpoint` from the storage engine. `Intern` and the two `Phase*`
/// markers belong to the trace itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Binds string-intern `id` to `text` for the rest of the stream.
    Intern {
        /// The id later events reference.
        id: u32,
        /// The interned text.
        text: String,
    },
    /// A named phase opens (host wall-clock attribution starts here).
    PhaseBegin {
        /// Interned phase name.
        name: u32,
        /// Host monotonic nanoseconds at the boundary.
        host_nanos: u64,
    },
    /// A named phase closes.
    PhaseEnd {
        /// Interned phase name.
        name: u32,
        /// Host monotonic nanoseconds at the boundary.
        host_nanos: u64,
    },
    /// The simulator handed a message to a pipe.
    NetSend {
        /// Sending peer id.
        from: u64,
        /// Destination peer id.
        to: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// The simulator delivered a message to its destination.
    NetDeliver {
        /// Sending peer id.
        from: u64,
        /// Destination peer id.
        to: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// The loss model dropped a message in flight.
    NetDrop {
        /// Sending peer id.
        from: u64,
        /// Destination peer id.
        to: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// A peer timer fired.
    NetTimer {
        /// The peer whose timer fired.
        peer: u64,
        /// The peer-chosen timer token.
        timer: u64,
    },
    /// A node applied an incoming batch of rule firings.
    UpdateApply {
        /// Applying node (peer id).
        peer: u64,
        /// Interned coordination-rule name.
        rule: u32,
        /// Tuples actually added (post duplicate suppression).
        tuples: u64,
    },
    /// A node evaluated a coordination rule and pushed fresh firings.
    RuleFire {
        /// Evaluating node (peer id).
        peer: u64,
        /// Destination node of the rule's link (peer id).
        link: u64,
        /// Fresh firings sent (post sent-cache suppression).
        firings: u64,
    },
    /// A node acknowledged received update data (Dijkstra–Scholten).
    DsAck {
        /// Acknowledging node (peer id).
        peer: u64,
        /// The node being acknowledged (peer id).
        to: u64,
        /// Credits returned.
        credits: u64,
    },
    /// A node's Dijkstra–Scholten deficit changed on a received ack.
    DsCredit {
        /// The node whose deficit shrank (peer id).
        peer: u64,
        /// Credits received.
        credits: u64,
        /// Remaining deficit after applying them.
        deficit: u64,
    },
    /// A recovered node announced a new epoch to its acquaintances.
    RejoinAnnounce {
        /// Rejoining node (peer id).
        peer: u64,
        /// The announced epoch.
        epoch: u64,
    },
    /// A node received a rejoin announcement.
    RejoinRecv {
        /// Receiving node (peer id).
        peer: u64,
        /// The rejoining node (peer id).
        from: u64,
        /// Sent-cache entries invalidated toward the rejoiner.
        invalidated: u64,
    },
    /// A rejoining node collected one handshake acknowledgement.
    RejoinAck {
        /// Rejoining node (peer id).
        peer: u64,
        /// The acquaintance that acknowledged (peer id).
        from: u64,
        /// Acknowledgements still outstanding.
        pending: u64,
    },
    /// The storage engine appended one record to its WAL.
    WalAppend {
        /// Interned store name (its directory).
        store: u32,
        /// Encoded frame bytes appended.
        bytes: u64,
    },
    /// The storage engine synced its WAL to disk.
    Fsync {
        /// Interned store name.
        store: u32,
        /// Host nanoseconds the sync took.
        nanos: u64,
    },
    /// The shared group-commit scheduler drained a batch.
    GroupDrain {
        /// Dirty stores visited.
        stores: u64,
        /// Records made durable.
        records: u64,
        /// Physical fsyncs issued.
        fsyncs: u64,
    },
    /// The storage engine rotated to a fresh checkpoint generation.
    Checkpoint {
        /// Interned store name.
        store: u32,
        /// The new generation number.
        generation: u64,
    },
    /// A node parked messages behind the rejoin barrier: retransmission
    /// toward a peer exhausted its budget on traffic that must survive
    /// the peer's crash, so the traffic is held for its next incarnation.
    BarrierHold {
        /// The holding node (peer id).
        peer: u64,
        /// The presumed-crashed peer the traffic is held for (peer id).
        toward: u64,
        /// Messages parked by this event.
        held: u64,
    },
    /// A node lifted the rejoin barrier: the barred peer was heard from
    /// again and the parked messages were re-sent in order.
    BarrierRelease {
        /// The releasing node (peer id).
        peer: u64,
        /// The peer that came back (peer id).
        toward: u64,
        /// Messages released by this event.
        released: u64,
    },
}

impl TraceEvent {
    /// The variant name, for per-kind counting and display.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Intern { .. } => "Intern",
            TraceEvent::PhaseBegin { .. } => "PhaseBegin",
            TraceEvent::PhaseEnd { .. } => "PhaseEnd",
            TraceEvent::NetSend { .. } => "NetSend",
            TraceEvent::NetDeliver { .. } => "NetDeliver",
            TraceEvent::NetDrop { .. } => "NetDrop",
            TraceEvent::NetTimer { .. } => "NetTimer",
            TraceEvent::UpdateApply { .. } => "UpdateApply",
            TraceEvent::RuleFire { .. } => "RuleFire",
            TraceEvent::DsAck { .. } => "DsAck",
            TraceEvent::DsCredit { .. } => "DsCredit",
            TraceEvent::RejoinAnnounce { .. } => "RejoinAnnounce",
            TraceEvent::RejoinRecv { .. } => "RejoinRecv",
            TraceEvent::RejoinAck { .. } => "RejoinAck",
            TraceEvent::WalAppend { .. } => "WalAppend",
            TraceEvent::Fsync { .. } => "Fsync",
            TraceEvent::GroupDrain { .. } => "GroupDrain",
            TraceEvent::Checkpoint { .. } => "Checkpoint",
            TraceEvent::BarrierHold { .. } => "BarrierHold",
            TraceEvent::BarrierRelease { .. } => "BarrierRelease",
        }
    }
}

/// Appends one event (tag + fields, no timestamp — the block layer owns
/// time).
pub fn put_event(out: &mut Vec<u8>, ev: &TraceEvent) {
    match ev {
        TraceEvent::Intern { id, text } => {
            out.push(TAG_INTERN);
            put_u32(out, *id);
            put_str(out, text);
        }
        TraceEvent::PhaseBegin { name, host_nanos } => {
            out.push(TAG_PHASE_BEGIN);
            put_u32(out, *name);
            put_u64(out, *host_nanos);
        }
        TraceEvent::PhaseEnd { name, host_nanos } => {
            out.push(TAG_PHASE_END);
            put_u32(out, *name);
            put_u64(out, *host_nanos);
        }
        TraceEvent::NetSend { from, to, bytes } => {
            out.push(TAG_NET_SEND);
            put_u64(out, *from);
            put_u64(out, *to);
            put_u64(out, *bytes);
        }
        TraceEvent::NetDeliver { from, to, bytes } => {
            out.push(TAG_NET_DELIVER);
            put_u64(out, *from);
            put_u64(out, *to);
            put_u64(out, *bytes);
        }
        TraceEvent::NetDrop { from, to, bytes } => {
            out.push(TAG_NET_DROP);
            put_u64(out, *from);
            put_u64(out, *to);
            put_u64(out, *bytes);
        }
        TraceEvent::NetTimer { peer, timer } => {
            out.push(TAG_NET_TIMER);
            put_u64(out, *peer);
            put_u64(out, *timer);
        }
        TraceEvent::UpdateApply { peer, rule, tuples } => {
            out.push(TAG_UPDATE_APPLY);
            put_u64(out, *peer);
            put_u32(out, *rule);
            put_u64(out, *tuples);
        }
        TraceEvent::RuleFire { peer, link, firings } => {
            out.push(TAG_RULE_FIRE);
            put_u64(out, *peer);
            put_u64(out, *link);
            put_u64(out, *firings);
        }
        TraceEvent::DsAck { peer, to, credits } => {
            out.push(TAG_DS_ACK);
            put_u64(out, *peer);
            put_u64(out, *to);
            put_u64(out, *credits);
        }
        TraceEvent::DsCredit { peer, credits, deficit } => {
            out.push(TAG_DS_CREDIT);
            put_u64(out, *peer);
            put_u64(out, *credits);
            put_u64(out, *deficit);
        }
        TraceEvent::RejoinAnnounce { peer, epoch } => {
            out.push(TAG_REJOIN_ANNOUNCE);
            put_u64(out, *peer);
            put_u64(out, *epoch);
        }
        TraceEvent::RejoinRecv { peer, from, invalidated } => {
            out.push(TAG_REJOIN_RECV);
            put_u64(out, *peer);
            put_u64(out, *from);
            put_u64(out, *invalidated);
        }
        TraceEvent::RejoinAck { peer, from, pending } => {
            out.push(TAG_REJOIN_ACK);
            put_u64(out, *peer);
            put_u64(out, *from);
            put_u64(out, *pending);
        }
        TraceEvent::WalAppend { store, bytes } => {
            out.push(TAG_WAL_APPEND);
            put_u32(out, *store);
            put_u64(out, *bytes);
        }
        TraceEvent::Fsync { store, nanos } => {
            out.push(TAG_FSYNC);
            put_u32(out, *store);
            put_u64(out, *nanos);
        }
        TraceEvent::GroupDrain { stores, records, fsyncs } => {
            out.push(TAG_GROUP_DRAIN);
            put_u64(out, *stores);
            put_u64(out, *records);
            put_u64(out, *fsyncs);
        }
        TraceEvent::Checkpoint { store, generation } => {
            out.push(TAG_CHECKPOINT);
            put_u32(out, *store);
            put_u64(out, *generation);
        }
        TraceEvent::BarrierHold { peer, toward, held } => {
            out.push(TAG_BARRIER_HOLD);
            put_u64(out, *peer);
            put_u64(out, *toward);
            put_u64(out, *held);
        }
        TraceEvent::BarrierRelease { peer, toward, released } => {
            out.push(TAG_BARRIER_RELEASE);
            put_u64(out, *peer);
            put_u64(out, *toward);
            put_u64(out, *released);
        }
    }
}

/// Decodes one event; an unknown tag is a typed error, never a guess.
pub fn take_event(r: &mut Reader<'_>) -> Result<TraceEvent, BinDecodeError> {
    let at = r.offset();
    match r.byte()? {
        TAG_INTERN => Ok(TraceEvent::Intern { id: r.u32()?, text: r.str()? }),
        TAG_PHASE_BEGIN => Ok(TraceEvent::PhaseBegin { name: r.u32()?, host_nanos: r.u64()? }),
        TAG_PHASE_END => Ok(TraceEvent::PhaseEnd { name: r.u32()?, host_nanos: r.u64()? }),
        TAG_NET_SEND => Ok(TraceEvent::NetSend { from: r.u64()?, to: r.u64()?, bytes: r.u64()? }),
        TAG_NET_DELIVER => {
            Ok(TraceEvent::NetDeliver { from: r.u64()?, to: r.u64()?, bytes: r.u64()? })
        }
        TAG_NET_DROP => Ok(TraceEvent::NetDrop { from: r.u64()?, to: r.u64()?, bytes: r.u64()? }),
        TAG_NET_TIMER => Ok(TraceEvent::NetTimer { peer: r.u64()?, timer: r.u64()? }),
        TAG_UPDATE_APPLY => {
            Ok(TraceEvent::UpdateApply { peer: r.u64()?, rule: r.u32()?, tuples: r.u64()? })
        }
        TAG_RULE_FIRE => {
            Ok(TraceEvent::RuleFire { peer: r.u64()?, link: r.u64()?, firings: r.u64()? })
        }
        TAG_DS_ACK => Ok(TraceEvent::DsAck { peer: r.u64()?, to: r.u64()?, credits: r.u64()? }),
        TAG_DS_CREDIT => {
            Ok(TraceEvent::DsCredit { peer: r.u64()?, credits: r.u64()?, deficit: r.u64()? })
        }
        TAG_REJOIN_ANNOUNCE => Ok(TraceEvent::RejoinAnnounce { peer: r.u64()?, epoch: r.u64()? }),
        TAG_REJOIN_RECV => {
            Ok(TraceEvent::RejoinRecv { peer: r.u64()?, from: r.u64()?, invalidated: r.u64()? })
        }
        TAG_REJOIN_ACK => {
            Ok(TraceEvent::RejoinAck { peer: r.u64()?, from: r.u64()?, pending: r.u64()? })
        }
        TAG_WAL_APPEND => Ok(TraceEvent::WalAppend { store: r.u32()?, bytes: r.u64()? }),
        TAG_FSYNC => Ok(TraceEvent::Fsync { store: r.u32()?, nanos: r.u64()? }),
        TAG_GROUP_DRAIN => {
            Ok(TraceEvent::GroupDrain { stores: r.u64()?, records: r.u64()?, fsyncs: r.u64()? })
        }
        TAG_CHECKPOINT => Ok(TraceEvent::Checkpoint { store: r.u32()?, generation: r.u64()? }),
        TAG_BARRIER_HOLD => {
            Ok(TraceEvent::BarrierHold { peer: r.u64()?, toward: r.u64()?, held: r.u64()? })
        }
        TAG_BARRIER_RELEASE => {
            Ok(TraceEvent::BarrierRelease { peer: r.u64()?, toward: r.u64()?, released: r.u64()? })
        }
        t => Err(BinDecodeError { offset: at, detail: format!("unknown trace-event tag {t}") }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn one_of_each() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Intern { id: 1, text: "flood".to_owned() },
            TraceEvent::PhaseBegin { name: 1, host_nanos: 12 },
            TraceEvent::PhaseEnd { name: 1, host_nanos: 999 },
            TraceEvent::NetSend { from: 0, to: 1, bytes: 64 },
            TraceEvent::NetDeliver { from: 0, to: 1, bytes: 64 },
            TraceEvent::NetDrop { from: 1, to: 0, bytes: 48 },
            TraceEvent::NetTimer { peer: 3, timer: 1 },
            TraceEvent::UpdateApply { peer: 2, rule: 1, tuples: 17 },
            TraceEvent::RuleFire { peer: 2, link: 3, firings: 5 },
            TraceEvent::DsAck { peer: 3, to: 2, credits: 4 },
            TraceEvent::DsCredit { peer: 2, credits: 4, deficit: 0 },
            TraceEvent::RejoinAnnounce { peer: 5, epoch: 2 },
            TraceEvent::RejoinRecv { peer: 4, from: 5, invalidated: 3 },
            TraceEvent::RejoinAck { peer: 5, from: 4, pending: 1 },
            TraceEvent::WalAppend { store: 1, bytes: 130 },
            TraceEvent::Fsync { store: 1, nanos: 48_000 },
            TraceEvent::GroupDrain { stores: 4, records: 256, fsyncs: 4 },
            TraceEvent::Checkpoint { store: 1, generation: 2 },
            TraceEvent::BarrierHold { peer: 4, toward: 5, held: 3 },
            TraceEvent::BarrierRelease { peer: 4, toward: 5, released: 3 },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for ev in one_of_each() {
            let mut out = Vec::new();
            put_event(&mut out, &ev);
            let mut r = Reader::new(&out);
            assert_eq!(take_event(&mut r).unwrap(), ev);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn hot_path_events_are_a_handful_of_bytes() {
        let mut out = Vec::new();
        put_event(&mut out, &TraceEvent::NetSend { from: 3, to: 7, bytes: 100 });
        assert!(out.len() <= 4, "{} bytes", out.len());
        out.clear();
        put_event(&mut out, &TraceEvent::WalAppend { store: 1, bytes: 120 });
        assert!(out.len() <= 4, "{} bytes", out.len());
    }

    #[test]
    fn unknown_tag_is_a_typed_error() {
        let err = take_event(&mut Reader::new(&[200])).unwrap_err();
        assert!(err.detail.contains("unknown trace-event tag"), "{err}");
    }

    #[test]
    fn truncation_is_an_error_never_a_panic() {
        for ev in one_of_each() {
            let mut out = Vec::new();
            put_event(&mut out, &ev);
            for cut in 0..out.len() {
                assert!(take_event(&mut Reader::new(&out[..cut])).is_err(), "cut at {cut}");
            }
        }
    }
}
