//! The postmortem read side: decode a trace back into typed events.
//!
//! Written for adversarial input, like every decoder in this workspace:
//! a torn tail (crash mid-write) is a **clean end-of-trace**, a damaged
//! block or an undecodable event is a typed [`TraceError`], and nothing
//! ever panics or allocates proportionally to an unvalidated length.

use crate::block::{BlockScanner, BlockStep};
use crate::event::{take_event, TraceEvent};
use crate::TRACE_MAGIC;
use codb_relational::binenc::{BinDecodeError, Reader};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;

/// A failed trace read: where and why.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying file could not be read.
    Io(std::io::Error),
    /// The file does not start with [`TRACE_MAGIC`].
    BadMagic {
        /// The bytes actually found (at most 8).
        found: Vec<u8>,
    },
    /// A block failed its length check or checksum, or a checksum-valid
    /// block held bytes that do not decode as events.
    Corrupt {
        /// Byte offset within the file.
        offset: usize,
        /// What failed.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic { found } => {
                write!(f, "not a coDB trace: magic {found:02X?} (want {TRACE_MAGIC:02X?})")
            }
            TraceError::Corrupt { offset, reason } => {
                write!(f, "corrupt trace at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A fully decoded trace.
#[derive(Debug)]
pub struct TraceFile {
    /// Every decoded event with its trace-clock timestamp, in stream
    /// order.
    pub events: Vec<(u64, TraceEvent)>,
    /// Whether the file ended in a torn (partially written) block — the
    /// signature of a crash mid-run. The decoded events are still a
    /// valid prefix.
    pub torn: bool,
}

impl TraceFile {
    /// The intern table collected from the stream's
    /// [`TraceEvent::Intern`] bindings.
    pub fn strings(&self) -> HashMap<u32, String> {
        let mut table = HashMap::new();
        for (_, ev) in &self.events {
            if let TraceEvent::Intern { id, text } = ev {
                table.insert(*id, text.clone());
            }
        }
        table
    }
}

/// Resolves an interned id against `strings`, falling back to `#id` for
/// a binding lost to ring eviction or truncation.
pub fn resolve(strings: &HashMap<u32, String>, id: u32) -> String {
    strings.get(&id).cloned().unwrap_or_else(|| format!("#{id}"))
}

fn decode_block(
    payload: &[u8],
    file_offset: usize,
    events: &mut Vec<(u64, TraceEvent)>,
) -> Result<(), TraceError> {
    let corrupt = |e: BinDecodeError| TraceError::Corrupt {
        offset: file_offset + e.offset,
        reason: format!("event decode failed: {}", e.detail),
    };
    let mut r = Reader::new(payload);
    let base = r.u64().map_err(corrupt)?;
    let mut prev = base;
    while r.remaining() > 0 {
        let dt = r.i64().map_err(corrupt)?;
        let at = prev.wrapping_add(dt as u64);
        prev = at;
        let ev = take_event(&mut r).map_err(corrupt)?;
        events.push((at, ev));
    }
    Ok(())
}

/// Decodes a complete trace from `bytes`.
pub fn read_trace(bytes: &[u8]) -> Result<TraceFile, TraceError> {
    let Some(magic) = bytes.get(..TRACE_MAGIC.len()) else {
        return Err(TraceError::BadMagic { found: bytes.to_vec() });
    };
    if magic != TRACE_MAGIC {
        return Err(TraceError::BadMagic { found: magic.to_vec() });
    }
    let body = &bytes[TRACE_MAGIC.len()..];
    let mut events = Vec::new();
    let mut torn = false;
    let mut scanner = BlockScanner::new(body);
    loop {
        let at = TRACE_MAGIC.len() + scanner.offset();
        match scanner.next_block() {
            BlockStep::Block(payload) => decode_block(payload, at, &mut events)?,
            BlockStep::End => break,
            BlockStep::TornTail => {
                torn = true;
                break;
            }
            BlockStep::Corrupt { offset, reason } => {
                return Err(TraceError::Corrupt { offset: TRACE_MAGIC.len() + offset, reason });
            }
        }
    }
    Ok(TraceFile { events, torn })
}

/// Reads and decodes the trace file at `path`.
pub fn read_trace_file(path: impl AsRef<Path>) -> Result<TraceFile, TraceError> {
    read_trace(&std::fs::read(path)?)
}

/// Renders one event human-readably, resolving interned names.
pub fn render_event(ev: &TraceEvent, strings: &HashMap<u32, String>) -> String {
    let s = |id: &u32| resolve(strings, *id);
    match ev {
        TraceEvent::Intern { id, text } => format!("intern #{id} = {text:?}"),
        TraceEvent::PhaseBegin { name, host_nanos } => {
            format!("phase-begin {} (host {host_nanos}ns)", s(name))
        }
        TraceEvent::PhaseEnd { name, host_nanos } => {
            format!("phase-end   {} (host {host_nanos}ns)", s(name))
        }
        TraceEvent::NetSend { from, to, bytes } => format!("send    {from} -> {to}  {bytes}B"),
        TraceEvent::NetDeliver { from, to, bytes } => format!("deliver {from} -> {to}  {bytes}B"),
        TraceEvent::NetDrop { from, to, bytes } => format!("drop    {from} -> {to}  {bytes}B"),
        TraceEvent::NetTimer { peer, timer } => format!("timer   peer {peer} token {timer}"),
        TraceEvent::UpdateApply { peer, rule, tuples } => {
            format!("apply   peer {peer} rule {} (+{tuples} tuples)", s(rule))
        }
        TraceEvent::RuleFire { peer, link, firings } => {
            format!("fire    peer {peer} -> {link}  {firings} firings")
        }
        TraceEvent::DsAck { peer, to, credits } => {
            format!("ds-ack  peer {peer} -> {to}  {credits} credits")
        }
        TraceEvent::DsCredit { peer, credits, deficit } => {
            format!("ds-credit peer {peer} +{credits} (deficit {deficit})")
        }
        TraceEvent::RejoinAnnounce { peer, epoch } => {
            format!("rejoin  peer {peer} announces epoch {epoch}")
        }
        TraceEvent::RejoinRecv { peer, from, invalidated } => {
            format!("rejoin  peer {peer} sees {from} rejoin ({invalidated} cache entries dropped)")
        }
        TraceEvent::RejoinAck { peer, from, pending } => {
            format!("rejoin  peer {peer} acked by {from} ({pending} pending)")
        }
        TraceEvent::WalAppend { store, bytes } => format!("wal     {} +{bytes}B", s(store)),
        TraceEvent::Fsync { store, nanos } => format!("fsync   {} took {nanos}ns", s(store)),
        TraceEvent::GroupDrain { stores, records, fsyncs } => {
            format!("drain   {stores} stores, {records} records, {fsyncs} fsyncs")
        }
        TraceEvent::Checkpoint { store, generation } => {
            format!("ckpt    {} -> generation {generation}", s(store))
        }
        TraceEvent::BarrierHold { peer, toward, held } => {
            format!("barrier peer {peer} holds {held} msgs for {toward}")
        }
        TraceEvent::BarrierRelease { peer, toward, released } => {
            format!("barrier peer {peer} releases {released} msgs to {toward}")
        }
    }
}

/// Renders a whole trace, one event per line, timestamps first.
pub fn dump(trace: &TraceFile) -> String {
    let strings = trace.strings();
    let mut out = String::new();
    for (at, ev) in &trace.events {
        out.push_str(&format!("{at:>15}ns  {}\n", render_event(ev, &strings)));
    }
    if trace.torn {
        out.push_str("-- torn tail: trace ends mid-block (crash during recording) --\n");
    }
    out
}
