//! Postmortem summaries: the analysis behind `codb-demo trace inspect`
//! and the per-phase host-time attribution in `codb-bench`.

use crate::event::TraceEvent;
use crate::reader::{resolve, TraceFile};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One completed (or still-open) phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSummary {
    /// The phase name (resolved from the intern table).
    pub name: String,
    /// Host wall-clock nanoseconds between begin and end markers.
    pub host_nanos: u64,
    /// Trace-clock (sim-time, in simulator runs) nanoseconds spanned.
    pub sim_nanos: u64,
    /// Events recorded while this phase was innermost.
    pub events: u64,
    /// Whether the end marker was missing (torn trace or unbalanced
    /// instrumentation).
    pub open: bool,
}

/// Per-peer traffic totals, folded from the `Net*` events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeerTraffic {
    /// Messages this peer handed to pipes.
    pub sent: u64,
    /// Payload bytes this peer handed to pipes.
    pub bytes_sent: u64,
    /// Messages delivered to this peer.
    pub received: u64,
    /// Payload bytes delivered to this peer.
    pub bytes_received: u64,
    /// This peer's messages dropped by the loss model.
    pub dropped: u64,
}

/// Power-of-two histogram of fsync durations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FsyncHistogram {
    /// `buckets[i]` counts syncs with `nanos < 2^(i+1)` (and `>= 2^i`
    /// for `i > 0`).
    pub buckets: [u64; 64],
    /// Total syncs observed.
    pub count: u64,
    /// Total nanoseconds across all syncs.
    pub total_nanos: u64,
}

impl Default for FsyncHistogram {
    fn default() -> Self {
        FsyncHistogram { buckets: [0; 64], count: 0, total_nanos: 0 }
    }
}

impl FsyncHistogram {
    fn record(&mut self, nanos: u64) {
        let bucket = 63u32.saturating_sub(nanos.max(1).leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_nanos += nanos;
    }
}

/// Everything `trace inspect` reports about one trace.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Phases in completion order (open phases last, flagged).
    pub phases: Vec<PhaseSummary>,
    /// Traffic per peer id.
    pub peers: BTreeMap<u64, PeerTraffic>,
    /// Fsync duration distribution.
    pub fsyncs: FsyncHistogram,
    /// Events per variant name.
    pub event_counts: BTreeMap<&'static str, u64>,
    /// Total events in the trace.
    pub total_events: u64,
    /// First and last trace-clock timestamps.
    pub span: (u64, u64),
    /// Whether the trace ended in a torn block.
    pub torn: bool,
}

impl Summary {
    /// Folds a decoded trace into its summary.
    pub fn from_trace(trace: &TraceFile) -> Summary {
        let strings = trace.strings();
        let mut s = Summary { torn: trace.torn, ..Summary::default() };
        if let (Some((first, _)), Some((last, _))) = (trace.events.first(), trace.events.last()) {
            s.span = (*first, *last);
        }
        // (name, begin host, begin sim, events while innermost)
        let mut stack: Vec<(String, u64, u64, u64)> = Vec::new();
        for (at, ev) in &trace.events {
            s.total_events += 1;
            *s.event_counts.entry(ev.kind()).or_insert(0) += 1;
            if let Some(top) = stack.last_mut() {
                top.3 += 1;
            }
            match ev {
                TraceEvent::PhaseBegin { name, host_nanos } => {
                    stack.push((resolve(&strings, *name), *host_nanos, *at, 0));
                }
                TraceEvent::PhaseEnd { name, host_nanos } => {
                    let name = resolve(&strings, *name);
                    // Pop to the matching frame: unbalanced inner frames
                    // (from a torn trace) close as open phases.
                    while let Some((n, h0, s0, evs)) = stack.pop() {
                        let matched = n == name;
                        s.phases.push(PhaseSummary {
                            name: n,
                            host_nanos: host_nanos.saturating_sub(h0),
                            sim_nanos: at.saturating_sub(s0),
                            events: evs,
                            open: !matched,
                        });
                        if matched {
                            break;
                        }
                    }
                }
                TraceEvent::NetSend { from, to, bytes } => {
                    let p = s.peers.entry(*from).or_default();
                    p.sent += 1;
                    p.bytes_sent += bytes;
                    s.peers.entry(*to).or_default();
                }
                TraceEvent::NetDeliver { from: _, to, bytes } => {
                    let p = s.peers.entry(*to).or_default();
                    p.received += 1;
                    p.bytes_received += bytes;
                }
                TraceEvent::NetDrop { from, .. } => {
                    s.peers.entry(*from).or_default().dropped += 1;
                }
                TraceEvent::Fsync { nanos, .. } => s.fsyncs.record(*nanos),
                _ => {}
            }
        }
        // Phases never closed (torn tail, or inspect ran mid-run).
        while let Some((n, _h0, s0, evs)) = stack.pop() {
            s.phases.push(PhaseSummary {
                name: n,
                host_nanos: 0,
                sim_nanos: s.span.1.saturating_sub(s0),
                events: evs,
                open: true,
            });
        }
        s
    }

    /// Host nanoseconds of the first completed phase called `name`.
    pub fn phase_host_nanos(&self, name: &str) -> Option<u64> {
        self.phases.iter().find(|p| p.name == name && !p.open).map(|p| p.host_nanos)
    }

    /// Renders the summary for `trace inspect`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events, span {} .. {}, tail {}",
            self.total_events,
            fmt_nanos(self.span.0),
            fmt_nanos(self.span.1),
            if self.torn { "TORN (crash mid-recording)" } else { "clean" },
        );

        let _ = writeln!(out, "\nphases ({}):", self.phases.len());
        if self.phases.is_empty() {
            let _ = writeln!(out, "  (none recorded)");
        }
        for p in &self.phases {
            let _ = writeln!(
                out,
                "  {:<24} host {:>10}  sim {:>10}  events {:>8}{}",
                p.name,
                fmt_nanos(p.host_nanos),
                fmt_nanos(p.sim_nanos),
                p.events,
                if p.open { "  (unclosed)" } else { "" },
            );
        }

        let _ = writeln!(out, "\nper-peer traffic ({} peers):", self.peers.len());
        const PEER_CAP: usize = 20;
        let mut by_traffic: Vec<(&u64, &PeerTraffic)> = self.peers.iter().collect();
        by_traffic
            .sort_by_key(|(id, t)| (std::cmp::Reverse(t.bytes_sent + t.bytes_received), **id));
        for (id, t) in by_traffic.iter().take(PEER_CAP) {
            let _ = writeln!(
                out,
                "  peer {:<8} sent {:>8} msgs / {:>10}B   recv {:>8} msgs / {:>10}B   dropped {}",
                id, t.sent, t.bytes_sent, t.received, t.bytes_received, t.dropped,
            );
        }
        if self.peers.len() > PEER_CAP {
            let _ =
                writeln!(out, "  … {} more peers (sorted by traffic)", self.peers.len() - PEER_CAP);
        }

        let _ = writeln!(
            out,
            "\nfsync durations ({} syncs, {} total):",
            self.fsyncs.count,
            fmt_nanos(self.fsyncs.total_nanos)
        );
        for (i, n) in self.fsyncs.buckets.iter().enumerate() {
            if *n > 0 {
                let _ = writeln!(out, "  < {:>10}: {n}", fmt_nanos(1u64 << (i + 1).min(63)));
            }
        }

        let _ = writeln!(out, "\nevent counts:");
        for (kind, n) in &self.event_counts {
            let _ = writeln!(out, "  {kind:<16} {n}");
        }
        out
    }
}

/// Renders nanoseconds human-readably (`1.25ms`, `830ns`, …).
pub fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2}us", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::TraceFile;

    fn trace(events: Vec<(u64, TraceEvent)>) -> TraceFile {
        TraceFile { events, torn: false }
    }

    #[test]
    fn phases_attribute_host_and_sim_time() {
        let t = trace(vec![
            (0, TraceEvent::Intern { id: 1, text: "flood".into() }),
            (10, TraceEvent::PhaseBegin { name: 1, host_nanos: 1_000 }),
            (20, TraceEvent::NetSend { from: 0, to: 1, bytes: 8 }),
            (500, TraceEvent::PhaseEnd { name: 1, host_nanos: 51_000 }),
        ]);
        let s = Summary::from_trace(&t);
        assert_eq!(s.phases.len(), 1);
        let p = &s.phases[0];
        assert_eq!(p.name, "flood");
        assert_eq!(p.host_nanos, 50_000);
        assert_eq!(p.sim_nanos, 490);
        assert_eq!(p.events, 2); // the send + the end marker
        assert!(!p.open);
        assert_eq!(s.phase_host_nanos("flood"), Some(50_000));
    }

    #[test]
    fn unclosed_phase_is_flagged_open() {
        let t = trace(vec![
            (0, TraceEvent::Intern { id: 1, text: "crashy".into() }),
            (5, TraceEvent::PhaseBegin { name: 1, host_nanos: 7 }),
            (9, TraceEvent::NetSend { from: 0, to: 1, bytes: 8 }),
        ]);
        let s = Summary::from_trace(&t);
        assert_eq!(s.phases.len(), 1);
        assert!(s.phases[0].open);
        assert_eq!(s.phase_host_nanos("crashy"), None);
    }

    #[test]
    fn traffic_and_fsyncs_fold() {
        let t = trace(vec![
            (1, TraceEvent::NetSend { from: 3, to: 4, bytes: 100 }),
            (2, TraceEvent::NetDeliver { from: 3, to: 4, bytes: 100 }),
            (3, TraceEvent::NetDrop { from: 3, to: 4, bytes: 60 }),
            (4, TraceEvent::Fsync { store: 1, nanos: 900 }),
            (5, TraceEvent::Fsync { store: 1, nanos: 1_100 }),
        ]);
        let s = Summary::from_trace(&t);
        assert_eq!(s.peers[&3].sent, 1);
        assert_eq!(s.peers[&3].bytes_sent, 100);
        assert_eq!(s.peers[&3].dropped, 1);
        assert_eq!(s.peers[&4].received, 1);
        assert_eq!(s.peers[&4].bytes_received, 100);
        assert_eq!(s.fsyncs.count, 2);
        assert_eq!(s.fsyncs.total_nanos, 2_000);
        // 900ns lands in bucket 9 (512..1024), 1100ns in bucket 10.
        assert_eq!(s.fsyncs.buckets[9], 1);
        assert_eq!(s.fsyncs.buckets[10], 1);
        let rendered = s.render();
        assert!(rendered.contains("per-peer traffic"), "{rendered}");
    }
}
