//! Property tests for the trace wire format, mirroring the store's
//! `format.rs`: any event sequence round-trips through both recorders,
//! any truncation recovers a valid prefix (torn-tail semantics), and a
//! single flipped bit anywhere is a typed error — never a panic, never a
//! silent misread.

use codb_trace::{read_trace, read_trace_file, TraceError, TraceEvent, TraceSink as _};
use codb_trace::{FileRecorder, RingRecorder};
use proptest::prelude::*;

fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Self-cleaning scratch directory (std-only; the trace crate has no
/// store dependency to borrow `ScratchDir` from).
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(prefix: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "{prefix}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Every variant, driven by a tag draw so coverage does not depend on a
/// wide `prop_oneof` (the shim's tuple strategies are the reliable path).
fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (0u8..18, any::<u64>(), any::<u64>(), any::<u64>(), 0u32..40).prop_map(|(tag, a, b, c, s)| {
        match tag {
            0 => TraceEvent::Intern { id: s + 1, text: format!("sym{s}") },
            1 => TraceEvent::PhaseBegin { name: s, host_nanos: a },
            2 => TraceEvent::PhaseEnd { name: s, host_nanos: a },
            3 => TraceEvent::NetSend { from: a, to: b, bytes: c },
            4 => TraceEvent::NetDeliver { from: a, to: b, bytes: c },
            5 => TraceEvent::NetDrop { from: a, to: b, bytes: c },
            6 => TraceEvent::NetTimer { peer: a, timer: b },
            7 => TraceEvent::UpdateApply { peer: a, rule: s, tuples: c },
            8 => TraceEvent::RuleFire { peer: a, link: b, firings: c },
            9 => TraceEvent::DsAck { peer: a, to: b, credits: c },
            10 => TraceEvent::DsCredit { peer: a, credits: b, deficit: c },
            11 => TraceEvent::RejoinAnnounce { peer: a, epoch: b },
            12 => TraceEvent::RejoinRecv { peer: a, from: b, invalidated: c },
            13 => TraceEvent::RejoinAck { peer: a, from: b, pending: c },
            14 => TraceEvent::WalAppend { store: s, bytes: c },
            15 => TraceEvent::Fsync { store: s, nanos: c },
            16 => TraceEvent::GroupDrain { stores: a, records: b, fsyncs: c },
            _ => TraceEvent::Checkpoint { store: s, generation: b },
        }
    })
}

/// An event with a trace-clock timestamp. Timestamps are arbitrary u64s
/// on purpose: the delta encoding must survive any jump, forward or
/// (wrapping) backward.
fn arb_stamped() -> impl Strategy<Value = (u64, TraceEvent)> {
    (any::<u64>(), arb_event())
}

/// Writes `events` through a small-block [`FileRecorder`] and returns the
/// file's bytes (multiple sealed blocks for any non-trivial sequence).
fn file_bytes(dir: &TempDir, events: &[(u64, TraceEvent)], block_bytes: usize) -> Vec<u8> {
    let path = dir.path().join("t.trc");
    let mut rec = FileRecorder::with_block_bytes(&path, block_bytes).unwrap();
    for (at, ev) in events {
        rec.record(*at, ev);
    }
    rec.flush().unwrap();
    drop(rec);
    std::fs::read(&path).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(48), ..ProptestConfig::default() })]

    /// Any stamped event sequence round-trips through the file recorder
    /// exactly, across block boundaries.
    #[test]
    fn file_recorder_round_trips(
        events in proptest::collection::vec(arb_stamped(), 0..40),
        block in 16usize..128,
    ) {
        let dir = TempDir::new("trace-prop-file");
        let path = dir.path().join("rt.trc");
        let mut rec = FileRecorder::with_block_bytes(&path, block).unwrap();
        for (at, ev) in &events {
            rec.record(*at, ev);
        }
        rec.flush().unwrap();
        drop(rec);
        let trace = read_trace_file(&path).unwrap();
        prop_assert!(!trace.torn);
        prop_assert_eq!(trace.events, events);
    }

    /// The ring recorder round-trips through its byte form; interns are
    /// pulled to the front (they are never evicted), everything else
    /// keeps stream order.
    #[test]
    fn ring_recorder_round_trips(
        events in proptest::collection::vec(arb_stamped(), 0..40),
    ) {
        let mut ring = RingRecorder::new(events.len() + 1);
        for (at, ev) in &events {
            ring.record(*at, ev);
        }
        let trace = read_trace(&ring.to_bytes()).unwrap();
        prop_assert!(!trace.torn);
        let mut expected: Vec<(u64, TraceEvent)> = events
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::Intern { .. }))
            .cloned()
            .collect();
        expected.extend(
            events.iter().filter(|(_, e)| !matches!(e, TraceEvent::Intern { .. })).cloned(),
        );
        prop_assert_eq!(trace.events, expected);
    }

    /// Truncating a trace file at any point after the magic still reads:
    /// the surviving events are a prefix (whole blocks only), and a
    /// mid-block cut is flagged as torn — crash semantics, not an error.
    #[test]
    fn any_truncation_recovers_a_prefix(
        events in proptest::collection::vec(arb_stamped(), 1..30),
        cut_fraction in 0.0f64..1.0,
        block in 16usize..96,
    ) {
        let dir = TempDir::new("trace-prop-cut");
        let bytes = file_bytes(&dir, &events, block);
        // Keep at least the magic; cut anywhere after it.
        let keep = 8 + ((bytes.len() - 8) as f64 * cut_fraction) as usize;
        let trace = read_trace(&bytes[..keep]).unwrap();
        prop_assert!(trace.events.len() <= events.len());
        prop_assert_eq!(
            &events[..trace.events.len()],
            &trace.events[..],
            "survivors must be a prefix"
        );
        if keep == bytes.len() {
            prop_assert!(!trace.torn);
            prop_assert_eq!(trace.events.len(), events.len());
        } else if !trace.torn {
            // A cut exactly on a block boundary loses whole blocks only.
            prop_assert!(trace.events.len() <= events.len());
        }
    }

    /// A single flipped bit anywhere in a trace file is a typed error —
    /// damaged magic or a corrupt block (the `!len` complement stops a
    /// flipped length from masquerading as a torn tail) — never a panic
    /// and never silently accepted.
    #[test]
    fn any_bit_flip_is_a_typed_error(
        events in proptest::collection::vec(arb_stamped(), 1..20),
        pos_fraction in 0.0f64..1.0,
        bit in 0u8..8,
        block in 16usize..96,
    ) {
        let dir = TempDir::new("trace-prop-flip");
        let mut bytes = file_bytes(&dir, &events, block);
        let pos = ((bytes.len() as f64 * pos_fraction) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        match read_trace(&bytes) {
            Err(TraceError::BadMagic { .. }) | Err(TraceError::Corrupt { .. }) => {}
            Ok(trace) => {
                return Err(TestCaseError::fail(format!(
                    "flip at byte {pos} bit {bit} passed unnoticed: {} events, torn={}",
                    trace.events.len(),
                    trace.torn
                )));
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        }
    }

    /// The reader survives arbitrary bytes: junk is a typed error (or a
    /// valid tiny trace), never a panic.
    #[test]
    fn arbitrary_bytes_never_panic_the_reader(
        bytes in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        let _ = read_trace(&bytes);
    }
}
