//! Property tests for the on-disk format: WAL frame encode/decode and
//! snapshot save/load round-trips, plus adversarial corruption — a flipped
//! bit must surface as a checksum error, a truncated tail must recover
//! cleanly, and nothing may be silently mis-read.

use codb_relational::glav::TField;
use codb_relational::{
    Instance, NullFactory, NullId, RelationSchema, RuleFiring, Snapshot, Tuple, Value, ValueType,
};
use codb_store::wal::{read_wal, WalWriter};
use codb_store::{
    Codec, ProtocolCounters, RecvCaches, ScratchDir, Store, StoreError, SyncPolicy, WalRecord,
};
use proptest::prelude::*;

fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Short names drawn from a small pool (the shim has no regex strategy).
fn arb_name() -> impl Strategy<Value = String> {
    (0u32..6).prop_map(|i| format!("rel{i}"))
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        (0u32..40).prop_map(|i| Value::str(format!("s{i}"))),
        any::<bool>().prop_map(Value::Bool),
        (0u64..5, 0u64..50).prop_map(|(o, s)| Value::Null(NullId::new(o, s))),
    ]
}

fn arb_tfield() -> impl Strategy<Value = TField> {
    prop_oneof![arb_value().prop_map(TField::Const), (0u32..4).prop_map(TField::Fresh)]
}

fn arb_firing() -> impl Strategy<Value = RuleFiring> {
    proptest::collection::vec((arb_name(), proptest::collection::vec(arb_tfield(), 1..4)), 1..3)
        .prop_map(|atoms| RuleFiring { atoms })
}

fn arb_caches() -> impl Strategy<Value = RecvCaches> {
    proptest::collection::btree_map(
        arb_name(),
        proptest::collection::btree_set(arb_firing(), 0..3),
        0..3,
    )
}

fn arb_counters() -> impl Strategy<Value = ProtocolCounters> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(update_seq, query_seq, req_seq)| {
        ProtocolCounters { update_seq, query_seq, req_seq }
    })
}

fn arb_codec() -> impl Strategy<Value = Codec> {
    prop_oneof![Just(Codec::Json), Just(Codec::Binary)]
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        arb_caches().prop_map(|recv| WalRecord::Caches { recv }),
        arb_counters().prop_map(|counters| WalRecord::Counters { counters }),
        (arb_name(), proptest::collection::vec(arb_firing(), 1..4))
            .prop_map(|(rule, firings)| WalRecord::Applied { rule, firings }),
        (arb_name(), proptest::collection::vec(arb_value(), 1..4)).prop_map(
            |(relation, values)| WalRecord::LocalInsert { relation, tuple: Tuple::new(values) }
        ),
    ]
}

/// Arbitrary instances: 0–3 relations with arbitrary schemas (1–3 typed
/// columns each) and type-correct rows, nulls sprinkled into any column.
/// Raw material (a fixed-width cell per potential column) is drawn first
/// and coerced to each relation's schema in the final map — the shim has
/// no `prop_flat_map`, so schema-dependent generation happens here.
fn arb_instance() -> impl Strategy<Value = Instance> {
    let arb_type = prop_oneof![Just(ValueType::Int), Just(ValueType::Str), Just(ValueType::Bool)];
    // (make-it-a-null?, int payload, string-pool id, bool payload)
    let raw_cell = (any::<bool>(), any::<i64>(), 0u32..10, any::<bool>());
    let raw_row = proptest::collection::vec(raw_cell, 3..4); // max arity cells
    let arb_rel = (
        arb_name(),
        proptest::collection::vec(arb_type, 1..4),
        proptest::collection::vec(raw_row, 0..6),
    );
    proptest::collection::vec(arb_rel, 0..4).prop_map(|rels| {
        let mut inst = Instance::new();
        for (name, types, rows) in rels {
            // Same-named relations collapse (last wins), like add_relation.
            inst.add_relation(RelationSchema::with_types(&name, &types));
            for row in rows {
                let values: Vec<Value> = types
                    .iter()
                    .zip(row)
                    .map(|(ty, (null, i, sid, b))| {
                        if null {
                            Value::Null(NullId::new(i.unsigned_abs() % 4, sid as u64))
                        } else {
                            match ty {
                                ValueType::Int => Value::Int(i),
                                ValueType::Str => Value::str(format!("v{sid}")),
                                ValueType::Bool => Value::Bool(b),
                            }
                        }
                    })
                    .collect();
                inst.insert(&name, Tuple::new(values)).unwrap();
            }
        }
        inst
    })
}

/// A small instance over a two-column schema with `rows` random rows.
fn instance_with(rows: &[(i64, i64)], with_null: bool) -> (Instance, NullFactory) {
    let mut inst = Instance::new();
    inst.add_relation(RelationSchema::with_types("r", &[ValueType::Int, ValueType::Int]));
    for (a, b) in rows {
        inst.insert("r", Tuple::new(vec![Value::Int(*a), Value::Int(*b)])).unwrap();
    }
    let mut nulls = NullFactory::new(3);
    if with_null {
        let n = nulls.fresh();
        inst.get_mut("r")
            .unwrap()
            .insert(Tuple::new(vec![Value::Int(-1), Value::Null(n)]))
            .unwrap();
    }
    (inst, nulls)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(48), ..ProptestConfig::default() })]

    /// Frame encode/decode: any record sequence survives the WAL.
    #[test]
    fn wal_records_round_trip(
        records in proptest::collection::vec(arb_record(), 0..12),
        codec in arb_codec(),
    ) {
        let dir = ScratchDir::new("prop-wal-rt");
        let path = dir.path().join("codb-0000000000.wal");
        let mut w = WalWriter::create(&path, SyncPolicy::Never, codec).unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let contents = read_wal(&path).unwrap();
        prop_assert_eq!(contents.records, records);
        prop_assert_eq!(contents.codec, codec);
        prop_assert!(!contents.torn_tail);
    }

    /// Snapshot save/load through the store: create + open reproduces the
    /// instance, the null factory and the receive caches exactly.
    #[test]
    fn snapshot_round_trips_through_store(
        rows in proptest::collection::vec((any::<i64>(), any::<i64>()), 0..20),
        with_null in any::<bool>(),
        recv in arb_caches(),
        codec in arb_codec(),
    ) {
        let dir = ScratchDir::new("prop-snap-rt");
        let (inst, nulls) = instance_with(&rows, with_null);
        let store = Store::create(
            dir.path(),
            &Snapshot::capture(&inst, &nulls),
            &recv,
            &ProtocolCounters::default(),
            SyncPolicy::Never,
            codec,
        )
        .unwrap();
        drop(store);
        let (_s, rec) = Store::open(dir.path(), SyncPolicy::Never, codec).unwrap();
        prop_assert_eq!(rec.instance, inst);
        prop_assert_eq!(rec.nulls.invented(), nulls.invented());
        prop_assert_eq!(rec.recv_cache, recv);
    }

    /// Protocol-counter records round-trip through live WAL appends, WAL
    /// replay, and snapshot compaction: whatever sequence of counter bumps
    /// the node logged, recovery resumes from the *last* one — the
    /// guarantee that stops a rejoined initiator from minting colliding
    /// update/query ids.
    #[test]
    fn counters_round_trip_through_replay_and_compaction(
        seed in arb_counters(),
        bumps in proptest::collection::vec(arb_counters(), 0..8),
        checkpoint_at in 0usize..9,
        codec in arb_codec(),
    ) {
        let dir = ScratchDir::new("prop-counters");
        let (inst, nulls) = instance_with(&[(1, 2)], false);
        let snap = Snapshot::capture(&inst, &nulls);
        let mut store = Store::create(
            dir.path(),
            &snap,
            &RecvCaches::new(),
            &seed,
            SyncPolicy::Never,
            codec,
        )
        .unwrap();
        let mut live = seed;
        for (i, c) in bumps.iter().enumerate() {
            store.append(&WalRecord::Counters { counters: *c }).unwrap();
            live = *c;
            if i + 1 == checkpoint_at {
                // Mid-sequence compaction must carry the counters across.
                store.checkpoint(&snap, &RecvCaches::new(), &live).unwrap();
            }
        }
        store.sync().unwrap();
        drop(store);
        let (_s, rec) = Store::open(dir.path(), SyncPolicy::Never, codec).unwrap();
        prop_assert_eq!(rec.counters, live, "recovery resumes from the last counter record");
        // A second open (after the incarnation bump) still agrees.
        let (_s2, rec2) = Store::open(dir.path(), SyncPolicy::Never, codec).unwrap();
        prop_assert_eq!(rec2.counters, live);
        prop_assert!(rec2.epoch > rec.epoch, "every open is a new incarnation");
    }

    /// Truncating the WAL at any point recovers cleanly: the surviving
    /// records are a prefix, and a mid-frame cut is flagged as torn.
    #[test]
    fn any_truncation_recovers_a_prefix(
        records in proptest::collection::vec(arb_record(), 1..8),
        cut_fraction in 0.0f64..1.0,
        codec in arb_codec(),
    ) {
        let dir = ScratchDir::new("prop-wal-cut");
        let path = dir.path().join("codb-0000000000.wal");
        let mut w = WalWriter::create(&path, SyncPolicy::Never, codec).unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let bytes = std::fs::read(&path).unwrap();
        // Keep at least the magic; cut anywhere after it.
        let keep = 8 + ((bytes.len() - 8) as f64 * cut_fraction) as usize;
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let contents = read_wal(&path).unwrap();
        prop_assert!(contents.records.len() <= records.len());
        prop_assert_eq!(
            &records[..contents.records.len()],
            &contents.records[..],
            "survivors must be a prefix"
        );
        if contents.torn_tail {
            // A mid-frame cut: the partial frame is excluded.
            prop_assert!(contents.records.len() < records.len());
            prop_assert!((contents.valid_len as usize) < keep);
        } else {
            // A cut exactly on a frame boundary consumes every kept byte.
            prop_assert_eq!(contents.valid_len as usize, keep);
        }
    }

    /// A single flipped bit anywhere in the WAL is never silently
    /// accepted: every flip surfaces as a typed error — a checksum or
    /// length-check mismatch (`CorruptFrame`) or damaged magic
    /// (`BadMagic`). In particular a flipped length field must NOT read
    /// as a torn tail (that would silently truncate the records behind
    /// it); the `!len` complement in the frame header guarantees this.
    #[test]
    fn any_bit_flip_is_a_typed_error(
        records in proptest::collection::vec(arb_record(), 1..6),
        pos_fraction in 0.0f64..1.0,
        bit in 0u8..8,
        codec in arb_codec(),
    ) {
        let dir = ScratchDir::new("prop-wal-flip");
        let path = dir.path().join("codb-0000000000.wal");
        let mut w = WalWriter::create(&path, SyncPolicy::Never, codec).unwrap();
        for r in &records {
            w.append(r).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Cover the whole file including the final byte (the fraction is
        // drawn from [0, 1), so scale by len and clamp).
        let pos = ((bytes.len() as f64 * pos_fraction) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        match read_wal(&path) {
            Err(StoreError::CorruptFrame { .. }) | Err(StoreError::BadMagic { .. }) => {}
            Ok(contents) => {
                return Err(TestCaseError::fail(format!(
                    "flip at byte {pos} bit {bit} passed unnoticed: {} records, torn={}",
                    contents.records.len(),
                    contents.torn_tail
                )));
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        }
    }

    /// Any instance's snapshot round-trips through both codecs purely in
    /// memory: decode(encode(x)) == x, and the binary form is strictly
    /// smaller than the JSON it replaces.
    #[test]
    fn arbitrary_snapshots_round_trip_in_both_codecs(
        inst in arb_instance(),
        origin in 0u64..9,
        invented in 0u64..1000,
    ) {
        let snap = Snapshot::capture(&inst, &NullFactory::from_parts(origin, invented));
        let json = snap.to_bytes().unwrap();
        let binary = snap.to_binary_bytes();
        let from_json = Snapshot::from_bytes(&json).unwrap();
        let from_binary = Snapshot::from_binary_bytes(&binary).unwrap();
        prop_assert_eq!(&from_json.instance, &inst);
        prop_assert_eq!(&from_binary.instance, &inst);
        prop_assert_eq!(from_binary.nulls.origin(), origin);
        prop_assert_eq!(from_binary.nulls.invented(), invented);
        prop_assert!(binary.len() < json.len(), "binary {} vs json {}", binary.len(), json.len());
    }

    /// Codec-differential at the record layer: the same record sequence
    /// written under each codec reads back as the identical records.
    #[test]
    fn record_streams_agree_across_codecs(
        records in proptest::collection::vec(arb_record(), 0..8),
    ) {
        let dir = ScratchDir::new("prop-wal-diff");
        let mut per_codec = Vec::new();
        for codec in [Codec::Json, Codec::Binary] {
            let path = dir.path().join(format!("{codec}.wal"));
            let mut w = WalWriter::create(&path, SyncPolicy::Never, codec).unwrap();
            for r in &records {
                w.append(r).unwrap();
            }
            w.sync().unwrap();
            drop(w);
            per_codec.push(read_wal(&path).unwrap().records);
        }
        prop_assert_eq!(&per_codec[0], &records);
        prop_assert_eq!(&per_codec[1], &records);
    }

    /// The binary decoders survive arbitrary bytes: junk is a typed
    /// error, never a panic (the CRC frames catch flips before decode in
    /// practice; this pins the decoder's own robustness without them).
    #[test]
    fn arbitrary_bytes_never_panic_the_binary_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let _ = codb_store::codec::decode_record(&bytes, Codec::Binary);
        let _ = Snapshot::from_binary_bytes(&bytes);
    }
}

/// Bit-flips inside the snapshot file are caught by its frame checksum —
/// under either codec.
#[test]
fn snapshot_bit_flip_is_checksum_error() {
    for codec in [Codec::Json, Codec::Binary] {
        let dir = ScratchDir::new("snap-flip");
        let (inst, nulls) = instance_with(&[(1, 2), (3, 4)], true);
        let store = Store::create(
            dir.path(),
            &Snapshot::capture(&inst, &nulls),
            &RecvCaches::new(),
            &ProtocolCounters::default(),
            SyncPolicy::Never,
            codec,
        )
        .unwrap();
        drop(store);
        let snap = dir.path().join("codb-0000000000.snap");
        let original = std::fs::read(&snap).unwrap();
        // Flip every byte position in turn (a cheap exhaustive sweep: the
        // file is small) and require a loud failure each time.
        for pos in 0..original.len() {
            let mut bytes = original.clone();
            bytes[pos] ^= 0x04;
            std::fs::write(&snap, &bytes).unwrap();
            match Store::open(dir.path(), SyncPolicy::Never, codec) {
                Err(StoreError::CorruptFrame { .. }) | Err(StoreError::BadMagic { .. }) => {}
                other => panic!("{codec}: flip at byte {pos} not caught: {other:?}"),
            }
        }
    }
}
