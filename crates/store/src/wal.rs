//! The write-ahead log: record types, the fsync-aware appender and the
//! recovery-time reader.
//!
//! The WAL is a *redo log of applied deltas*: it records exactly the
//! inputs the node fed to its relational engine, in apply order, so
//! replaying them against the snapshot reproduces the instance **and** the
//! null factory byte-for-byte (fresh nulls are invented deterministically
//! from the factory counter, which the snapshot captures).
//!
//! Record payloads are encoded by the per-file [`Codec`] stamped in the
//! WAL's magic: the reader auto-detects it, and the appender continues in
//! the codec the file was created with — one file never mixes encodings
//! (stores switch codecs at checkpoint rotation, never mid-file).

use crate::codec::{self, Codec, MAGIC_LEN};
use crate::frame::{encode_frame, FrameScanner, FrameStep};
use crate::group::FsyncScheduler;
use crate::store::StoreError;
use codb_relational::{RuleFiring, Tuple};
use codb_trace::{TraceEvent, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// Receiver-side per-link dedup caches, exactly as the node keeps them
/// (`rule name → firing templates already materialised`).
pub type RecvCaches = BTreeMap<String, BTreeSet<RuleFiring>>;

/// Durable protocol counters: the per-node sequence numbers that make
/// update/query/fetch identifiers unique. Persisted so a recovered node
/// *resumes* its id space instead of restarting it at zero (which would
/// make a rejoined initiator mint colliding ids). Each value is the *next*
/// sequence number to hand out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolCounters {
    /// Next global-update sequence number (`UpdateId` minting).
    pub update_seq: u64,
    /// Next user-query sequence number.
    pub query_seq: u64,
    /// Next query-time fetch-request sequence number.
    pub req_seq: u64,
}

/// One WAL record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// Checkpoint of the receiver-side dedup caches — the first record of
    /// every rotated WAL, so cache state survives compaction of the log
    /// that built it.
    Caches {
        /// The caches at rotation time.
        recv: RecvCaches,
    },
    /// Checkpoint of the protocol counters — written right after
    /// [`WalRecord::Caches`] at create/checkpoint time and re-appended by
    /// the node whenever it mints a new update/query id, so recovery
    /// resumes the id space exactly where the crashed incarnation left it
    /// (replay keeps the *last* such record).
    Counters {
        /// The counters; each field is the next value to hand out.
        counters: ProtocolCounters,
    },
    /// A batch of rule firings applied from network data on outgoing link
    /// `rule` (already filtered against the receive cache at apply time).
    Applied {
        /// The link the data arrived on.
        rule: String,
        /// The firings, in apply order.
        firings: Vec<RuleFiring>,
    },
    /// A local write (the demo UI's data-entry path).
    LocalInsert {
        /// Target relation.
        relation: String,
        /// The inserted tuple.
        tuple: Tuple,
    },
}

/// When the appender calls `fdatasync`.
///
/// Every policy shares one *ack* rule, written down in
/// `docs/DURABILITY.md` (rendered as [`crate::durability`]): a record
/// counts as durable — [`crate::Store::durable_wal_records`] — only once
/// an fsync covering it has completed. The policies differ in *when*
/// that fsync runs, i.e. how large the window of
/// appended-but-not-yet-durable records may grow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// After every appended record — full durability, one fsync per delta.
    Always,
    /// After every `n` appended records (and at checkpoint or explicit
    /// [`crate::Store::sync`]) — a *per-store* loss window of up to `n`
    /// records, amortised fsync cost. On a host running many stores the
    /// windows add up: each store fsyncs independently.
    EveryN(u64),
    /// Only at checkpoint or explicit [`crate::Store::sync`] — fastest;
    /// a crash may lose the tail since the last checkpoint (it will
    /// still be *consistent*: torn frames are truncated, never
    /// half-applied). Dropping the store does **not** flush — drop
    /// models a crash; sync or checkpoint before a clean shutdown.
    Never,
    /// Shared group commit via a host-wide [`FsyncScheduler`] (see
    /// [`crate::group`]): appends across *all* participating stores are
    /// coalesced and drained — one fsync per dirty store per drain — when
    /// either `max_records` pending records accumulate host-wide or
    /// `max_batch` distinct stores are dirty. The loss window is
    /// host-wide (at most `max_records` never-acked records in flight
    /// across every store together), in contrast to [`SyncPolicy::EveryN`]
    /// whose window is per store. `max_records == 0` or `max_batch <= 1`
    /// degenerate to [`SyncPolicy::Always`] behaviour.
    GroupCommit {
        /// Max distinct dirty stores coalesced before a drain is forced.
        max_batch: u64,
        /// Max appended-but-unsynced records host-wide before a drain is
        /// forced (the durability ack window).
        max_records: u64,
    },
}

impl fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncPolicy::Always => write!(f, "always"),
            SyncPolicy::EveryN(n) => write!(f, "everyN:{n}"),
            SyncPolicy::Never => write!(f, "never"),
            SyncPolicy::GroupCommit { max_batch, max_records } => {
                write!(f, "group:{max_records},{max_batch}")
            }
        }
    }
}

impl FromStr for SyncPolicy {
    type Err = String;

    /// Parses the demo CLI's `--sync` syntax:
    /// `always` | `never` | `everyN:N` | `group[:RECORDS[,BATCH]]`
    /// (group defaults: 256 records, 64 stores).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        const GROUP_RECORDS_DEFAULT: u64 = 256;
        const GROUP_BATCH_DEFAULT: u64 = 64;
        let parse_u64 = |v: &str| {
            v.parse::<u64>().map_err(|e| format!("bad number {v:?} in sync policy {s:?}: {e}"))
        };
        match s {
            "always" => Ok(SyncPolicy::Always),
            "never" => Ok(SyncPolicy::Never),
            "group" => Ok(SyncPolicy::GroupCommit {
                max_batch: GROUP_BATCH_DEFAULT,
                max_records: GROUP_RECORDS_DEFAULT,
            }),
            _ => {
                if let Some(n) = s.strip_prefix("everyN:").or_else(|| s.strip_prefix("everyn:")) {
                    return Ok(SyncPolicy::EveryN(parse_u64(n)?));
                }
                if let Some(rest) = s.strip_prefix("group:") {
                    let (records, batch) = match rest.split_once(',') {
                        Some((r, b)) => (parse_u64(r)?, parse_u64(b)?),
                        None => (parse_u64(rest)?, GROUP_BATCH_DEFAULT),
                    };
                    return Ok(SyncPolicy::GroupCommit { max_batch: batch, max_records: records });
                }
                Err(format!(
                    "unknown sync policy {s:?} (expected always, never, everyN:N or \
                     group[:RECORDS[,BATCH]])"
                ))
            }
        }
    }
}

/// Appender over one WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: SyncPolicy,
    codec: Codec,
    unsynced: u64,
    frames: u64,
    /// Bytes written to the file (magic + complete frames).
    len: u64,
    /// Bytes covered by the last fsync *this writer* performed (group
    /// writers track their watermark in the scheduler instead).
    synced_len: u64,
    /// Records covered by the last fsync this writer performed.
    synced_frames: u64,
    /// `fdatasync`/`sync_all` calls this writer itself issued (group
    /// drains are counted by the scheduler, not here).
    fsyncs: u64,
    /// Group-commit membership: the shared scheduler and this writer's id
    /// in it. Present iff the policy is [`SyncPolicy::GroupCommit`].
    group: Option<(FsyncScheduler, u64)>,
    /// Flight recorder (disabled by default) and this store's interned
    /// name in it.
    tracer: Tracer,
    trace_id: u32,
}

impl WalWriter {
    /// Creates a fresh WAL at `path` (truncating any previous file) and
    /// writes the magic header carrying `codec`'s format byte.
    ///
    /// Equivalent to [`WalWriter::create_with`] without a shared
    /// scheduler (a group-commit policy then batches privately).
    pub fn create(path: &Path, policy: SyncPolicy, codec: Codec) -> Result<Self, StoreError> {
        Self::create_with(path, policy, codec, None)
    }

    /// [`WalWriter::create`], joining `group` when the policy is
    /// [`SyncPolicy::GroupCommit`] (ignored otherwise). With a group
    /// policy and no handle, a private scheduler is built from the
    /// policy's own thresholds.
    pub fn create_with(
        path: &Path,
        policy: SyncPolicy,
        codec: Codec,
        group: Option<&FsyncScheduler>,
    ) -> Result<Self, StoreError> {
        let mut file = File::create(path).map_err(|e| StoreError::io(path, e))?;
        file.write_all(&codec.wal_magic()).map_err(|e| StoreError::io(path, e))?;
        file.sync_all().map_err(|e| StoreError::io(path, e))?;
        let len = MAGIC_LEN as u64;
        let group = Self::join_group(&file, path, policy, group, len, 0)?;
        Ok(WalWriter {
            file,
            path: path.to_owned(),
            policy,
            codec,
            unsynced: 0,
            frames: 0,
            len,
            synced_len: len,
            synced_frames: 0,
            fsyncs: 0,
            group,
            tracer: Tracer::disabled(),
            trace_id: 0,
        })
    }

    /// Reopens an existing WAL for appending, truncating a torn tail:
    /// `codec` is the file's detected codec, `valid_len` the byte length
    /// of the valid prefix and `frames` the number of valid records in it
    /// (all as reported by [`read_wal`]).
    pub fn open_append(
        path: &Path,
        policy: SyncPolicy,
        codec: Codec,
        valid_len: u64,
        frames: u64,
    ) -> Result<Self, StoreError> {
        Self::open_append_with(path, policy, codec, valid_len, frames, None)
    }

    /// [`WalWriter::open_append`] with optional group-commit membership
    /// (see [`WalWriter::create_with`]). The recovered valid prefix is
    /// registered as already durable.
    pub fn open_append_with(
        path: &Path,
        policy: SyncPolicy,
        codec: Codec,
        valid_len: u64,
        frames: u64,
        group: Option<&FsyncScheduler>,
    ) -> Result<Self, StoreError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(path, e))?;
        file.set_len(valid_len).map_err(|e| StoreError::io(path, e))?;
        let group = Self::join_group(&file, path, policy, group, valid_len, frames)?;
        let mut w = WalWriter {
            file,
            path: path.to_owned(),
            policy,
            codec,
            unsynced: 0,
            frames,
            len: valid_len,
            synced_len: valid_len,
            synced_frames: frames,
            fsyncs: 0,
            group,
            tracer: Tracer::disabled(),
            trace_id: 0,
        };
        use std::io::Seek as _;
        w.file.seek(std::io::SeekFrom::End(0)).map_err(|e| StoreError::io(path, e))?;
        Ok(w)
    }

    /// Registers with the scheduler [`FsyncScheduler::membership`]
    /// resolves for this policy (the single membership rule shared with
    /// [`crate::Store`]), if any.
    fn join_group(
        file: &File,
        path: &Path,
        policy: SyncPolicy,
        group: Option<&FsyncScheduler>,
        durable_len: u64,
        durable_frames: u64,
    ) -> Result<Option<(FsyncScheduler, u64)>, StoreError> {
        let Some(sched) = FsyncScheduler::membership(policy, group) else {
            return Ok(None);
        };
        let clone = file.try_clone().map_err(|e| StoreError::io(path, e))?;
        let id = sched.register(clone, path, durable_len, durable_frames);
        Ok(Some((sched, id)))
    }

    /// Attaches a flight-recorder handle under `name` (the store's
    /// directory): appends emit `WalAppend`, direct syncs emit `Fsync`
    /// with their measured duration. Group-commit drains are emitted by
    /// the scheduler instead.
    pub fn attach_tracer(&mut self, tracer: Tracer, name: &str) {
        self.trace_id = tracer.intern(name);
        self.tracer = tracer;
    }

    /// Appends one record (encoded in the file's codec), syncing
    /// according to the policy.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StoreError> {
        let payload = codec::encode_record(record, self.codec)?;
        let mut buf = Vec::with_capacity(payload.len() + 8);
        encode_frame(&payload, &mut buf);
        self.file.write_all(&buf).map_err(|e| StoreError::io(&self.path, e))?;
        self.frames += 1;
        self.len += buf.len() as u64;
        self.unsynced += 1;
        self.tracer
            .emit_with(|| TraceEvent::WalAppend { store: self.trace_id, bytes: buf.len() as u64 });
        let due = match self.policy {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            SyncPolicy::Never => false,
            SyncPolicy::GroupCommit { .. } => {
                let (sched, id) = self.group.as_ref().expect("group policy implies membership");
                sched.note_append(*id, self.len, self.frames)?;
                self.unsynced = 0; // the scheduler owns the pending count
                false
            }
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces buffered records to stable storage (through the scheduler
    /// for group-commit writers, so their watermark and the scheduler's
    /// agree).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if let Some((sched, id)) = &self.group {
            sched.flush_writer(*id)?;
        } else if self.synced_len != self.len {
            let started = self.tracer.is_enabled().then(std::time::Instant::now);
            self.file.sync_data().map_err(|e| StoreError::io(&self.path, e))?;
            self.fsyncs += 1;
            self.synced_len = self.len;
            self.synced_frames = self.frames;
            if let Some(t0) = started {
                let nanos = t0.elapsed().as_nanos() as u64;
                self.tracer.emit(TraceEvent::Fsync { store: self.trace_id, nanos });
            }
        }
        self.unsynced = 0;
        Ok(())
    }

    /// Records appended to this file (including a recovered valid prefix).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Bytes written to this file (magic + complete frames).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the file holds no records (only the magic header).
    pub fn is_empty(&self) -> bool {
        self.frames == 0
    }

    /// Bytes covered by fsync — the prefix guaranteed to survive a host
    /// crash. For group-commit writers the watermark lives in the
    /// scheduler (a drain triggered by *another* store's append advances
    /// it too).
    pub fn durable_len(&self) -> u64 {
        match &self.group {
            Some((sched, id)) => sched.durable_of(*id).0,
            None => self.synced_len,
        }
    }

    /// Records covered by fsync — the *acked durable* record count (see
    /// [`SyncPolicy`] for the ack rule).
    pub fn durable_frames(&self) -> u64 {
        match &self.group {
            Some((sched, id)) => sched.durable_of(*id).1,
            None => self.synced_frames,
        }
    }

    /// Data fsyncs this writer itself performed after creation (the
    /// header sync at file creation is excluded, and group-commit drains
    /// are counted by the scheduler instead) — the E18 measurement hook.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// The codec this file was created with (every append uses it).
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for WalWriter {
    /// Deregisters from the group-commit scheduler. Pending (never-acked)
    /// records are abandoned — exactly the crash semantics the scheduler
    /// documents for a store dropped mid-batch.
    fn drop(&mut self) {
        if let Some((sched, id)) = self.group.take() {
            sched.deregister(id);
        }
    }
}

/// Result of reading a WAL file for recovery.
#[derive(Debug)]
pub struct WalContents {
    /// The valid records, in append order.
    pub records: Vec<WalRecord>,
    /// The codec detected from the file's format byte.
    pub codec: Codec,
    /// Byte length of the valid prefix (magic + complete frames).
    pub valid_len: u64,
    /// True when a torn final frame was truncated away.
    pub torn_tail: bool,
}

/// Reads and validates a WAL file, auto-detecting its codec from the
/// format byte. A torn final frame is tolerated (and reported); a
/// checksum mismatch or undecodable payload on a complete frame is a
/// typed error.
pub fn read_wal(path: &Path) -> Result<WalContents, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, e))?;
    let Some(codec) = Codec::detect_wal(&bytes) else {
        return Err(StoreError::BadMagic { file: path.to_owned() });
    };
    let body = &bytes[MAGIC_LEN..];
    let mut scanner = FrameScanner::new(body);
    let mut records = Vec::new();
    loop {
        // The scanner's offset moves past a frame once it validates, so
        // remember where this frame started for error reporting.
        let frame_at = scanner.offset();
        match scanner.next_frame() {
            FrameStep::Frame(payload) => {
                let record = codec::decode_record(payload, codec).map_err(|reason| {
                    StoreError::CorruptFrame {
                        file: path.to_owned(),
                        offset: (MAGIC_LEN + frame_at) as u64,
                        reason,
                    }
                })?;
                records.push(record);
            }
            FrameStep::End => {
                return Ok(WalContents {
                    records,
                    codec,
                    valid_len: (MAGIC_LEN + scanner.offset()) as u64,
                    torn_tail: false,
                });
            }
            FrameStep::TornTail => {
                return Ok(WalContents {
                    records,
                    codec,
                    valid_len: (MAGIC_LEN + scanner.offset()) as u64,
                    torn_tail: true,
                });
            }
            FrameStep::Corrupt { offset, reason } => {
                return Err(StoreError::CorruptFrame {
                    file: path.to_owned(),
                    offset: (MAGIC_LEN + offset) as u64,
                    reason,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScratchDir;
    use codb_relational::glav::TField;
    use codb_relational::Value;

    fn firing(k: i64) -> RuleFiring {
        RuleFiring {
            atoms: vec![("r".to_owned(), vec![TField::Const(Value::Int(k)), TField::Fresh(0)])],
        }
    }

    #[test]
    fn append_and_read_round_trip_in_both_codecs() {
        for codec in [Codec::Json, Codec::Binary] {
            let dir = ScratchDir::new("wal-roundtrip");
            let path = dir.path().join("codb-0000000000.wal");
            let mut w = WalWriter::create(&path, SyncPolicy::Always, codec).unwrap();
            let records = vec![
                WalRecord::Caches { recv: RecvCaches::new() },
                WalRecord::Applied { rule: "e0".into(), firings: vec![firing(1), firing(2)] },
                WalRecord::LocalInsert {
                    relation: "r".into(),
                    tuple: Tuple::new(vec![Value::Int(9), Value::str("x")]),
                },
            ];
            for r in &records {
                w.append(r).unwrap();
            }
            let contents = read_wal(&path).unwrap();
            assert_eq!(contents.records, records, "{codec}");
            assert_eq!(contents.codec, codec, "auto-detected from the format byte");
            assert!(!contents.torn_tail);
            assert_eq!(w.frames(), 3);
            assert_eq!(w.codec(), codec);
        }
    }

    #[test]
    fn torn_tail_is_tolerated_and_truncated_on_reopen() {
        let dir = ScratchDir::new("wal-torn");
        let path = dir.path().join("codb-0000000000.wal");
        let mut w = WalWriter::create(&path, SyncPolicy::Always, Codec::Binary).unwrap();
        w.append(&WalRecord::Caches { recv: RecvCaches::new() }).unwrap();
        w.append(&WalRecord::Applied { rule: "e".into(), firings: vec![firing(1)] }).unwrap();
        drop(w);
        // Simulate a crash mid-append: chop bytes off the end.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records.len(), 1, "only the first record survives");
        assert!(contents.torn_tail);
        // Reopen for append: the torn bytes are gone, the log grows cleanly.
        let mut w = WalWriter::open_append(
            &path,
            SyncPolicy::Always,
            contents.codec,
            contents.valid_len,
            1,
        )
        .unwrap();
        w.append(&WalRecord::LocalInsert {
            relation: "r".into(),
            tuple: Tuple::new(vec![Value::Int(1)]),
        })
        .unwrap();
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records.len(), 2);
        assert!(!contents.torn_tail);
    }

    #[test]
    fn bit_flip_mid_log_is_a_typed_error() {
        let dir = ScratchDir::new("wal-flip");
        let path = dir.path().join("codb-0000000000.wal");
        let mut w = WalWriter::create(&path, SyncPolicy::Always, Codec::Binary).unwrap();
        w.append(&WalRecord::Applied { rule: "e".into(), firings: vec![firing(7)] }).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 3;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match read_wal(&path) {
            Err(StoreError::CorruptFrame { reason, .. }) => {
                assert!(reason.contains("checksum mismatch"), "{reason}");
            }
            other => panic!("expected CorruptFrame, got {other:?}"),
        }
    }

    #[test]
    fn missing_magic_is_rejected() {
        let dir = ScratchDir::new("wal-magic");
        let path = dir.path().join("not-a.wal");
        std::fs::write(&path, b"garbage").unwrap();
        assert!(matches!(read_wal(&path), Err(StoreError::BadMagic { .. })));
        // An unknown *format byte* under a valid prefix is BadMagic too —
        // a store from a future format version must not be misread.
        std::fs::write(&path, b"CODBWAL9").unwrap();
        assert!(matches!(read_wal(&path), Err(StoreError::BadMagic { .. })));
    }

    #[test]
    fn payload_codec_follows_the_format_byte_not_the_caller() {
        // A JSON WAL opened in a binary-target store keeps decoding (and
        // appending) as JSON: the file's own format byte wins.
        let dir = ScratchDir::new("wal-mixcheck");
        let path = dir.path().join("codb-0000000000.wal");
        let mut w = WalWriter::create(&path, SyncPolicy::Always, Codec::Json).unwrap();
        w.append(&WalRecord::Applied { rule: "e".into(), firings: vec![firing(1)] }).unwrap();
        drop(w);
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.codec, Codec::Json);
        let mut w = WalWriter::open_append(
            &path,
            SyncPolicy::Always,
            contents.codec,
            contents.valid_len,
            contents.records.len() as u64,
        )
        .unwrap();
        w.append(&WalRecord::Applied { rule: "e".into(), firings: vec![firing(2)] }).unwrap();
        drop(w);
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records.len(), 2, "appended record decodes as JSON");
    }

    #[test]
    fn sync_policy_parses_from_cli_strings_and_round_trips() {
        for (text, policy) in [
            ("always", SyncPolicy::Always),
            ("never", SyncPolicy::Never),
            ("everyN:8", SyncPolicy::EveryN(8)),
            ("group", SyncPolicy::GroupCommit { max_batch: 64, max_records: 256 }),
            ("group:128", SyncPolicy::GroupCommit { max_batch: 64, max_records: 128 }),
            ("group:128,16", SyncPolicy::GroupCommit { max_batch: 16, max_records: 128 }),
        ] {
            assert_eq!(text.parse::<SyncPolicy>().unwrap(), policy, "{text}");
            // Display output parses back to the same policy.
            assert_eq!(policy.to_string().parse::<SyncPolicy>().unwrap(), policy);
        }
        assert!("everyN".parse::<SyncPolicy>().is_err(), "N is mandatory");
        assert!("group:x".parse::<SyncPolicy>().is_err());
        assert!("fsync".parse::<SyncPolicy>().is_err());
    }

    #[test]
    fn durable_watermark_tracks_the_policy() {
        // EveryN(2): records are acked durable only at sync points; the
        // watermark exposes exactly the prefix a host crash preserves.
        let dir = ScratchDir::new("wal-watermark");
        let path = dir.path().join("codb-0000000000.wal");
        let mut w = WalWriter::create(&path, SyncPolicy::EveryN(2), Codec::Binary).unwrap();
        w.append(&WalRecord::Caches { recv: RecvCaches::new() }).unwrap();
        assert_eq!(w.durable_frames(), 0, "below N, unacked");
        w.append(&WalRecord::Applied { rule: "e".into(), firings: vec![firing(1)] }).unwrap();
        assert_eq!(w.durable_frames(), 2, "sync point reached");
        assert_eq!(w.durable_len(), w.len());
        w.append(&WalRecord::Applied { rule: "e".into(), firings: vec![firing(2)] }).unwrap();
        assert_eq!(w.durable_frames(), 2, "tail pending again");
        assert!(w.durable_len() < w.len());
        // Truncating to the durable watermark (the host-crash model the
        // faultplan harness applies for real) yields a valid clean prefix
        // holding exactly the acked records.
        let durable = w.durable_len();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..durable as usize]).unwrap();
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.records.len(), 2, "every acked record survives");
        assert!(!contents.torn_tail, "the watermark sits on a frame boundary");
    }
}
