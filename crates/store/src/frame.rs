//! Checksummed, length-prefixed frames — the unit of both WAL and snapshot
//! files.
//!
//! Layout: `[len: u32 LE][!len: u32 LE][crc32: u32 LE][payload: len bytes]`,
//! where the CRC is the IEEE CRC-32 of the payload bytes and `!len` is the
//! bitwise complement of `len`. Frames are self-delimiting so a reader can
//! scan a file without any index.
//!
//! The complemented length copy is what lets the scanner tell a *torn
//! tail* (tolerated — the artifact of a crash mid-append) from a
//! *corrupted length field* (rejected): a frame whose `len`/`!len` pair
//! does not match is corruption even when `len` claims to run past
//! end-of-file, so bit rot in a length field can never silently truncate
//! the durable records behind it. Only a frame whose validated header (or
//! the header itself) is cut off by end-of-file is torn.

/// Magic prefix of **JSON-format** WAL files — the eighth byte is the
/// per-file format byte (see [`crate::codec::Codec`]; binary WALs end in
/// `'2'`). Kept as a named constant because it is the seed on-disk
/// format every store written before the binary codec carries; derived
/// from the codec so the magic scheme has one source of truth.
pub const WAL_MAGIC: [u8; 8] = crate::codec::Codec::Json.wal_magic();
/// Magic prefix of **JSON-format** snapshot files (see [`WAL_MAGIC`]).
pub const SNAP_MAGIC: [u8; 8] = crate::codec::Codec::Json.snap_magic();

/// Frame header size: `len` + `!len` + `crc`.
pub const FRAME_HEADER: usize = 12;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32 (the polynomial used by zip/png/ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xFF) as usize];
    }
    !c
}

/// Appends one frame wrapping `payload` to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    let len = payload.len() as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&(!len).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One step of frame scanning.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameStep<'a> {
    /// A complete, checksum-valid frame.
    Frame(&'a [u8]),
    /// End of input exactly at a frame boundary.
    End,
    /// The remaining bytes are a prefix of a frame (crash mid-append): the
    /// header is cut off, or a *validated* header promises more payload
    /// than the file holds.
    TornTail,
    /// The frame is damaged: its length check or payload checksum failed.
    Corrupt {
        /// Byte offset of the frame's header within the scanned region.
        offset: usize,
        /// What failed.
        reason: String,
    },
}

/// Iterator-style scanner over a byte region containing frames.
pub struct FrameScanner<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameScanner<'a> {
    /// Scans `buf` (which must start at a frame boundary).
    pub fn new(buf: &'a [u8]) -> Self {
        FrameScanner { buf, pos: 0 }
    }

    /// Byte offset of the next unread frame header.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Advances to the next frame.
    pub fn next_frame(&mut self) -> FrameStep<'a> {
        let rest = &self.buf[self.pos..];
        if rest.is_empty() {
            return FrameStep::End;
        }
        if rest.len() < FRAME_HEADER {
            return FrameStep::TornTail;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        let len_inv = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len_inv != !len {
            // The length field itself is damaged. Without the complement
            // check this would be indistinguishable from a torn tail, and
            // recovery would silently truncate every durable frame behind
            // the bit flip.
            return FrameStep::Corrupt {
                offset: self.pos,
                reason: format!("length check failed: len {len:#010x}, complement {len_inv:#010x}"),
            };
        }
        let stored = u32::from_le_bytes(rest[8..12].try_into().expect("4 bytes"));
        let Some(payload) = rest.get(FRAME_HEADER..FRAME_HEADER + len as usize) else {
            // Validated length, missing payload: the append was cut short.
            return FrameStep::TornTail;
        };
        let computed = crc32(payload);
        if computed != stored {
            return FrameStep::Corrupt {
                offset: self.pos,
                reason: format!(
                    "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                ),
            };
        }
        self.pos += FRAME_HEADER + len as usize;
        FrameStep::Frame(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_multiple_frames() {
        let mut buf = Vec::new();
        encode_frame(b"alpha", &mut buf);
        encode_frame(b"", &mut buf);
        encode_frame(b"beta-beta", &mut buf);
        let mut sc = FrameScanner::new(&buf);
        assert_eq!(sc.next_frame(), FrameStep::Frame(b"alpha" as &[u8]));
        assert_eq!(sc.next_frame(), FrameStep::Frame(b"" as &[u8]));
        assert_eq!(sc.next_frame(), FrameStep::Frame(b"beta-beta" as &[u8]));
        assert_eq!(sc.next_frame(), FrameStep::End);
    }

    #[test]
    fn truncation_is_torn_not_corrupt() {
        let mut buf = Vec::new();
        encode_frame(b"payload-bytes", &mut buf);
        for cut in 1..buf.len() {
            let mut sc = FrameScanner::new(&buf[..cut]);
            assert_eq!(sc.next_frame(), FrameStep::TornTail, "cut at {cut}");
        }
    }

    #[test]
    fn payload_bit_flip_is_corrupt() {
        let mut buf = Vec::new();
        encode_frame(b"payload-bytes", &mut buf);
        buf[FRAME_HEADER + 3] ^= 0x10;
        let mut sc = FrameScanner::new(&buf);
        assert!(matches!(sc.next_frame(), FrameStep::Corrupt { offset: 0, .. }));
    }

    #[test]
    fn length_bit_flip_is_corrupt_not_torn() {
        // A flipped length bit claiming a huge frame must NOT read as a
        // torn tail — that would silently discard the frames behind it.
        let mut buf = Vec::new();
        encode_frame(b"first", &mut buf);
        encode_frame(b"second", &mut buf);
        let mut flipped = buf.clone();
        flipped[1] ^= 0x80; // len low word, high-ish bit: promises megabytes
        let mut sc = FrameScanner::new(&flipped);
        match sc.next_frame() {
            FrameStep::Corrupt { offset: 0, reason } => {
                assert!(reason.contains("length check"), "{reason}");
            }
            other => panic!("expected length-check corruption, got {other:?}"),
        }
    }

    #[test]
    fn corruption_mid_stream_reports_offset() {
        let mut buf = Vec::new();
        encode_frame(b"first", &mut buf);
        let second_at = buf.len();
        encode_frame(b"second", &mut buf);
        buf[second_at + FRAME_HEADER] ^= 1;
        let mut sc = FrameScanner::new(&buf);
        assert!(matches!(sc.next_frame(), FrameStep::Frame(_)));
        match sc.next_frame() {
            FrameStep::Corrupt { offset, .. } => assert_eq!(offset, second_at),
            other => panic!("expected corruption, got {other:?}"),
        }
    }
}
