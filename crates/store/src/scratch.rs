//! Self-cleaning scratch directories for tests, benches and demos.
//!
//! The build environment deliberately has no `tempfile` crate; this is the
//! minimal std-only equivalent the durability tests need. Uniqueness comes
//! from the process id, a monotonic in-process counter and the wall clock.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp dir, removed (recursively) on drop.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Creates a fresh, empty scratch directory whose name starts with
    /// `prefix`.
    pub fn new(prefix: &str) -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let path = std::env::temp_dir().join(format!(
            "{prefix}-{}-{}-{nanos}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&path).expect("scratch dir creation");
        ScratchDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_dirs_are_unique_and_cleaned() {
        let a = ScratchDir::new("codb-scratch");
        let b = ScratchDir::new("codb-scratch");
        assert_ne!(a.path(), b.path());
        let kept = a.path().to_owned();
        std::fs::write(kept.join("f"), b"x").unwrap();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().exists());
    }
}
