//! The shared group-commit fsync scheduler: one host-wide batching point
//! for the WALs of many co-located stores.
//!
//! Under [`SyncPolicy::EveryN`] every WAL writer keeps a *private*
//! unsynced-record counter, so a single host running many `codb` nodes
//! pays one independent fsync stream per store — the opposite of the
//! amortisation a many-node single-host deployment wants. A
//! [`FsyncScheduler`] replaces those private counters with one host-wide
//! policy ([`SyncPolicy::GroupCommit`]): writers *register* with the
//! scheduler, report every append, and the scheduler **drains** — one
//! fsync pass over all dirty files — when either threshold trips:
//!
//! * `max_records` — host-wide cap on appended-but-unsynced records
//!   across every registered store; the append that reaches it forces a
//!   drain. This is the durability ack window: a record is acked durable
//!   only once a drain (or explicit flush) covers it, and at most
//!   `max_records` appended-but-unacked records exist host-wide at any
//!   moment.
//! * `max_batch` — cap on distinct dirty stores coalesced into one
//!   drain; reaching it also forces a drain, bounding the length of a
//!   drain pass (and the staleness of the earliest dirty store).
//!
//! A drain fsyncs each dirty file **once**, no matter how many pending
//! records it holds — that coalescing is where the fsync amortisation
//! comes from (experiment E18 measures it). The scheduler is
//! demand-driven: there is no background timer thread (the stores live
//! inside a deterministic simulator), so a lone pending record stays
//! unacked until more traffic trips a threshold or a caller flushes
//! explicitly ([`FsyncScheduler::flush_all`], [`crate::Store::sync`],
//! checkpoint). Dropping a store does **not** flush — drop models a
//! crash (the fault harnesses kill nodes by dropping them), so the
//! pending tail is abandoned, which is safe precisely because it was
//! never acked.
//!
//! **Durability ack semantics** are the same as one store under
//! [`SyncPolicy::Always`]: a record is never *acked* (reported durable
//! via [`crate::Store::durable_wal_records`]) before the fsync covering
//! it completes. Group commit only *defers and batches* the ack; it
//! never lies. A crash loses at most the pending (never-acked) tail of
//! each store, and recovery still finds a clean frame prefix — the torn
//! tail guarantee is untouched because the scheduler changes *when*
//! fsync runs, not *what* is written.
//!
//! Degenerate configurations collapse to per-record durability (tested):
//! `max_records == 0` drains on every append, and `max_batch <= 1`
//! drains as soon as any store is dirty — both behave exactly like
//! [`SyncPolicy::Always`].
//!
//! The full written contract lives in `docs/DURABILITY.md` (rendered as
//! [`crate::durability`]).

use crate::store::StoreError;
use crate::wal::SyncPolicy;
use codb_trace::{TraceEvent, Tracer};
use std::collections::BTreeMap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// One registered WAL file's slot in the scheduler.
#[derive(Debug)]
struct Slot {
    /// A clone of the writer's file handle — fsyncing it syncs the same
    /// underlying file, so the scheduler can drain without borrowing the
    /// writer.
    file: File,
    /// The file's path, for error context.
    path: PathBuf,
    /// Appended records not yet covered by a fsync.
    pending: u64,
    /// Byte length the writer has reported (magic + complete frames).
    len: u64,
    /// Records the writer has reported.
    frames: u64,
    /// Byte length covered by the last fsync — what survives a crash.
    durable_len: u64,
    /// Records covered by the last fsync — the *acked* record count.
    durable_frames: u64,
    /// Latched fsync failure. A failed slot leaves the drain rotation
    /// (its broken fd is never retried, its pending records leave the
    /// totals so it cannot wedge the thresholds) and the error is
    /// surfaced to **its own writer's** next append/flush — the owner
    /// latches it and detaches, exactly like a direct write failure.
    /// Other stores on the scheduler stay healthy.
    failed: Option<String>,
}

#[derive(Debug)]
struct Inner {
    max_batch: u64,
    max_records: u64,
    next_id: u64,
    slots: BTreeMap<u64, Slot>,
    /// Running total of pending records across healthy slots (kept
    /// incrementally — the append path must not scan every slot).
    pending_total: u64,
    /// Running count of healthy slots with `pending > 0`.
    dirty_stores: u64,
    /// Ids whose `pending` went 0 → 1 since the last drain — the work
    /// list a drain visits, so a pass is O(dirty), not O(registered).
    /// May hold stale entries (flushed or deregistered since); the
    /// drain skips those by re-checking `pending`.
    dirty_ids: Vec<u64>,
    stats: FsyncSchedulerStats,
    /// Flight recorder: drains emit `Fsync`/`GroupDrain` events through
    /// it (disabled by default — one branch per drain).
    tracer: Tracer,
}

/// Counters the scheduler keeps about itself (experiment E18 reads
/// them; they are monotonic over the scheduler's lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsyncSchedulerStats {
    /// Drain passes executed (threshold-triggered or [`flush_all`]).
    ///
    /// [`flush_all`]: FsyncScheduler::flush_all
    pub drains: u64,
    /// `fdatasync` calls issued (one per dirty file per drain, plus one
    /// per single-writer flush).
    pub fsyncs: u64,
    /// Appends reported by registered writers.
    pub appends: u64,
    /// Records whose durability ack was covered by a *shared* drain pass
    /// (the coalescing the scheduler exists for).
    pub drained_records: u64,
    /// Writers currently registered.
    pub registered: u64,
    /// Writers that deregistered with pending (never-acked) records —
    /// a store dropped mid-batch; its unsynced tail was abandoned, which
    /// is safe because those records were never reported durable.
    pub abandoned_pending: u64,
    /// Stores whose fsync failed: each left the drain rotation with its
    /// error latched, to be surfaced to its own writer's next
    /// append/flush.
    pub failed_stores: u64,
}

/// A cloneable handle to one shared group-commit scheduler. All clones
/// address the same batching state; a network hands one handle to every
/// node's store (see `CoDbNetwork::open_persistence_all` in `codb-core`).
#[derive(Clone)]
pub struct FsyncScheduler {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for FsyncScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("FsyncScheduler")
            .field("max_batch", &inner.max_batch)
            .field("max_records", &inner.max_records)
            .field("registered", &inner.slots.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl FsyncScheduler {
    /// Creates a scheduler with the given thresholds (see the module docs
    /// for their meaning; `max_records == 0` and `max_batch <= 1` both
    /// degenerate to per-append draining, i.e. [`SyncPolicy::Always`]
    /// semantics).
    pub fn new(max_batch: u64, max_records: u64) -> Self {
        FsyncScheduler {
            inner: Arc::new(Mutex::new(Inner {
                max_batch,
                max_records,
                next_id: 0,
                slots: BTreeMap::new(),
                pending_total: 0,
                dirty_stores: 0,
                dirty_ids: Vec::new(),
                stats: FsyncSchedulerStats::default(),
                tracer: Tracer::disabled(),
            })),
        }
    }

    /// Attaches a flight-recorder handle: every drain emits per-file
    /// `Fsync` (with measured duration) and a `GroupDrain` summary.
    pub fn attach_tracer(&self, tracer: Tracer) {
        self.lock().tracer = tracer;
    }

    /// A scheduler configured from `policy` — `Some` only for
    /// [`SyncPolicy::GroupCommit`]. A writer created under a group-commit
    /// policy with no shared handle builds its own private scheduler this
    /// way (correct, but batching only within that one store).
    pub fn for_policy(policy: SyncPolicy) -> Option<Self> {
        match policy {
            SyncPolicy::GroupCommit { max_batch, max_records } => {
                Some(FsyncScheduler::new(max_batch, max_records))
            }
            _ => None,
        }
    }

    /// The scheduler a writer/store under `policy` belongs to — the one
    /// membership rule, used by both [`crate::Store`] and the WAL writer
    /// so the handle a store reports and the one its writer batches
    /// through can never diverge: group-commit policies join `shared`
    /// (or a private scheduler when none is passed); per-store policies
    /// get `None` even when a handle was passed.
    pub fn membership(policy: SyncPolicy, shared: Option<&FsyncScheduler>) -> Option<Self> {
        if !matches!(policy, SyncPolicy::GroupCommit { .. }) {
            return None;
        }
        shared.cloned().or_else(|| Self::for_policy(policy))
    }

    /// The dirty-store coalescing cap.
    pub fn max_batch(&self) -> u64 {
        self.lock().max_batch
    }

    /// The host-wide pending-record cap (the durability ack window).
    pub fn max_records(&self) -> u64 {
        self.lock().max_records
    }

    /// Snapshot of the scheduler's counters.
    pub fn stats(&self) -> FsyncSchedulerStats {
        let mut inner = self.lock();
        let registered = inner.slots.len() as u64;
        inner.stats.registered = registered;
        inner.stats
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panic while the lock was held (poison) cannot corrupt the
        // bookkeeping in a way recovery doesn't already handle — worst
        // case some pending counts are stale and the next drain re-syncs
        // clean files — so recover the guard rather than cascade.
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Registers a WAL file. `durable_len`/`durable_frames` describe the
    /// prefix already on stable storage (the magic for a fresh file, the
    /// recovered valid prefix for a reopened one). Returns the writer id
    /// used by every later call.
    pub(crate) fn register(&self, file: File, path: &Path, durable_len: u64, frames: u64) -> u64 {
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.slots.insert(
            id,
            Slot {
                file,
                path: path.to_owned(),
                pending: 0,
                len: durable_len,
                frames,
                durable_len,
                durable_frames: frames,
                failed: None,
            },
        );
        id
    }

    /// Removes a writer. Pending (never-acked) records are abandoned —
    /// the mid-batch deregistration case: the drained totals shrink and
    /// the next drain simply no longer visits the file.
    pub(crate) fn deregister(&self, id: u64) {
        let mut inner = self.lock();
        if let Some(slot) = inner.slots.remove(&id) {
            if slot.pending > 0 && slot.failed.is_none() {
                inner.stats.abandoned_pending += slot.pending;
                inner.pending_total -= slot.pending;
                inner.dirty_stores -= 1;
            }
        }
    }

    /// Reports one append by writer `id` (`len`/`frames` are the file's
    /// new totals) and drains if a threshold trips. Returns the latched
    /// error if this writer's own fsync failed (now or in an earlier
    /// drain) — the owner latches it and detaches, like any write error.
    pub(crate) fn note_append(&self, id: u64, len: u64, frames: u64) -> Result<(), StoreError> {
        let mut inner = self.lock();
        inner.stats.appends += 1;
        let was_clean = {
            let slot = inner.slots.get_mut(&id).expect("writer registered with this scheduler");
            if let Some(detail) = &slot.failed {
                return Err(StoreError::Io { file: slot.path.clone(), detail: detail.clone() });
            }
            let was_clean = slot.pending == 0;
            slot.pending += 1;
            slot.len = len;
            slot.frames = frames;
            was_clean
        };
        if was_clean {
            inner.dirty_stores += 1;
            inner.dirty_ids.push(id);
        }
        inner.pending_total += 1;
        if inner.pending_total >= inner.max_records.max(1)
            || inner.dirty_stores >= inner.max_batch.max(1)
        {
            drain(&mut inner);
            // The drain latches failures per slot; only this writer's own
            // failure is this caller's error.
            let slot = inner.slots.get(&id).expect("still registered");
            if let Some(detail) = &slot.failed {
                return Err(StoreError::Io { file: slot.path.clone(), detail: detail.clone() });
            }
        }
        Ok(())
    }

    /// Fsyncs writer `id`'s file now, regardless of thresholds (explicit
    /// [`crate::Store::sync`], checkpoint, close). Other writers' pending
    /// records stay pending.
    pub(crate) fn flush_writer(&self, id: u64) -> Result<(), StoreError> {
        let mut inner = self.lock();
        // Cloned out so the flight-recorder handle does not alias the
        // mutable `slot` borrow (the guard deref can't split fields).
        let tracer = inner.tracer.clone();
        let (pending, outcome) = {
            let slot = inner.slots.get_mut(&id).expect("writer registered with this scheduler");
            if let Some(detail) = &slot.failed {
                return Err(StoreError::Io { file: slot.path.clone(), detail: detail.clone() });
            }
            let pending = slot.pending;
            slot.pending = 0;
            if slot.durable_len == slot.len {
                // Nothing new on disk; the watermark is already current.
                (pending, Ok(false))
            } else {
                let started = tracer.is_enabled().then(std::time::Instant::now);
                match slot.file.sync_data() {
                    Ok(()) => {
                        slot.durable_len = slot.len;
                        slot.durable_frames = slot.frames;
                        if let Some(t0) = started {
                            let store = tracer.intern(&slot.path.display().to_string());
                            let nanos = t0.elapsed().as_nanos() as u64;
                            tracer.emit(TraceEvent::Fsync { store, nanos });
                        }
                        (pending, Ok(true))
                    }
                    Err(e) => {
                        let detail = e.to_string();
                        slot.failed = Some(detail.clone());
                        (pending, Err(StoreError::Io { file: slot.path.clone(), detail }))
                    }
                }
            }
        };
        if pending > 0 {
            inner.pending_total -= pending;
            inner.dirty_stores -= 1;
        }
        match outcome {
            Ok(synced) => {
                if synced {
                    inner.stats.fsyncs += 1;
                }
                Ok(())
            }
            Err(e) => {
                inner.stats.failed_stores += 1;
                Err(e)
            }
        }
    }

    /// Drains every dirty writer now — the harness / shutdown hook.
    /// Fsync failures are latched per slot (surfaced to each owner's
    /// next append/flush), never returned here.
    pub fn flush_all(&self) {
        let mut inner = self.lock();
        if inner.dirty_stores > 0 {
            drain(&mut inner);
        }
    }

    /// The durable watermark of writer `id`: `(bytes, records)` covered
    /// by fsync — exactly what survives a host crash.
    pub(crate) fn durable_of(&self, id: u64) -> (u64, u64) {
        let inner = self.lock();
        let slot = inner.slots.get(&id).expect("writer registered with this scheduler");
        (slot.durable_len, slot.durable_frames)
    }
}

/// One drain pass: fsync each dirty healthy file once, advance its
/// durable watermark, clear its pending count. An fsync failure is
/// latched on **that slot** (it leaves the drain rotation and its owner
/// sees the error at its next append/flush — never a bystander whose
/// append merely tripped the threshold) and the pass continues over the
/// remaining stores, so one bad disk cannot poison the whole scheduler.
fn drain(inner: &mut Inner) {
    inner.stats.drains += 1;
    let mut acked = 0u64;
    let mut removed = 0u64;
    let mut fsyncs = 0u64;
    let mut failed = 0u64;
    let mut visited = 0u64;
    // Only the stores that went dirty since the last drain, not every
    // registered slot — stale entries (flushed/deregistered since) fall
    // through the pending re-check.
    for id in std::mem::take(&mut inner.dirty_ids) {
        let Some(slot) = inner.slots.get_mut(&id) else { continue };
        if slot.pending == 0 || slot.failed.is_some() {
            continue;
        }
        visited += 1;
        removed += slot.pending;
        let started = inner.tracer.is_enabled().then(std::time::Instant::now);
        match slot.file.sync_data() {
            Ok(()) => {
                fsyncs += 1;
                acked += slot.pending;
                slot.durable_len = slot.len;
                slot.durable_frames = slot.frames;
                if let Some(t0) = started {
                    let store = inner.tracer.intern(&slot.path.display().to_string());
                    let nanos = t0.elapsed().as_nanos() as u64;
                    inner.tracer.emit(TraceEvent::Fsync { store, nanos });
                }
            }
            Err(e) => {
                // These pending records can never be acked; they leave
                // the totals so the dead slot cannot wedge the window.
                slot.failed = Some(e.to_string());
                failed += 1;
            }
        }
        slot.pending = 0;
    }
    inner.pending_total -= removed;
    inner.dirty_stores -= visited;
    inner.stats.fsyncs += fsyncs;
    inner.stats.drained_records += acked;
    inner.stats.failed_stores += failed;
    inner.tracer.emit_with(|| TraceEvent::GroupDrain { stores: visited, records: acked, fsyncs });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{SyncPolicy, WalRecord, WalWriter};
    use crate::{Codec, ScratchDir};
    use codb_relational::{Tuple, Value};

    fn record(k: i64) -> WalRecord {
        WalRecord::LocalInsert { relation: "r".into(), tuple: Tuple::new(vec![Value::Int(k)]) }
    }

    fn writer(
        dir: &ScratchDir,
        name: &str,
        policy: SyncPolicy,
        sched: &FsyncScheduler,
    ) -> WalWriter {
        WalWriter::create_with(&dir.path().join(name), policy, Codec::Binary, Some(sched)).unwrap()
    }

    #[test]
    fn drains_coalesce_across_writers_on_the_record_threshold() {
        let dir = ScratchDir::new("group-coalesce");
        let policy = SyncPolicy::GroupCommit { max_batch: 64, max_records: 6 };
        let sched = FsyncScheduler::for_policy(policy).unwrap();
        let mut a = writer(&dir, "a.wal", policy, &sched);
        let mut b = writer(&dir, "b.wal", policy, &sched);
        // Five appends across two files: below the threshold, nothing is
        // acked durable yet.
        for k in 0..3 {
            a.append(&record(k)).unwrap();
        }
        for k in 0..2 {
            b.append(&record(k)).unwrap();
        }
        assert_eq!(sched.stats().fsyncs, 0);
        assert_eq!(a.durable_frames(), 0);
        assert_eq!(b.durable_frames(), 0);
        // The sixth append trips max_records: one drain, two fsyncs (one
        // per dirty file), everything acked.
        b.append(&record(2)).unwrap();
        let stats = sched.stats();
        assert_eq!(stats.drains, 1);
        assert_eq!(stats.fsyncs, 2, "one fsync per dirty file, not per record");
        assert_eq!(stats.drained_records, 6);
        assert_eq!(a.durable_frames(), 3);
        assert_eq!(b.durable_frames(), 3);
        assert_eq!(a.durable_len(), a.len());
        assert_eq!(b.durable_len(), b.len());
    }

    #[test]
    fn dirty_store_threshold_forces_a_drain() {
        let dir = ScratchDir::new("group-batch");
        let policy = SyncPolicy::GroupCommit { max_batch: 2, max_records: 1_000 };
        let sched = FsyncScheduler::for_policy(policy).unwrap();
        let mut a = writer(&dir, "a.wal", policy, &sched);
        let mut b = writer(&dir, "b.wal", policy, &sched);
        a.append(&record(0)).unwrap();
        assert_eq!(sched.stats().drains, 0, "one dirty store, below max_batch");
        b.append(&record(0)).unwrap();
        assert_eq!(sched.stats().drains, 1, "second dirty store trips max_batch");
        assert_eq!(a.durable_frames(), 1);
        assert_eq!(b.durable_frames(), 1);
    }

    #[test]
    fn degenerate_configs_behave_like_always() {
        // max_records = 0: every append drains. max_batch = 1: the
        // appending store is dirty, so every append drains. Both give
        // per-record ack — SyncPolicy::Always semantics.
        let dir = ScratchDir::new("group-degenerate");
        for policy in [
            SyncPolicy::GroupCommit { max_batch: 64, max_records: 0 },
            SyncPolicy::GroupCommit { max_batch: 1, max_records: 1_000 },
        ] {
            let sched = FsyncScheduler::for_policy(policy).unwrap();
            let name = format!("{policy}.wal").replace([':', ','], "-");
            let mut w = writer(&dir, &name, policy, &sched);
            for k in 0..4 {
                w.append(&record(k)).unwrap();
                assert_eq!(w.durable_frames(), (k + 1) as u64, "{policy}: acked per append");
                assert_eq!(w.durable_len(), w.len(), "{policy}");
            }
            assert_eq!(sched.stats().fsyncs, 4, "{policy}: one fsync per append");
        }
    }

    #[test]
    fn deregistration_mid_batch_abandons_pending_and_keeps_draining() {
        let dir = ScratchDir::new("group-dereg");
        let policy = SyncPolicy::GroupCommit { max_batch: 64, max_records: 4 };
        let sched = FsyncScheduler::for_policy(policy).unwrap();
        let mut a = writer(&dir, "a.wal", policy, &sched);
        let mut b = writer(&dir, "b.wal", policy, &sched);
        a.append(&record(0)).unwrap();
        b.append(&record(0)).unwrap();
        b.append(&record(1)).unwrap();
        // Drop `b` mid-batch: its two pending records leave the totals
        // (they were never acked, so nothing durable is lost).
        drop(b);
        let stats = sched.stats();
        assert_eq!(stats.abandoned_pending, 2);
        assert_eq!(stats.registered, 1);
        // The survivor's traffic still reaches the (unchanged) record
        // threshold and drains only the live file.
        a.append(&record(1)).unwrap();
        a.append(&record(2)).unwrap();
        a.append(&record(3)).unwrap();
        let stats = sched.stats();
        assert_eq!(stats.drains, 1);
        assert_eq!(stats.fsyncs, 1, "only the surviving file is in the pass");
        assert_eq!(a.durable_frames(), 4);
    }

    #[test]
    fn explicit_flush_acks_one_writer_without_draining_others() {
        let dir = ScratchDir::new("group-flush");
        let policy = SyncPolicy::GroupCommit { max_batch: 64, max_records: 1_000 };
        let sched = FsyncScheduler::for_policy(policy).unwrap();
        let mut a = writer(&dir, "a.wal", policy, &sched);
        let mut b = writer(&dir, "b.wal", policy, &sched);
        a.append(&record(0)).unwrap();
        b.append(&record(0)).unwrap();
        a.sync().unwrap();
        assert_eq!(a.durable_frames(), 1, "explicit sync acks immediately");
        assert_eq!(b.durable_frames(), 0, "other writers stay pending");
        // flush_all drains the rest; a second flush_all is a no-op.
        sched.flush_all();
        assert_eq!(b.durable_frames(), 1);
        let fsyncs = sched.stats().fsyncs;
        sched.flush_all();
        assert_eq!(sched.stats().fsyncs, fsyncs, "nothing dirty, nothing synced");
    }

    #[test]
    fn private_scheduler_is_built_when_no_handle_is_shared() {
        // A group-commit writer without a shared handle gets a private
        // scheduler: batching within one store, same ack semantics.
        let dir = ScratchDir::new("group-private");
        let policy = SyncPolicy::GroupCommit { max_batch: 64, max_records: 2 };
        let path = dir.path().join("solo.wal");
        let mut w = WalWriter::create(&path, policy, Codec::Binary).unwrap();
        w.append(&record(0)).unwrap();
        assert_eq!(w.durable_frames(), 0, "below the window, unacked");
        w.append(&record(1)).unwrap();
        assert_eq!(w.durable_frames(), 2, "window reached, drained");
    }
}
