//! The payload codec: how [`WalRecord`]s and [`Snapshot`]s become the
//! bytes inside the CRC-32 frames, and how a reader tells which encoding
//! a file on disk uses.
//!
//! Two encodings exist, selected per *file* by a **format byte** — the
//! eighth byte of the magic (`CODBWAL1` / `CODBSNP1` for JSON,
//! `CODBWAL2` / `CODBSNP2` for binary):
//!
//! * [`Codec::Json`] — the seed format: serde-shim JSON payloads. Every
//!   store written before the binary codec existed carries format byte
//!   `'1'`, so legacy directories keep recovering forever with no
//!   offline migration.
//! * [`Codec::Binary`] — the compact varint/tag encoding of
//!   `codb_relational::binenc`: values, tuples, relations, receive
//!   caches and protocol counters as tagged varints and length-prefixed
//!   strings. Snapshots shrink by roughly an order of magnitude and
//!   recovery stops paying JSON parse cost — the E17 lever.
//!
//! Readers **auto-detect** from the format byte; writers append in the
//! codec the file was created with (a file never mixes encodings).
//! Upgrades happen **on rotation**: a store opened with a binary target
//! codec keeps appending to its existing JSON WAL, and the next
//! checkpoint writes the new generation — snapshot and fresh WAL — in
//! binary, after which the old JSON files are compacted away.
//!
//! ## Binary record layout
//!
//! One [`WalRecord`] encodes as a tag byte plus the variant payload
//! (`str` = varint length + UTF-8, all counts varint):
//!
//! ```text
//! 0x00 Caches       n, n × (rule: str, m, m × firing)
//! 0x01 Counters     update_seq, query_seq, req_seq   (varints)
//! 0x02 Applied      rule: str, n, n × firing
//! 0x03 LocalInsert  relation: str, tuple
//! ```
//!
//! with `firing` and `tuple` as defined in `codb_relational::binenc`. A
//! binary snapshot payload is varint version + null factory + instance.

use crate::store::StoreError;
use crate::wal::{ProtocolCounters, RecvCaches, WalRecord};
use codb_relational::binenc::{self, BinDecodeError, Reader};
use codb_relational::{RuleFiring, Snapshot, SnapshotError};
use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

/// Length of the magic header of every store file (prefix + format byte).
pub const MAGIC_LEN: usize = 8;

const WAL_PREFIX: &[u8; 7] = b"CODBWAL";
const SNAP_PREFIX: &[u8; 7] = b"CODBSNP";

/// The payload encoding of one store file, named by its format byte.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Codec {
    /// Serde-shim JSON payloads — the seed format (format byte `'1'`).
    Json,
    /// Compact varint/tag payloads (format byte `'2'`). The default for
    /// new stores; existing JSON stores upgrade at their next rotation.
    #[default]
    Binary,
}

impl Codec {
    /// The format byte this codec stamps as the eighth magic byte.
    pub const fn format_byte(self) -> u8 {
        match self {
            Codec::Json => b'1',
            Codec::Binary => b'2',
        }
    }

    /// Inverse of [`Codec::format_byte`].
    pub const fn from_format_byte(b: u8) -> Option<Codec> {
        match b {
            b'1' => Some(Codec::Json),
            b'2' => Some(Codec::Binary),
            _ => None,
        }
    }

    /// Magic header of a WAL file in this codec.
    pub const fn wal_magic(self) -> [u8; MAGIC_LEN] {
        magic(WAL_PREFIX, self)
    }

    /// Magic header of a snapshot file in this codec.
    pub const fn snap_magic(self) -> [u8; MAGIC_LEN] {
        magic(SNAP_PREFIX, self)
    }

    /// Detects the codec of a WAL file from its leading bytes.
    pub fn detect_wal(header: &[u8]) -> Option<Codec> {
        detect(WAL_PREFIX, header)
    }

    /// Detects the codec of a snapshot file from its leading bytes.
    pub fn detect_snap(header: &[u8]) -> Option<Codec> {
        detect(SNAP_PREFIX, header)
    }
}

impl fmt::Display for Codec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Codec::Json => write!(f, "json"),
            Codec::Binary => write!(f, "binary"),
        }
    }
}

impl FromStr for Codec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(Codec::Json),
            "binary" | "bin" => Ok(Codec::Binary),
            other => Err(format!("unknown codec {other:?} (expected json or binary)")),
        }
    }
}

const fn magic(prefix: &[u8; 7], codec: Codec) -> [u8; MAGIC_LEN] {
    let mut m = [0u8; MAGIC_LEN];
    let mut i = 0;
    while i < prefix.len() {
        m[i] = prefix[i];
        i += 1;
    }
    m[MAGIC_LEN - 1] = codec.format_byte();
    m
}

fn detect(prefix: &[u8; 7], header: &[u8]) -> Option<Codec> {
    if header.len() < MAGIC_LEN || &header[..7] != prefix {
        return None;
    }
    Codec::from_format_byte(header[7])
}

// ---- WAL records ----

const TAG_CACHES: u8 = 0;
const TAG_COUNTERS: u8 = 1;
const TAG_APPLIED: u8 = 2;
const TAG_LOCAL_INSERT: u8 = 3;

/// Encodes one WAL record in `codec`. JSON encoder failures (a bug) are
/// surfaced as [`StoreError::Encode`]; the binary encoder is total.
pub fn encode_record(record: &WalRecord, codec: Codec) -> Result<Vec<u8>, StoreError> {
    match codec {
        Codec::Json => {
            serde_json::to_vec(record).map_err(|e| StoreError::Encode { detail: e.to_string() })
        }
        Codec::Binary => {
            let mut out = Vec::new();
            match record {
                WalRecord::Caches { recv } => {
                    out.push(TAG_CACHES);
                    binenc::put_len(&mut out, recv.len());
                    for (rule, firings) in recv {
                        binenc::put_str(&mut out, rule);
                        put_firings(&mut out, firings.iter());
                    }
                }
                WalRecord::Counters { counters } => {
                    out.push(TAG_COUNTERS);
                    binenc::put_u64(&mut out, counters.update_seq);
                    binenc::put_u64(&mut out, counters.query_seq);
                    binenc::put_u64(&mut out, counters.req_seq);
                }
                WalRecord::Applied { rule, firings } => {
                    out.push(TAG_APPLIED);
                    binenc::put_str(&mut out, rule);
                    put_firings(&mut out, firings.iter());
                }
                WalRecord::LocalInsert { relation, tuple } => {
                    out.push(TAG_LOCAL_INSERT);
                    binenc::put_str(&mut out, relation);
                    binenc::put_tuple(&mut out, tuple);
                }
            }
            Ok(out)
        }
    }
}

/// Decodes one WAL record payload in `codec`. The error is the *reason*
/// string; the caller owns file/offset context for the typed
/// [`StoreError::CorruptFrame`].
pub fn decode_record(payload: &[u8], codec: Codec) -> Result<WalRecord, String> {
    match codec {
        Codec::Json => {
            serde_json::from_slice(payload).map_err(|e| format!("undecodable record: {e}"))
        }
        Codec::Binary => {
            decode_record_binary(payload).map_err(|e| format!("undecodable record: {e}"))
        }
    }
}

fn decode_record_binary(payload: &[u8]) -> Result<WalRecord, BinDecodeError> {
    let mut r = Reader::new(payload);
    let at = r.offset();
    let record = match r.byte()? {
        TAG_CACHES => {
            let n = r.len(2)?;
            let mut recv = RecvCaches::new();
            for _ in 0..n {
                let entry_at = r.offset();
                let rule = r.str()?;
                let firings = take_firings(&mut r)?;
                // The encoding is canonical (each map key once, each set
                // element once): silently collapsing duplicates would
                // mask an encoder bug as a smaller cache.
                let count = firings.len();
                let set: BTreeSet<_> = firings.into_iter().collect();
                if set.len() != count {
                    return Err(BinDecodeError {
                        offset: entry_at,
                        detail: format!(
                            "duplicate firing in cache for rule {rule:?} (non-canonical encoding)"
                        ),
                    });
                }
                if recv.insert(rule.clone(), set).is_some() {
                    return Err(BinDecodeError {
                        offset: entry_at,
                        detail: format!("duplicate cache rule {rule:?} (non-canonical encoding)"),
                    });
                }
            }
            WalRecord::Caches { recv }
        }
        TAG_COUNTERS => WalRecord::Counters {
            counters: ProtocolCounters {
                update_seq: r.u64()?,
                query_seq: r.u64()?,
                req_seq: r.u64()?,
            },
        },
        TAG_APPLIED => {
            let rule = r.str()?;
            let firings = take_firings(&mut r)?;
            WalRecord::Applied { rule, firings }
        }
        TAG_LOCAL_INSERT => {
            let relation = r.str()?;
            let tuple = binenc::take_tuple(&mut r)?;
            WalRecord::LocalInsert { relation, tuple }
        }
        t => return Err(BinDecodeError { offset: at, detail: format!("unknown record tag {t}") }),
    };
    r.expect_end()?;
    Ok(record)
}

fn put_firings<'a>(out: &mut Vec<u8>, firings: impl ExactSizeIterator<Item = &'a RuleFiring>) {
    binenc::put_len(out, firings.len());
    for f in firings {
        binenc::put_firing(out, f);
    }
}

fn take_firings(r: &mut Reader<'_>) -> Result<Vec<RuleFiring>, BinDecodeError> {
    // A firing with no atoms encodes to a single count byte, so the
    // length sanity bound is 1 byte per element — a 2-byte bound would
    // reject the encoder's own valid output.
    let n = r.len(1)?;
    let mut firings = Vec::with_capacity(n);
    for _ in 0..n {
        firings.push(binenc::take_firing(r)?);
    }
    Ok(firings)
}

// ---- snapshots ----

/// Encodes one snapshot payload in `codec`.
pub fn encode_snapshot(snapshot: &Snapshot, codec: Codec) -> Result<Vec<u8>, StoreError> {
    match codec {
        Codec::Json => Ok(snapshot.to_bytes()?),
        Codec::Binary => Ok(snapshot.to_binary_bytes()),
    }
}

/// Decodes one snapshot payload in `codec` (corruption and version
/// mismatches are typed [`SnapshotError`]s).
pub fn decode_snapshot(payload: &[u8], codec: Codec) -> Result<Snapshot, SnapshotError> {
    match codec {
        Codec::Json => Snapshot::from_bytes(payload),
        Codec::Binary => Snapshot::from_binary_bytes(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codb_relational::glav::TField;
    use codb_relational::{Instance, NullFactory, RelationSchema, Tuple, Value, ValueType};

    fn records() -> Vec<WalRecord> {
        let firing = RuleFiring {
            atoms: vec![("r".into(), vec![TField::Const(Value::Int(-7)), TField::Fresh(0)])],
        };
        let mut recv = RecvCaches::new();
        recv.insert("e0".into(), [firing.clone()].into_iter().collect());
        vec![
            WalRecord::Caches { recv },
            WalRecord::Counters {
                counters: ProtocolCounters { update_seq: 3, query_seq: 1, req_seq: u64::MAX },
            },
            WalRecord::Applied { rule: "e1".into(), firings: vec![firing.clone(), firing] },
            WalRecord::LocalInsert {
                relation: "r".into(),
                tuple: Tuple::new(vec![Value::Int(9), Value::str("x"), Value::Bool(true)]),
            },
        ]
    }

    #[test]
    fn records_round_trip_in_both_codecs() {
        for codec in [Codec::Json, Codec::Binary] {
            for record in records() {
                let bytes = encode_record(&record, codec).unwrap();
                assert_eq!(decode_record(&bytes, codec).unwrap(), record, "{codec}");
            }
        }
    }

    #[test]
    fn binary_records_are_smaller_than_json() {
        for record in records() {
            let json = encode_record(&record, Codec::Json).unwrap();
            let binary = encode_record(&record, Codec::Binary).unwrap();
            assert!(binary.len() < json.len(), "{record:?}: {} vs {}", binary.len(), json.len());
        }
    }

    #[test]
    fn snapshots_round_trip_in_both_codecs() {
        let mut inst = Instance::new();
        inst.add_relation(RelationSchema::with_types("r", &[ValueType::Int, ValueType::Str]));
        inst.insert("r", Tuple::new(vec![Value::Int(1), Value::str("a")])).unwrap();
        let snap = Snapshot::capture(&inst, &NullFactory::new(5));
        for codec in [Codec::Json, Codec::Binary] {
            let bytes = encode_snapshot(&snap, codec).unwrap();
            let restored = decode_snapshot(&bytes, codec).unwrap();
            assert_eq!(restored.instance, snap.instance, "{codec}");
        }
    }

    #[test]
    fn magic_detection_is_exact() {
        assert_eq!(Codec::detect_wal(b"CODBWAL1extra"), Some(Codec::Json));
        assert_eq!(Codec::detect_wal(b"CODBWAL2"), Some(Codec::Binary));
        assert_eq!(Codec::detect_snap(b"CODBSNP2"), Some(Codec::Binary));
        assert_eq!(Codec::detect_wal(b"CODBWAL3"), None, "unknown format byte");
        assert_eq!(Codec::detect_wal(b"CODBSNP1"), None, "wrong kind");
        assert_eq!(Codec::detect_wal(b"CODBWAL"), None, "too short");
    }

    #[test]
    fn codec_parses_from_cli_strings() {
        assert_eq!("json".parse::<Codec>().unwrap(), Codec::Json);
        assert_eq!("binary".parse::<Codec>().unwrap(), Codec::Binary);
        assert!("yaml".parse::<Codec>().is_err());
        assert_eq!(Codec::default(), Codec::Binary);
        assert_eq!(Codec::Binary.to_string(), "binary");
    }

    #[test]
    fn empty_firings_round_trip() {
        // A RuleFiring with no atoms encodes to one byte; the decoder's
        // length sanity bound must admit it (regression: a 2-byte bound
        // rejected the encoder's own output and made the WAL frame read
        // as corrupt).
        let record =
            WalRecord::Applied { rule: "r".into(), firings: vec![RuleFiring { atoms: vec![] }; 3] };
        for codec in [Codec::Json, Codec::Binary] {
            let bytes = encode_record(&record, codec).unwrap();
            assert_eq!(decode_record(&bytes, codec).unwrap(), record, "{codec}");
        }
    }

    #[test]
    fn non_canonical_cache_payloads_are_rejected() {
        use codb_relational::binenc;
        let firing = RuleFiring { atoms: vec![("r".into(), vec![TField::Fresh(0)])] };
        // Same rule key encoded twice.
        let mut out = vec![TAG_CACHES];
        binenc::put_len(&mut out, 2);
        for _ in 0..2 {
            binenc::put_str(&mut out, "e0");
            binenc::put_len(&mut out, 1);
            binenc::put_firing(&mut out, &firing);
        }
        let err = decode_record(&out, Codec::Binary).unwrap_err();
        assert!(err.contains("duplicate cache rule"), "{err}");
        // Same firing twice inside one rule's set.
        let mut out = vec![TAG_CACHES];
        binenc::put_len(&mut out, 1);
        binenc::put_str(&mut out, "e0");
        binenc::put_len(&mut out, 2);
        binenc::put_firing(&mut out, &firing);
        binenc::put_firing(&mut out, &firing);
        let err = decode_record(&out, Codec::Binary).unwrap_err();
        assert!(err.contains("duplicate firing"), "{err}");
    }

    #[test]
    fn junk_binary_payloads_are_errors_not_panics() {
        for payload in [&b""[..], &[99][..], &[TAG_COUNTERS][..], &[TAG_CACHES, 0xFF, 0xFF][..]] {
            assert!(decode_record(payload, Codec::Binary).is_err(), "{payload:?}");
        }
        // Trailing garbage after a valid record is corruption too.
        let mut bytes = encode_record(&records()[1], Codec::Binary).unwrap();
        bytes.push(0);
        assert!(decode_record(&bytes, Codec::Binary).is_err());
    }
}
