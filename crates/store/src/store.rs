//! The store: a directory of generation-numbered snapshot + WAL pairs,
//! with checkpoint-time rotation/compaction and crash recovery.
//!
//! See the crate docs for the on-disk format and the compaction rules.

use crate::codec::{self, Codec, MAGIC_LEN};
use crate::frame::{encode_frame, FrameScanner, FrameStep};
use crate::group::FsyncScheduler;
use crate::wal::{read_wal, ProtocolCounters, RecvCaches, SyncPolicy, WalRecord, WalWriter};
use codb_relational::{apply_firings, Instance, NullFactory, Snapshot, SnapshotError};
use codb_trace::{TraceEvent, Tracer};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Storage-engine errors.
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level I/O failure.
    Io {
        /// The file involved.
        file: PathBuf,
        /// The underlying error.
        detail: String,
    },
    /// A file does not start with the expected magic bytes.
    BadMagic {
        /// The offending file.
        file: PathBuf,
    },
    /// A complete frame failed its checksum or did not decode — corruption,
    /// never silently accepted.
    CorruptFrame {
        /// The offending file.
        file: PathBuf,
        /// Byte offset of the frame header.
        offset: u64,
        /// What went wrong.
        reason: String,
    },
    /// A record failed to serialise (a bug, surfaced rather than hidden).
    Encode {
        /// Serialiser message.
        detail: String,
    },
    /// The snapshot payload was rejected (corrupt or wrong version).
    Snapshot(SnapshotError),
    /// Replaying a WAL record against the snapshot failed (schema drift
    /// between the store and the configuration it is opened under).
    Replay {
        /// What went wrong.
        detail: String,
    },
    /// [`Store::open`] found no usable snapshot generation.
    NoState {
        /// The directory searched.
        dir: PathBuf,
    },
    /// [`Store::create`] refused to clobber an existing store.
    AlreadyExists {
        /// The occupied directory.
        dir: PathBuf,
    },
    /// The incarnation counter (`codb.epoch`) is missing or unreadable.
    /// Loud on purpose: silently restarting at epoch 0 would make every
    /// peer drop the node's envelopes as stale — a mute partition.
    Epoch {
        /// The store directory.
        dir: PathBuf,
        /// What went wrong.
        detail: String,
    },
    /// A group-commit open asked for thresholds different from the
    /// shared [`crate::FsyncScheduler`] it would join. Loud on purpose:
    /// silently joining the existing scheduler would give the store a
    /// durability ack window it never agreed to.
    SchedulerMismatch {
        /// The shared scheduler's policy (as `group:RECORDS,BATCH`).
        existing: String,
        /// The policy this open requested.
        requested: String,
    },
}

impl StoreError {
    pub(crate) fn io(file: &Path, e: std::io::Error) -> Self {
        StoreError::Io { file: file.to_owned(), detail: e.to_string() }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { file, detail } => write!(f, "i/o on {}: {detail}", file.display()),
            StoreError::BadMagic { file } => write!(f, "{}: bad magic", file.display()),
            StoreError::CorruptFrame { file, offset, reason } => {
                write!(f, "{} corrupt at byte {offset}: {reason}", file.display())
            }
            StoreError::Encode { detail } => write!(f, "record encoding failed: {detail}"),
            StoreError::Snapshot(e) => write!(f, "snapshot rejected: {e}"),
            StoreError::Replay { detail } => write!(f, "WAL replay failed: {detail}"),
            StoreError::NoState { dir } => {
                write!(f, "no usable snapshot generation under {}", dir.display())
            }
            StoreError::AlreadyExists { dir } => {
                write!(f, "store already exists under {}", dir.display())
            }
            StoreError::Epoch { dir, detail } => {
                write!(f, "incarnation counter under {}: {detail}", dir.display())
            }
            StoreError::SchedulerMismatch { existing, requested } => {
                write!(
                    f,
                    "group-commit policy {requested} differs from the shared fsync scheduler's \
                     {existing}"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> Self {
        StoreError::Snapshot(e)
    }
}

/// Name of the incarnation-counter file (see [`RecoveredState::epoch`]).
const EPOCH_FILE: &str = "codb.epoch";

/// Copyable summary of a recovery — what reports and callers that hand the
/// full [`RecoveredState`] to a node still want to know afterwards.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryStats {
    /// Incarnation number of this open.
    pub epoch: u64,
    /// Snapshot generation recovery started from.
    pub generation: u64,
    /// WAL records replayed on top of the snapshot.
    pub wal_records_replayed: u64,
    /// True when a torn final frame was found (and truncated away).
    pub torn_tail: bool,
}

/// State reconstructed by [`Store::open`].
#[derive(Debug)]
pub struct RecoveredState {
    /// Incarnation number: 0 for a freshly created store, bumped by every
    /// [`Store::open`]. Restarted nodes stamp it on their envelopes so
    /// peers distinguish a rejoined node (whose transport sequence numbers
    /// start over) from a duplicate-sending one.
    pub epoch: u64,
    /// The instance: snapshot plus replayed WAL deltas.
    pub instance: Instance,
    /// The null factory, advanced exactly as the original run advanced it.
    pub nulls: NullFactory,
    /// Receiver-side dedup caches (from the WAL's cache checkpoint plus
    /// replayed applies).
    pub recv_cache: RecvCaches,
    /// Protocol counters as of the last [`WalRecord::Counters`] record —
    /// the id space the recovered node resumes (never restarts) from.
    pub counters: ProtocolCounters,
    /// Snapshot generation the recovery started from.
    pub generation: u64,
    /// WAL records replayed on top of the snapshot.
    pub wal_records_replayed: u64,
    /// True when a torn final frame was found (and truncated away).
    pub torn_tail: bool,
    /// Codec the recovered snapshot file was written in (auto-detected
    /// from its format byte).
    pub snapshot_codec: Codec,
    /// Codec of the recovered WAL file — appends continue in it until
    /// the next checkpoint rotates to the store's target codec.
    pub wal_codec: Codec,
}

impl RecoveredState {
    /// The copyable summary of this recovery.
    pub fn stats(&self) -> RecoveryStats {
        RecoveryStats {
            epoch: self.epoch,
            generation: self.generation,
            wal_records_replayed: self.wal_records_replayed,
            torn_tail: self.torn_tail,
        }
    }
}

/// A durable store rooted at one directory. One store persists one node.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    generation: u64,
    policy: SyncPolicy,
    /// Target codec: what checkpoints write. The live WAL may still be in
    /// another codec (its own format byte wins) until the next rotation.
    codec: Codec,
    writer: WalWriter,
    /// Group-commit scheduler this store's WAL writers join (shared
    /// across stores when the caller passed one, private otherwise).
    /// `Some` iff the policy is [`SyncPolicy::GroupCommit`]; rotation
    /// re-registers the fresh WAL with the same scheduler.
    sched: Option<FsyncScheduler>,
    /// Flight-recorder handle (disabled by default). Rotation re-attaches
    /// it to the fresh WAL writer so `WalAppend`/`Fsync` events keep
    /// flowing across checkpoints.
    tracer: Tracer,
    /// Interned id of this store's directory name in the tracer's string
    /// table (0 while disabled).
    trace_id: u32,
}

fn snap_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("codb-{generation:010}.snap"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("codb-{generation:010}.wal"))
}

/// Parses `codb-NNNNNNNNNN.<suffix>` into the generation number.
fn parse_generation(name: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix("codb-")?.strip_suffix(suffix)?.parse().ok()
}

fn write_epoch(dir: &Path, epoch: u64) -> Result<(), StoreError> {
    let path = dir.join(EPOCH_FILE);
    let tmp = dir.join("codb.epoch.tmp");
    std::fs::write(&tmp, epoch.to_string()).map_err(|e| StoreError::io(&tmp, e))?;
    std::fs::rename(&tmp, &path).map_err(|e| StoreError::io(&path, e))?;
    sync_dir(dir)?;
    Ok(())
}

fn read_epoch(dir: &Path) -> Result<u64, StoreError> {
    let text = std::fs::read_to_string(dir.join(EPOCH_FILE)).map_err(|e| StoreError::Epoch {
        dir: dir.to_owned(),
        detail: format!("unreadable: {e}"),
    })?;
    text.trim().parse().map_err(|e| StoreError::Epoch {
        dir: dir.to_owned(),
        detail: format!("unparseable {text:?}: {e}"),
    })
}

fn list_generations(dir: &Path, suffix: &str) -> Result<Vec<u64>, StoreError> {
    let mut gens = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(dir, e))?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(g) = parse_generation(name, suffix) {
                gens.push(g);
            }
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

/// Fsyncs the directory itself, so renames/creates/unlinks inside it are
/// on stable storage (file-data fsyncs alone do not order directory
/// metadata under power loss).
fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    let d = std::fs::File::open(dir).map_err(|e| StoreError::io(dir, e))?;
    d.sync_all().map_err(|e| StoreError::io(dir, e))
}

fn write_snapshot_file(path: &Path, snapshot: &Snapshot, codec: Codec) -> Result<(), StoreError> {
    // Temp file + atomic rename: a crash mid-write never produces a
    // half-snapshot under the committed name.
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
        let mut buf = Vec::new();
        buf.extend_from_slice(&codec.snap_magic());
        encode_frame(&codec::encode_snapshot(snapshot, codec)?, &mut buf);
        file.write_all(&buf).map_err(|e| StoreError::io(&tmp, e))?;
        file.sync_all().map_err(|e| StoreError::io(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| StoreError::io(path, e))?;
    sync_dir(path.parent().unwrap_or(Path::new(".")))?;
    Ok(())
}

fn read_snapshot_file(path: &Path) -> Result<(Snapshot, Codec), StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, e))?;
    let Some(codec) = Codec::detect_snap(&bytes) else {
        return Err(StoreError::BadMagic { file: path.to_owned() });
    };
    let mut scanner = FrameScanner::new(&bytes[MAGIC_LEN..]);
    match scanner.next_frame() {
        FrameStep::Frame(payload) => Ok((codec::decode_snapshot(payload, codec)?, codec)),
        FrameStep::End | FrameStep::TornTail => Err(StoreError::CorruptFrame {
            file: path.to_owned(),
            offset: MAGIC_LEN as u64,
            reason: "incomplete snapshot frame".into(),
        }),
        FrameStep::Corrupt { offset, reason } => Err(StoreError::CorruptFrame {
            file: path.to_owned(),
            offset: (MAGIC_LEN + offset) as u64,
            reason,
        }),
    }
}

impl Store {
    /// True iff `dir` holds at least one snapshot generation.
    pub fn exists(dir: &Path) -> bool {
        dir.is_dir() && list_generations(dir, ".snap").map(|g| !g.is_empty()).unwrap_or(false)
    }

    /// Initialises a fresh store at `dir` (created if missing) from the
    /// given state: writes the generation-0 snapshot and an empty WAL
    /// headed by a cache checkpoint plus a protocol-counter checkpoint,
    /// both in `codec`. Refuses to clobber an existing store.
    ///
    /// Equivalent to [`Store::create_with`] without a shared scheduler
    /// (a [`SyncPolicy::GroupCommit`] policy then batches privately).
    pub fn create(
        dir: &Path,
        snapshot: &Snapshot,
        recv: &RecvCaches,
        counters: &ProtocolCounters,
        policy: SyncPolicy,
        codec: Codec,
    ) -> Result<Store, StoreError> {
        Self::create_with(dir, snapshot, recv, counters, policy, codec, None)
    }

    /// [`Store::create`] with an optional shared group-commit scheduler:
    /// under [`SyncPolicy::GroupCommit`] this store's WAL joins `group`
    /// (or a private scheduler built from the policy when `None`), so
    /// fsyncs coalesce with every other store registered there. Ignored
    /// for the per-store policies.
    pub fn create_with(
        dir: &Path,
        snapshot: &Snapshot,
        recv: &RecvCaches,
        counters: &ProtocolCounters,
        policy: SyncPolicy,
        codec: Codec,
        group: Option<&FsyncScheduler>,
    ) -> Result<Store, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
        if Store::exists(dir) {
            return Err(StoreError::AlreadyExists { dir: dir.to_owned() });
        }
        let sched = FsyncScheduler::membership(policy, group);
        let mut writer = WalWriter::create_with(&wal_path(dir, 0), policy, codec, sched.as_ref())?;
        writer.append(&WalRecord::Caches { recv: recv.clone() })?;
        writer.append(&WalRecord::Counters { counters: *counters })?;
        writer.sync()?;
        // Epoch before the snapshot: the snapshot rename is the commit
        // point of creation (`exists` keys on it), so a committed store
        // always has its incarnation counter.
        write_epoch(dir, 0)?;
        write_snapshot_file(&snap_path(dir, 0), snapshot, codec)?;
        Ok(Store {
            dir: dir.to_owned(),
            generation: 0,
            policy,
            codec,
            writer,
            sched,
            tracer: Tracer::disabled(),
            trace_id: 0,
        })
    }

    /// Opens an existing store: loads the latest valid snapshot, replays
    /// the WAL tail (tolerating a torn final frame, which is truncated),
    /// removes files from other generations, and returns the store ready
    /// for appending plus the reconstructed state.
    ///
    /// Each file's payload encoding is auto-detected from its format
    /// byte, so a store written under either codec always recovers.
    /// `codec` is the *target*: appends continue in the live WAL's own
    /// codec, and the next [`Store::checkpoint`] rotates the whole store
    /// to the target — upgrade-on-rotation, no offline migration.
    pub fn open(
        dir: &Path,
        policy: SyncPolicy,
        codec: Codec,
    ) -> Result<(Store, RecoveredState), StoreError> {
        Self::open_with(dir, policy, codec, None)
    }

    /// [`Store::open`] with an optional shared group-commit scheduler
    /// (see [`Store::create_with`]). The recovered valid WAL prefix is
    /// registered with the scheduler as already durable.
    pub fn open_with(
        dir: &Path,
        policy: SyncPolicy,
        codec: Codec,
        group: Option<&FsyncScheduler>,
    ) -> Result<(Store, RecoveredState), StoreError> {
        let sched = FsyncScheduler::membership(policy, group);
        let snaps = list_generations(dir, ".snap")?;
        if snaps.is_empty() {
            return Err(StoreError::NoState { dir: dir.to_owned() });
        }
        // Latest valid snapshot wins; earlier generations are the fallback
        // if the newest is damaged (e.g. bit rot caught by the checksum).
        let mut chosen: Option<(u64, Snapshot, Codec)> = None;
        let mut first_error: Option<StoreError> = None;
        for &g in snaps.iter().rev() {
            match read_snapshot_file(&snap_path(dir, g)) {
                Ok((snap, snap_codec)) => {
                    chosen = Some((g, snap, snap_codec));
                    break;
                }
                Err(e) => first_error = first_error.or(Some(e)),
            }
        }
        let Some((generation, snapshot, snapshot_codec)) = chosen else {
            return Err(first_error.expect("at least one candidate failed"));
        };

        // Replay the WAL tail of the chosen generation, in whatever codec
        // its format byte declares.
        let wal = wal_path(dir, generation);
        let (writer, records, torn_tail) = if wal.is_file() {
            let contents = read_wal(&wal)?;
            let writer = WalWriter::open_append_with(
                &wal,
                policy,
                contents.codec,
                contents.valid_len,
                contents.records.len() as u64,
                sched.as_ref(),
            )?;
            (writer, contents.records, contents.torn_tail)
        } else {
            // A vanished WAL means a crash mid-checkpoint (or a fallback to
            // a generation whose WAL was already compacted away). The
            // receive caches of that WAL are gone; recreate the file with
            // an explicit empty cache checkpoint (in the target codec — a
            // fresh file carries its own format byte) so the every-WAL-
            // starts-with-Caches invariant holds and the loss is visible
            // in the replayed records rather than silently assumed.
            let mut w = WalWriter::create_with(&wal, policy, codec, sched.as_ref())?;
            let caches = WalRecord::Caches { recv: RecvCaches::new() };
            w.append(&caches)?;
            w.sync()?;
            sync_dir(dir)?;
            (w, vec![caches], false)
        };

        let mut instance = snapshot.instance;
        let mut nulls = snapshot.nulls;
        let mut recv_cache = RecvCaches::new();
        let mut counters = ProtocolCounters::default();
        let replayed = records.len() as u64;
        for record in records {
            match record {
                WalRecord::Caches { recv } => recv_cache = recv,
                WalRecord::Counters { counters: c } => counters = c,
                WalRecord::Applied { rule, firings } => {
                    let cache = recv_cache.entry(rule).or_default();
                    let fresh: Vec<_> =
                        firings.into_iter().filter(|f| cache.insert(f.clone())).collect();
                    apply_firings(&mut instance, &fresh, &mut nulls)
                        .map_err(|e| StoreError::Replay { detail: e.to_string() })?;
                }
                WalRecord::LocalInsert { relation, tuple } => {
                    instance
                        .insert(&relation, tuple)
                        .map_err(|e| StoreError::Replay { detail: e.to_string() })?;
                }
            }
        }

        let wal_codec = writer.codec();
        let store = Store {
            dir: dir.to_owned(),
            generation,
            policy,
            codec,
            writer,
            sched,
            tracer: Tracer::disabled(),
            trace_id: 0,
        };
        store.remove_other_generations()?;
        // Each open is a new incarnation: bump the persisted epoch so the
        // recovered node's envelopes outrank its previous life's. A
        // missing/unreadable counter is a loud error — restarting at a
        // stale epoch would leave the node mute at its peers.
        let epoch = read_epoch(dir)? + 1;
        write_epoch(dir, epoch)?;
        Ok((
            store,
            RecoveredState {
                epoch,
                instance,
                nulls,
                recv_cache,
                counters,
                generation,
                wal_records_replayed: replayed,
                torn_tail,
                snapshot_codec,
                wal_codec,
            },
        ))
    }

    /// Attaches a flight-recorder handle: WAL appends, fsyncs and
    /// checkpoint rotations of this store emit trace events from here on.
    /// The store is identified in the trace by its directory name.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        let name = self.dir.display().to_string();
        self.trace_id = tracer.intern(&name);
        self.writer.attach_tracer(tracer.clone(), &name);
        if let Some(sched) = &self.sched {
            sched.attach_tracer(tracer.clone());
        }
        self.tracer = tracer.clone();
    }

    /// Appends one record to the WAL (durability per the sync policy).
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StoreError> {
        self.writer.append(record)
    }

    /// Forces buffered WAL records to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.writer.sync()
    }

    /// Checkpoint: writes the next-generation snapshot of `snapshot`,
    /// rotates to a fresh WAL headed by checkpoints of `recv` and
    /// `counters`, and compacts (deletes) the previous generation. On
    /// return, recovery cost is O(new snapshot) regardless of history
    /// length.
    ///
    /// The new generation is written in the store's **target codec** —
    /// this is where a store recovered from legacy JSON files converts to
    /// binary in place (and where every old-codec file leaves the disk).
    pub fn checkpoint(
        &mut self,
        snapshot: &Snapshot,
        recv: &RecvCaches,
        counters: &ProtocolCounters,
    ) -> Result<(), StoreError> {
        let next = self.generation + 1;
        // Order matters for crash safety: (1) the fresh WAL with its cache
        // checkpoint, (2) the snapshot rename as the commit point, (3) the
        // old generation's deletion. A crash between any two steps leaves
        // at least one complete generation.
        let mut writer = WalWriter::create_with(
            &wal_path(&self.dir, next),
            self.policy,
            self.codec,
            self.sched.as_ref(),
        )?;
        if self.tracer.is_enabled() {
            writer.attach_tracer(self.tracer.clone(), &self.dir.display().to_string());
        }
        writer.append(&WalRecord::Caches { recv: recv.clone() })?;
        writer.append(&WalRecord::Counters { counters: *counters })?;
        writer.sync()?;
        sync_dir(&self.dir)?;
        write_snapshot_file(&snap_path(&self.dir, next), snapshot, self.codec)?;
        let old = self.generation;
        self.writer = writer;
        self.generation = next;
        self.tracer.emit_with(|| TraceEvent::Checkpoint { store: self.trace_id, generation: next });
        let _ = std::fs::remove_file(snap_path(&self.dir, old));
        let _ = std::fs::remove_file(wal_path(&self.dir, old));
        // Deletions are cleanup, not correctness; their dir sync is
        // best-effort (a resurrected old generation is re-swept on open).
        let _ = sync_dir(&self.dir);
        Ok(())
    }

    /// Sweeps files from generations other than the current one: *older*
    /// generations (and stray `.tmp` files from interrupted checkpoints)
    /// are deleted, while files from *newer* generations — a snapshot that
    /// failed validation and was passed over — are quarantined under a
    /// `.corrupt` suffix instead of destroyed, so the evidence survives
    /// for diagnosis.
    fn remove_other_generations(&self) -> Result<(), StoreError> {
        let entries = std::fs::read_dir(&self.dir).map_err(|e| StoreError::io(&self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io(&self.dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let generation =
                parse_generation(name, ".snap").or_else(|| parse_generation(name, ".wal"));
            if name.ends_with(".tmp") || generation.is_some_and(|g| g < self.generation) {
                let _ = std::fs::remove_file(entry.path());
            } else if generation.is_some_and(|g| g > self.generation) {
                let _ = std::fs::rename(
                    entry.path(),
                    entry.path().with_extension(format!(
                        "{}.corrupt",
                        entry.path().extension().and_then(|e| e.to_str()).unwrap_or("bad")
                    )),
                );
            }
        }
        let _ = sync_dir(&self.dir);
        Ok(())
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current snapshot generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The target codec: what the next checkpoint writes.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// The live WAL's codec (may differ from [`Store::codec`] until the
    /// next rotation when the store was recovered from old-format files).
    pub fn wal_codec(&self) -> Codec {
        self.writer.codec()
    }

    /// Records in the current WAL (cache checkpoint included).
    pub fn wal_records(&self) -> u64 {
        self.writer.frames()
    }

    /// The live WAL file's path (the file a host-crash simulation
    /// truncates to the durable watermark).
    pub fn wal_path(&self) -> &Path {
        self.writer.path()
    }

    /// The sync policy this store runs under.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Records of the live WAL covered by fsync — the *acked durable*
    /// count. Every policy obeys the same ack rule (a record is durable
    /// only once an fsync covering it completed); they differ in how far
    /// this watermark may trail [`Store::wal_records`]. See
    /// `docs/DURABILITY.md` ([`crate::durability`]).
    pub fn durable_wal_records(&self) -> u64 {
        self.writer.durable_frames()
    }

    /// Bytes of the live WAL covered by fsync — what survives a host
    /// crash (always a clean frame boundary).
    pub fn durable_wal_len(&self) -> u64 {
        self.writer.durable_len()
    }

    /// Data fsyncs the live WAL's writer itself performed (group-commit
    /// drains are counted by the scheduler; see
    /// [`FsyncScheduler::stats`]). Per-generation: rotation starts a
    /// fresh writer.
    pub fn wal_fsyncs(&self) -> u64 {
        self.writer.fsyncs()
    }

    /// The group-commit scheduler this store participates in, if its
    /// policy is [`SyncPolicy::GroupCommit`].
    pub fn scheduler(&self) -> Option<&FsyncScheduler> {
        self.sched.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScratchDir;
    use codb_relational::glav::TField;
    use codb_relational::{tup, RelationSchema, RuleFiring, Value, ValueType};

    fn seed() -> (Instance, NullFactory) {
        let mut inst = Instance::new();
        inst.add_relation(RelationSchema::with_types("r", &[ValueType::Int, ValueType::Int]));
        inst.insert("r", tup![1, 10]).unwrap();
        (inst, NullFactory::new(42))
    }

    fn firing(k: i64) -> RuleFiring {
        RuleFiring {
            atoms: vec![("r".to_owned(), vec![TField::Const(Value::Int(k)), TField::Fresh(0)])],
        }
    }

    fn apply_live(
        store: &mut Store,
        inst: &mut Instance,
        nulls: &mut NullFactory,
        recv: &mut RecvCaches,
        rule: &str,
        firings: Vec<RuleFiring>,
    ) {
        let cache = recv.entry(rule.to_owned()).or_default();
        let fresh: Vec<_> = firings.into_iter().filter(|f| cache.insert(f.clone())).collect();
        if fresh.is_empty() {
            return;
        }
        store
            .append(&WalRecord::Applied { rule: rule.to_owned(), firings: fresh.clone() })
            .unwrap();
        apply_firings(inst, &fresh, nulls).unwrap();
    }

    #[test]
    fn create_open_round_trip_with_wal_tail() {
        let dir = ScratchDir::new("store-rt");
        let (mut inst, mut nulls) = seed();
        let mut recv = RecvCaches::new();
        let mut store = Store::create(
            dir.path(),
            &Snapshot::capture(&inst, &nulls),
            &recv,
            &ProtocolCounters::default(),
            SyncPolicy::Always,
            Codec::Binary,
        )
        .unwrap();
        for k in 0..5 {
            apply_live(&mut store, &mut inst, &mut nulls, &mut recv, "e0", vec![firing(k)]);
        }
        store
            .append(&WalRecord::LocalInsert { relation: "r".into(), tuple: tup![99, 100] })
            .unwrap();
        inst.insert("r", tup![99, 100]).unwrap();
        drop(store);

        let (reopened, rec) = Store::open(dir.path(), SyncPolicy::Always, Codec::Binary).unwrap();
        assert_eq!(rec.instance, inst);
        assert_eq!(rec.nulls.invented(), nulls.invented());
        assert_eq!(rec.recv_cache, recv);
        assert_eq!(rec.generation, 0);
        assert_eq!(rec.wal_records_replayed, 8); // caches + counters + 5 applies + 1 local
        assert!(!rec.torn_tail);
        assert_eq!(reopened.generation(), 0);
    }

    #[test]
    fn checkpoint_rotates_and_compacts() {
        let dir = ScratchDir::new("store-ckpt");
        let (mut inst, mut nulls) = seed();
        let mut recv = RecvCaches::new();
        let mut store = Store::create(
            dir.path(),
            &Snapshot::capture(&inst, &nulls),
            &recv,
            &ProtocolCounters::default(),
            SyncPolicy::Always,
            Codec::Binary,
        )
        .unwrap();
        for k in 0..10 {
            apply_live(&mut store, &mut inst, &mut nulls, &mut recv, "e0", vec![firing(k)]);
        }
        store
            .checkpoint(&Snapshot::capture(&inst, &nulls), &recv, &ProtocolCounters::default())
            .unwrap();
        assert_eq!(store.generation(), 1);
        assert_eq!(store.wal_records(), 2, "fresh WAL holds only the cache + counter checkpoints");
        // The old generation is gone.
        let names: Vec<String> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert!(names.contains(&"codb-0000000001.snap".to_owned()), "{names:?}");
        assert!(!names.iter().any(|n| n.contains("0000000000")), "{names:?}");
        drop(store);

        let (_, rec) = Store::open(dir.path(), SyncPolicy::Always, Codec::Binary).unwrap();
        assert_eq!(rec.instance, inst);
        assert_eq!(rec.recv_cache, recv, "caches survive compaction");
        assert_eq!(rec.generation, 1);
        assert_eq!(rec.wal_records_replayed, 2);
    }

    #[test]
    fn counters_resume_not_restart() {
        // A recovered node must resume its id space: the last Counters
        // record wins, through both WAL replay and snapshot compaction.
        let dir = ScratchDir::new("store-counters");
        let (inst, nulls) = seed();
        let c0 = ProtocolCounters { update_seq: 3, query_seq: 1, req_seq: 9 };
        let mut store = Store::create(
            dir.path(),
            &Snapshot::capture(&inst, &nulls),
            &RecvCaches::new(),
            &c0,
            SyncPolicy::Always,
            Codec::Binary,
        )
        .unwrap();
        // Counter bumps are appended live, like the node does on minting.
        let c1 = ProtocolCounters { update_seq: 4, ..c0 };
        store.append(&WalRecord::Counters { counters: c1 }).unwrap();
        let c2 = ProtocolCounters { update_seq: 5, query_seq: 2, ..c1 };
        store.append(&WalRecord::Counters { counters: c2 }).unwrap();
        drop(store);
        let (mut store, rec) = Store::open(dir.path(), SyncPolicy::Always, Codec::Binary).unwrap();
        assert_eq!(rec.counters, c2, "last counter record wins");
        // Compaction carries the counters into the rotated WAL head.
        store.checkpoint(&Snapshot::capture(&inst, &nulls), &RecvCaches::new(), &c2).unwrap();
        drop(store);
        let (_, rec) = Store::open(dir.path(), SyncPolicy::Always, Codec::Binary).unwrap();
        assert_eq!(rec.counters, c2, "counters survive compaction");
        assert_eq!(rec.wal_records_replayed, 2);
    }

    #[test]
    fn json_store_upgrades_to_binary_on_rotation() {
        // The migration story: a legacy JSON store keeps recovering (and
        // appending, in JSON) under a binary-target open; its first
        // checkpoint rewrites the whole store to binary in place.
        let dir = ScratchDir::new("store-upgrade");
        let (mut inst, mut nulls) = seed();
        let mut recv = RecvCaches::new();
        let mut store = Store::create(
            dir.path(),
            &Snapshot::capture(&inst, &nulls),
            &recv,
            &ProtocolCounters::default(),
            SyncPolicy::Always,
            Codec::Json,
        )
        .unwrap();
        apply_live(&mut store, &mut inst, &mut nulls, &mut recv, "e0", vec![firing(1)]);
        drop(store);

        let (mut store, rec) = Store::open(dir.path(), SyncPolicy::Always, Codec::Binary).unwrap();
        assert_eq!(rec.snapshot_codec, Codec::Json);
        assert_eq!(rec.wal_codec, Codec::Json);
        assert_eq!(rec.instance, inst, "legacy JSON store recovers unchanged");
        assert_eq!(store.codec(), Codec::Binary);
        assert_eq!(store.wal_codec(), Codec::Json, "live WAL stays JSON until rotation");
        // Appends land in the old WAL (as JSON) and still replay.
        apply_live(&mut store, &mut inst, &mut nulls, &mut recv, "e0", vec![firing(2)]);
        store
            .checkpoint(&Snapshot::capture(&inst, &nulls), &recv, &ProtocolCounters::default())
            .unwrap();
        assert_eq!(store.wal_codec(), Codec::Binary, "rotation switched the WAL codec");
        drop(store);

        // On disk: the surviving generation is fully binary.
        let snap = std::fs::read(snap_path(dir.path(), 1)).unwrap();
        let wal = std::fs::read(wal_path(dir.path(), 1)).unwrap();
        assert_eq!(Codec::detect_snap(&snap), Some(Codec::Binary));
        assert_eq!(Codec::detect_wal(&wal), Some(Codec::Binary));
        let (_s, rec) = Store::open(dir.path(), SyncPolicy::Always, Codec::Binary).unwrap();
        assert_eq!(rec.snapshot_codec, Codec::Binary);
        assert_eq!(rec.instance, inst, "state survives the codec conversion");
        assert_eq!(rec.nulls.invented(), nulls.invented());
        assert_eq!(rec.recv_cache, recv);
    }

    #[test]
    fn shared_group_commit_survives_rotation_and_host_crash_truncation() {
        // Two stores share one scheduler. Appends coalesce; a checkpoint
        // rotates one store's WAL (re-registering the fresh file); a
        // simulated host crash — truncating each live WAL to its durable
        // watermark — must recover every acked record on both stores.
        let policy = SyncPolicy::GroupCommit { max_batch: 64, max_records: 4 };
        let sched = FsyncScheduler::for_policy(policy).unwrap();
        let dir_a = ScratchDir::new("store-group-a");
        let dir_b = ScratchDir::new("store-group-b");
        let (inst, nulls) = seed();
        let snap = Snapshot::capture(&inst, &nulls);
        let mk = |dir: &ScratchDir| {
            Store::create_with(
                dir.path(),
                &snap,
                &RecvCaches::new(),
                &ProtocolCounters::default(),
                policy,
                Codec::Binary,
                Some(&sched),
            )
            .unwrap()
        };
        let mut a = mk(&dir_a);
        let mut b = mk(&dir_b);
        assert!(a.scheduler().is_some());

        // Rotate `a`: the fresh WAL joins the same scheduler.
        a.checkpoint(&snap, &RecvCaches::new(), &ProtocolCounters::default()).unwrap();
        assert_eq!(a.generation(), 1);

        let insert = |k: i64| WalRecord::LocalInsert { relation: "r".into(), tuple: tup![k, k] };
        // Three appends: under the 4-record window, none acked yet.
        a.append(&insert(100)).unwrap();
        a.append(&insert(101)).unwrap();
        b.append(&insert(200)).unwrap();
        assert_eq!(a.durable_wal_records(), 2, "rotation checkpoint head only");
        assert_eq!(b.durable_wal_records(), 2, "creation checkpoint head only");
        // Fourth append trips the window: one drain covers both files.
        b.append(&insert(201)).unwrap();
        assert_eq!(a.durable_wal_records(), 4);
        assert_eq!(b.durable_wal_records(), 4);
        // A fifth append stays pending — the record a host crash loses.
        a.append(&insert(102)).unwrap();
        assert_eq!(a.durable_wal_records(), 4);
        let acked_a = a.durable_wal_records();
        let durable_len_a = a.durable_wal_len();
        let (wal_a, wal_b) = (a.wal_path().to_owned(), b.wal_path().to_owned());
        let durable_len_b = b.durable_wal_len();
        drop(a);
        drop(b);

        // Host crash: the unsynced tail vanishes (page cache lost).
        let full_a = std::fs::read(&wal_a).unwrap();
        assert!(durable_len_a < full_a.len() as u64, "a pending tail existed");
        std::fs::write(&wal_a, &full_a[..durable_len_a as usize]).unwrap();
        let full_b = std::fs::read(&wal_b).unwrap();
        assert_eq!(durable_len_b, full_b.len() as u64, "b was fully drained");

        let (_, rec_a) = Store::open(dir_a.path(), policy, Codec::Binary).unwrap();
        assert_eq!(rec_a.wal_records_replayed, acked_a, "every acked record recovered");
        assert!(rec_a.instance.get("r").unwrap().contains(&tup![101, 101]));
        assert!(!rec_a.instance.get("r").unwrap().contains(&tup![102, 102]), "unacked tail lost");
        let (_, rec_b) = Store::open(dir_b.path(), policy, Codec::Binary).unwrap();
        assert!(rec_b.instance.get("r").unwrap().contains(&tup![201, 201]));
    }

    #[test]
    fn create_refuses_to_clobber() {
        let dir = ScratchDir::new("store-clobber");
        let (inst, nulls) = seed();
        let snap = Snapshot::capture(&inst, &nulls);
        let recv = RecvCaches::new();
        let _s = Store::create(
            dir.path(),
            &snap,
            &recv,
            &ProtocolCounters::default(),
            SyncPolicy::Always,
            Codec::Binary,
        )
        .unwrap();
        assert!(matches!(
            Store::create(
                dir.path(),
                &snap,
                &recv,
                &ProtocolCounters::default(),
                SyncPolicy::Always,
                Codec::Binary
            ),
            Err(StoreError::AlreadyExists { .. })
        ));
    }

    #[test]
    fn open_empty_dir_is_no_state() {
        let dir = ScratchDir::new("store-empty");
        assert!(!Store::exists(dir.path()));
        assert!(matches!(
            Store::open(dir.path(), SyncPolicy::Always, Codec::Binary),
            Err(StoreError::NoState { .. })
        ));
    }

    #[test]
    fn torn_wal_tail_recovers_cleanly() {
        let dir = ScratchDir::new("store-torn");
        let (mut inst, mut nulls) = seed();
        let mut recv = RecvCaches::new();
        let mut store = Store::create(
            dir.path(),
            &Snapshot::capture(&inst, &nulls),
            &recv,
            &ProtocolCounters::default(),
            SyncPolicy::Always,
            Codec::Binary,
        )
        .unwrap();
        apply_live(&mut store, &mut inst, &mut nulls, &mut recv, "e0", vec![firing(1)]);
        apply_live(&mut store, &mut inst, &mut nulls, &mut recv, "e0", vec![firing(2)]);
        drop(store);
        // Chop the final frame mid-payload.
        let wal = wal_path(dir.path(), 0);
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 4]).unwrap();

        let (store, rec) = Store::open(dir.path(), SyncPolicy::Always, Codec::Binary).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.wal_records_replayed, 3); // caches + counters + first apply
        assert_eq!(rec.instance.tuple_count(), 2); // seed + firing(1)
                                                   // The truncated log accepts appends again.
        drop(store);
        let (_, rec2) = Store::open(dir.path(), SyncPolicy::Always, Codec::Binary).unwrap();
        assert!(!rec2.torn_tail, "truncation removed the torn frame");
    }

    #[test]
    fn corrupt_snapshot_falls_back_or_errors() {
        let dir = ScratchDir::new("store-snapflip");
        let (inst, nulls) = seed();
        let mut store = Store::create(
            dir.path(),
            &Snapshot::capture(&inst, &nulls),
            &RecvCaches::new(),
            &ProtocolCounters::default(),
            SyncPolicy::Always,
            Codec::Binary,
        )
        .unwrap();
        store
            .checkpoint(
                &Snapshot::capture(&inst, &nulls),
                &RecvCaches::new(),
                &ProtocolCounters::default(),
            )
            .unwrap();
        drop(store);
        // Flip a byte inside the only snapshot: open must fail loudly.
        let snap = snap_path(dir.path(), 1);
        let mut bytes = std::fs::read(&snap).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x01;
        std::fs::write(&snap, &bytes).unwrap();
        assert!(matches!(
            Store::open(dir.path(), SyncPolicy::Always, Codec::Binary),
            Err(StoreError::CorruptFrame { .. })
        ));
    }

    #[test]
    fn version_mismatch_is_typed_not_silent() {
        let dir = ScratchDir::new("store-version");
        let (inst, nulls) = seed();
        let mut snap = Snapshot::capture(&inst, &nulls);
        snap.version = 999;
        // Write the bad snapshot through the file layer directly (the
        // normal API can't produce one).
        std::fs::create_dir_all(dir.path()).unwrap();
        write_snapshot_file(&snap_path(dir.path(), 0), &snap, Codec::Binary).unwrap();
        WalWriter::create(&wal_path(dir.path(), 0), SyncPolicy::Always, Codec::Binary).unwrap();
        match Store::open(dir.path(), SyncPolicy::Always, Codec::Binary) {
            Err(StoreError::Snapshot(SnapshotError::VersionMismatch { found, .. })) => {
                assert_eq!(found, 999);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn lost_epoch_counter_is_a_loud_error() {
        // Rejoining with a stale epoch would leave the node mute at its
        // peers (every envelope dropped as from a dead incarnation), so a
        // missing or garbled codb.epoch must fail the open loudly.
        let dir = ScratchDir::new("store-epochloss");
        let (inst, nulls) = seed();
        let store = Store::create(
            dir.path(),
            &Snapshot::capture(&inst, &nulls),
            &RecvCaches::new(),
            &ProtocolCounters::default(),
            SyncPolicy::Always,
            Codec::Binary,
        )
        .unwrap();
        drop(store);
        std::fs::remove_file(dir.path().join("codb.epoch")).unwrap();
        assert!(matches!(
            Store::open(dir.path(), SyncPolicy::Always, Codec::Binary),
            Err(StoreError::Epoch { .. })
        ));
        std::fs::write(dir.path().join("codb.epoch"), "not-a-number").unwrap();
        assert!(matches!(
            Store::open(dir.path(), SyncPolicy::Always, Codec::Binary),
            Err(StoreError::Epoch { .. })
        ));
    }

    #[test]
    fn corrupt_newer_generation_falls_back_and_is_quarantined() {
        let dir = ScratchDir::new("store-fallback");
        let (inst, nulls) = seed();
        let store = Store::create(
            dir.path(),
            &Snapshot::capture(&inst, &nulls),
            &RecvCaches::new(),
            &ProtocolCounters::default(),
            SyncPolicy::Always,
            Codec::Binary,
        )
        .unwrap();
        drop(store);
        // Hand-craft a damaged generation-1 snapshot (magic + garbage
        // frame) plus its WAL, as bit rot after a checkpoint would leave.
        let bad_snap = snap_path(dir.path(), 1);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&crate::frame::SNAP_MAGIC);
        bytes.extend_from_slice(&[9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 1, 2, 3]);
        std::fs::write(&bad_snap, bytes).unwrap();
        WalWriter::create(&wal_path(dir.path(), 1), SyncPolicy::Always, Codec::Binary).unwrap();

        let (store, rec) = Store::open(dir.path(), SyncPolicy::Always, Codec::Binary).unwrap();
        assert_eq!(rec.generation, 0, "fell back to the older valid generation");
        assert_eq!(rec.instance, inst);
        // The damaged newer generation is quarantined, not destroyed.
        assert!(!bad_snap.exists());
        assert!(dir.path().join("codb-0000000001.snap.corrupt").exists());
        assert!(dir.path().join("codb-0000000001.wal.corrupt").exists());
        drop(store);
    }

    #[test]
    fn interrupted_checkpoint_leaves_previous_generation_usable() {
        let dir = ScratchDir::new("store-interrupted");
        let (mut inst, mut nulls) = seed();
        let mut recv = RecvCaches::new();
        let mut store = Store::create(
            dir.path(),
            &Snapshot::capture(&inst, &nulls),
            &recv,
            &ProtocolCounters::default(),
            SyncPolicy::Always,
            Codec::Binary,
        )
        .unwrap();
        apply_live(&mut store, &mut inst, &mut nulls, &mut recv, "e0", vec![firing(5)]);
        drop(store);
        // Simulate a crash between WAL creation and the snapshot rename:
        // an orphan next-generation WAL plus a snapshot .tmp file.
        WalWriter::create(&wal_path(dir.path(), 1), SyncPolicy::Always, Codec::Binary).unwrap();
        std::fs::write(dir.path().join("codb-0000000001.tmp"), b"half-written").unwrap();

        let (store, rec) = Store::open(dir.path(), SyncPolicy::Always, Codec::Binary).unwrap();
        assert_eq!(rec.generation, 0, "commit point not reached → previous generation");
        assert_eq!(rec.instance, inst);
        // Orphans are swept.
        assert!(!wal_path(dir.path(), 1).exists());
        assert!(!dir.path().join("codb-0000000001.tmp").exists());
        drop(store);
    }
}
