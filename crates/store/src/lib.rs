//! # codb-store
//!
//! The durable storage engine of the coDB reproduction. In the paper every
//! peer sits on a real RDBMS, so node state survives restarts and the
//! dynamic-network experiments assume peers can drop out and come back.
//! Our nodes are in-memory; this crate gives them the missing durability:
//! an append-only, checksummed **write-ahead log** of applied update
//! deltas plus periodic **snapshot** files, with log rotation/compaction
//! after each snapshot, a recovery path that tolerates a torn final
//! frame, and a shared **group-commit fsync scheduler**
//! ([`FsyncScheduler`], [`SyncPolicy::GroupCommit`]) that coalesces the
//! fsyncs of many co-located stores.
//!
//! **The normative durability contract lives in [`durability`]**
//! (rendered from `docs/DURABILITY.md`): what each [`SyncPolicy`]
//! guarantees, the ack rule, loss windows, torn-tail vs corrupt-frame
//! handling, epoch semantics and codec upgrade-on-rotation. The notes
//! below describe mechanisms; the contract page wins on any
//! disagreement.
//!
//! ## On-disk format
//!
//! A store is one directory holding at most a handful of files, named by
//! *generation* (a counter bumped at every checkpoint):
//!
//! ```text
//! <dir>/codb-0000000003.snap     snapshot of generation 3
//! <dir>/codb-0000000003.wal      WAL tail of generation 3
//! <dir>/codb.epoch               incarnation counter (bumped per open)
//! ```
//!
//! `codb.epoch` counts the store's incarnations: every [`Store::open`]
//! bumps it, and a recovered node stamps it on its envelopes **and mints
//! it into its update/query ids** (`(origin, epoch, seq)`), so peers can
//! tell a restarted node (whose transport sequence numbers start over)
//! from a duplicate-sending one, and a rejoined initiator's ids cannot
//! collide with its dead incarnation's. The epoch also drives the crash
//! rejoin handshake (`codb_core::rejoin`): the recovered node announces
//! it to every acquaintance, which invalidates the incremental
//! sent-caches pointed at the node.
//!
//! Both file kinds share one *frame* layout (see [`frame`]):
//!
//! ```text
//! [len: u32 LE][!len: u32 LE][crc32: u32 LE][payload: len bytes]
//! ```
//!
//! where `crc32` is the IEEE CRC-32 of the payload and `!len` is the
//! bitwise complement of `len` (so a corrupted length field is caught as
//! corruption instead of masquerading as a torn tail).
//!
//! Every file starts with an 8-byte magic whose **eighth byte is the
//! format byte** selecting the payload [`Codec`] (see [`codec`]):
//! `CODBSNP1`/`CODBWAL1` for JSON payloads (the seed format),
//! `CODBSNP2`/`CODBWAL2` for the compact binary varint/tag encoding.
//! Readers auto-detect the codec per file, so a store written by any
//! past format keeps recovering; writers append in the codec the file
//! was created with, and a store converts to its *target* codec at
//! checkpoint rotation (**upgrade-on-rotation** — a legacy JSON store
//! becomes binary in place at its first checkpoint, no offline
//! migration step).
//!
//! A `.snap` file is the magic followed by exactly one frame whose
//! payload is a [`codb_relational::Snapshot`] (version-checked via
//! `SNAPSHOT_VERSION` in either codec). A `.wal` file is the magic
//! followed by any number of frames, each one [`WalRecord`]. Every WAL
//! opens with two checkpoint records:
//!
//! 1. a [`WalRecord::Caches`] checkpoint of the node's receiver-side
//!    dedup caches, so a recovered node never re-instantiates existential
//!    templates it has already materialised (which would silently
//!    duplicate GLAV data under fresh nulls); and
//! 2. a [`WalRecord::Counters`] checkpoint of the protocol counters
//!    ([`ProtocolCounters`]: next update / query / fetch sequence
//!    numbers). The node re-appends a `Counters` record every time it
//!    mints an id, and replay keeps the **last** one, so a recovered node
//!    *resumes* its id space rather than restarting it at zero — the
//!    counter half of the crash-rejoin guarantee (the `(epoch, seq)` id
//!    keying is the other half: even a lost counter cannot collide).
//!
//! ## Compaction rules
//!
//! A checkpoint ([`Store::checkpoint`]) writes the snapshot of generation
//! `g+1` via a temp file + atomic rename, starts a fresh
//! `codb-<g+1>.wal`, and only then deletes the generation-`g` files. A
//! crash at any point leaves at least one complete generation on disk;
//! recovery loads the **latest valid** snapshot and replays its WAL tail.
//!
//! ## Failure semantics
//!
//! * A frame that runs past end-of-file is a *torn tail* — the classic
//!   crash-mid-append artifact. Recovery stops cleanly before it and the
//!   writer truncates it away on reopen.
//! * A complete frame whose checksum does not match is **corruption** and
//!   is rejected with a typed [`StoreError::CorruptFrame`] — never
//!   silently accepted. The same holds for a frame whose payload fails to
//!   decode under the file's codec (unknown tag, wild length, invalid
//!   UTF-8, trailing bytes): a typed error, never a wrong decode.
//! * A snapshot with a mismatched format version is rejected with
//!   [`codb_relational::SnapshotError::VersionMismatch`]; a file whose
//!   format byte names no known codec is [`StoreError::BadMagic`].

#![warn(missing_docs)]

pub mod codec;
pub mod frame;
pub mod group;
pub mod scratch;
pub mod store;
pub mod wal;

pub use crate::store::{RecoveredState, RecoveryStats, Store, StoreError};
pub use codec::Codec;
pub use frame::{crc32, SNAP_MAGIC, WAL_MAGIC};
pub use group::{FsyncScheduler, FsyncSchedulerStats};
pub use scratch::ScratchDir;
pub use wal::{ProtocolCounters, RecvCaches, SyncPolicy, WalRecord};

/// The normative durability contract, rendered from `docs/DURABILITY.md`
/// — the single written source of truth for what each [`SyncPolicy`]
/// guarantees, the on-disk layout, torn-tail vs corrupt-frame handling,
/// epoch/rejoin semantics and codec upgrade-on-rotation. Including the
/// file here makes `cargo doc -D warnings` resolve its intra-doc links,
/// so the contract and the code cannot silently drift.
#[doc = include_str!("../../../docs/DURABILITY.md")]
pub mod durability {}
