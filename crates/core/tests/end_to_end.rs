//! End-to-end tests of the coDB protocols on the deterministic simulator.

use codb_core::{CoDbNetwork, NetworkConfig, NodeSettings};
use codb_net::{PipeConfig, SimConfig, SimTime};
use codb_relational::tup;

fn build(src: &str) -> CoDbNetwork {
    CoDbNetwork::build(NetworkConfig::parse(src).unwrap(), SimConfig::default()).unwrap()
}

const TWO_NODES: &str = r#"
    node hr
    node portal
    schema hr: emp(str, int)
    schema portal: person(str, int)
    data hr: emp("alice", 30). emp("bob", 17). emp("carol", 45).
    rule r1 @ hr -> portal: person(N, A) <- emp(N, A), A >= 18.
"#;

#[test]
fn two_node_update_materialises_filtered_data() {
    let mut net = build(TWO_NODES);
    let portal = net.node_id("portal").unwrap();
    let hr = net.node_id("hr").unwrap();
    assert_eq!(net.node(portal).ldb().get("person").unwrap().len(), 0);

    let outcome = net.run_update(portal);
    let person = net.node(portal).ldb().get("person").unwrap();
    assert_eq!(person.sorted(), vec![tup!["alice", 30], tup!["carol", 45]]);
    // The source is untouched.
    assert_eq!(net.node(hr).ldb().get("emp").unwrap().len(), 3);
    assert!(outcome.duration > SimTime::ZERO);
    assert_eq!(outcome.summary.tuples_added, 2);
    assert_eq!(outcome.summary.nodes, 2);
}

#[test]
fn update_is_idempotent() {
    let mut net = build(TWO_NODES);
    let portal = net.node_id("portal").unwrap();
    let first = net.run_update(portal);
    assert_eq!(first.summary.tuples_added, 2);
    let second = net.run_update(portal);
    assert_eq!(second.summary.tuples_added, 0);
    assert_eq!(net.node(portal).ldb().get("person").unwrap().len(), 2);
}

#[test]
fn update_started_anywhere_reaches_everyone() {
    // Starting at the source also updates the target (flooding).
    let mut net = build(TWO_NODES);
    let hr = net.node_id("hr").unwrap();
    let portal = net.node_id("portal").unwrap();
    net.run_update(hr);
    assert_eq!(net.node(portal).ldb().get("person").unwrap().len(), 2);
}

fn chain_config(n: usize, tuples: usize) -> String {
    // n nodes; node 0 holds base data; rule i copies r from node i to i+1.
    let mut s = String::new();
    for i in 0..n {
        s.push_str(&format!("node node{i}\nschema node{i}: r(int)\n"));
    }
    s.push_str("data node0: ");
    for t in 0..tuples {
        s.push_str(&format!("r({t}). "));
    }
    s.push('\n');
    for i in 0..n - 1 {
        s.push_str(&format!("rule c{i} @ node{i} -> node{j}: r(X) <- r(X).\n", j = i + 1));
    }
    s
}

#[test]
fn chain_update_propagates_transitively() {
    let mut net = build(&chain_config(5, 10));
    let last = net.node_id("node4").unwrap();
    let outcome = net.run_update(net.node_id("node0").unwrap());
    for i in 0..5 {
        let id = net.node_id(&format!("node{i}")).unwrap();
        assert_eq!(
            net.node(id).ldb().get("r").unwrap().len(),
            10,
            "node{i} must hold all 10 tuples"
        );
    }
    assert_eq!(net.node(last).ldb().get("r").unwrap().len(), 10);
    // Longest propagation path in a 5-chain is 4 hops.
    assert_eq!(outcome.summary.longest_path, 4);
    // Every node closed on its own (acyclic): no forced closes needed.
    assert_eq!(outcome.summary.closed_early, 5);
    assert_eq!(outcome.summary.tuples_added, 40);
}

#[test]
fn chain_closes_progressively_without_update_complete_data() {
    // In an acyclic chain every LinkClosed is derived from the paper's
    // rule, before the global completion flood arrives.
    let mut net = build(&chain_config(4, 3));
    let outcome = net.run_update(net.node_id("node0").unwrap());
    let report = net.network_report();
    for (_, node) in report.nodes.iter() {
        let r = &node.updates[&outcome.update];
        let closed = r.closed_at.expect("every node closed");
        let completed = r.completed_at.expect("every node saw completion");
        assert!(closed <= completed, "paper's close rule fires no later than the flood");
    }
}

#[test]
fn cyclic_rules_reach_fixpoint_and_terminate() {
    // Ring of 3 nodes copying r around: every node ends with the union.
    let src = r#"
        node a
        node b
        node c
        schema a: r(int)
        schema b: r(int)
        schema c: r(int)
        data a: r(1). r(2).
        data b: r(3).
        data c: r(4).
        rule ab @ a -> b: r(X) <- r(X).
        rule bc @ b -> c: r(X) <- r(X).
        rule ca @ c -> a: r(X) <- r(X).
    "#;
    let mut net = build(src);
    let outcome = net.run_update(net.node_id("a").unwrap());
    for name in ["a", "b", "c"] {
        let id = net.node_id(name).unwrap();
        assert_eq!(
            net.node(id).ldb().get("r").unwrap().sorted(),
            vec![tup![1], tup![2], tup![3], tup![4]],
            "node {name} must hold the fixpoint"
        );
    }
    // Cyclic links cannot close by the paper's rule alone; completion is
    // forced by the Dijkstra–Scholten termination flood.
    assert_eq!(outcome.summary.closed_early, 0);
    assert!(outcome.summary.longest_path >= 2);
}

#[test]
fn two_node_cycle_converges() {
    let src = r#"
        node a
        node b
        schema a: r(int)
        schema b: r(int)
        data a: r(1).
        data b: r(2).
        rule ab @ a -> b: r(X) <- r(X).
        rule ba @ b -> a: r(X) <- r(X).
    "#;
    let mut net = build(src);
    net.run_update(net.node_id("b").unwrap());
    for name in ["a", "b"] {
        let id = net.node_id(name).unwrap();
        assert_eq!(net.node(id).ldb().get("r").unwrap().len(), 2);
    }
}

#[test]
fn glav_rule_invents_shared_nulls() {
    let src = r#"
        node src
        node tgt
        schema src: emp(str)
        schema tgt: person(str, int)
        schema tgt: dept(int)
        data src: emp("ada"). emp("bob").
        rule g @ src -> tgt: person(N, D), dept(D) <- emp(N).
    "#;
    let mut net = build(src);
    let tgt = net.node_id("tgt").unwrap();
    net.run_update(tgt);
    let node = net.node(tgt);
    let person = node.ldb().get("person").unwrap();
    let dept = node.ldb().get("dept").unwrap();
    assert_eq!(person.len(), 2);
    assert_eq!(dept.len(), 2);
    // Each person's invented dept id also appears in dept (joint nulls).
    for t in person.iter() {
        assert!(t.get(1).unwrap().is_null());
        assert!(dept.contains(&codb_relational::Tuple::new(vec![t[1].clone()])));
    }
}

#[test]
fn query_time_answers_match_materialised_answers_on_chain() {
    let cfg = chain_config(4, 6);
    let query = "ans(X) :- r(X).";

    // Query-time (fresh network, nothing materialised).
    let mut net1 = build(&cfg);
    let last1 = net1.node_id("node3").unwrap();
    let q = net1.run_query_text(last1, query, true).unwrap();
    assert_eq!(q.result.answers.len(), 6);
    assert!(q.messages > 0);
    // The query did NOT materialise anything.
    assert_eq!(net1.node(last1).ldb().get("r").unwrap().len(), 0);

    // Materialised (update first, then local query).
    let mut net2 = build(&cfg);
    let last2 = net2.node_id("node3").unwrap();
    net2.run_update(last2);
    let q2 = net2.run_query_text(last2, query, false).unwrap();
    assert_eq!(q2.result.answers, q.result.answers);
    assert_eq!(q2.messages, 0, "local query needs no messages");
}

#[test]
fn query_time_on_cycle_is_sound_subset() {
    let src = r#"
        node a
        node b
        schema a: r(int)
        schema b: r(int)
        data a: r(1).
        data b: r(2).
        rule ab @ a -> b: r(X) <- r(X).
        rule ba @ b -> a: r(X) <- r(X).
    "#;
    let mut net = build(src);
    let a = net.node_id("a").unwrap();
    let q = net.run_query_text(a, "ans(X) :- r(X).", true).unwrap();
    // Simple paths reach b once: both tuples visible from a.
    assert_eq!(q.result.answers.len(), 2);
    // And the update agrees.
    net.run_update(a);
    let local = net.run_query_text(a, "ans(X) :- r(X).", false).unwrap();
    assert_eq!(local.result.answers.len(), 2);
}

#[test]
fn update_survives_message_loss_with_retransmission() {
    let config = NetworkConfig::parse(&chain_config(4, 5)).unwrap();
    let sim = SimConfig {
        seed: 42,
        default_pipe: PipeConfig::lan().with_loss(0.15),
        max_events: 2_000_000,
    };
    let settings = NodeSettings {
        retransmit_after: SimTime::from_millis(20),
        pipe: PipeConfig::lan().with_loss(0.15),
        ..Default::default()
    };
    let mut net = CoDbNetwork::build_with(config, sim, settings, false).unwrap();
    let outcome = net.run_update(net.node_id("node0").unwrap());
    assert!(net.sim().stats().dropped > 0, "loss model must have fired");
    for i in 0..4 {
        let id = net.node_id(&format!("node{i}")).unwrap();
        assert_eq!(net.node(id).ldb().get("r").unwrap().len(), 5, "node{i}");
    }
    assert_eq!(outcome.summary.nodes, 4);
}

#[test]
fn comparison_predicates_filter_at_the_source() {
    let src = r#"
        node s
        node t
        schema s: m(int, int)
        schema t: big(int)
        data s: m(1, 10). m(2, 20). m(3, 30).
        rule f @ s -> t: big(X) <- m(X, Y), Y > 15.
    "#;
    let mut net = build(src);
    let t = net.node_id("t").unwrap();
    net.run_update(t);
    assert_eq!(net.node(t).ldb().get("big").unwrap().sorted(), vec![tup![2], tup![3]]);
}

#[test]
fn join_rule_combines_relations_at_source() {
    let src = r#"
        node s
        node t
        schema s: e(int, int)
        schema s: lab(int, str)
        schema t: named_edge(str, str)
        data s: e(1, 2). e(2, 3).
        data s: lab(1, "one"). lab(2, "two"). lab(3, "three").
        rule j @ s -> t: named_edge(A, B) <- e(X, Y), lab(X, A), lab(Y, B).
    "#;
    let mut net = build(src);
    let t = net.node_id("t").unwrap();
    net.run_update(t);
    assert_eq!(
        net.node(t).ldb().get("named_edge").unwrap().sorted(),
        vec![tup!["one", "two"], tup!["two", "three"]]
    );
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut net = build(&chain_config(5, 8));
        let o = net.run_update(net.node_id("node0").unwrap());
        (o.duration, o.messages, o.bytes, o.summary.tuples_added)
    };
    assert_eq!(run(), run());
}

#[test]
fn star_topology_fanout() {
    // Hub imports from 4 leaves.
    let mut s = String::new();
    s.push_str("node hub\nschema hub: all(int)\n");
    for i in 0..4 {
        s.push_str(&format!("node leaf{i}\nschema leaf{i}: r(int)\ndata leaf{i}: r({i}).\n"));
    }
    for i in 0..4 {
        s.push_str(&format!("rule s{i} @ leaf{i} -> hub: all(X) <- r(X).\n"));
    }
    let mut net = build(&s);
    let hub = net.node_id("hub").unwrap();
    let outcome = net.run_update(hub);
    assert_eq!(net.node(hub).ldb().get("all").unwrap().len(), 4);
    assert_eq!(outcome.summary.longest_path, 1);
}

#[test]
fn diamond_deduplicates_via_both_paths() {
    // a -> b -> d and a -> c -> d: d receives everything twice, stores once.
    let src = r#"
        node a
        node b
        node c
        node d
        schema a: r(int)
        schema b: r(int)
        schema c: r(int)
        schema d: r(int)
        data a: r(1). r(2).
        rule ab @ a -> b: r(X) <- r(X).
        rule ac @ a -> c: r(X) <- r(X).
        rule bd @ b -> d: r(X) <- r(X).
        rule cd @ c -> d: r(X) <- r(X).
    "#;
    let mut net = build(src);
    let d = net.node_id("d").unwrap();
    let outcome = net.run_update(d);
    assert_eq!(net.node(d).ldb().get("r").unwrap().len(), 2);
    // d received 2 firings on each of its two outgoing links but added 2.
    let report = net.network_report();
    let d_report = &report.nodes[&d].updates[&outcome.update];
    assert_eq!(d_report.tuples_added, 2);
    let recv: u64 = d_report.received.values().map(|t| t.firings).sum();
    assert_eq!(recv, 4);
}

#[test]
fn superpeer_collects_stats_matching_direct_reads() {
    let config = NetworkConfig::parse(&chain_config(3, 4)).unwrap();
    let mut net = CoDbNetwork::build_with_superpeer(config, SimConfig::default()).unwrap();
    let origin = net.node_id("node0").unwrap();
    let outcome = net.run_update(origin);
    let direct = net.network_report();
    let collected = net.collect_stats();
    let s1 = direct.summarise(outcome.update).unwrap();
    let s2 = collected.summarise(outcome.update).unwrap();
    assert_eq!(s1.tuples_added, s2.tuples_added);
    assert_eq!(s1.data_messages, s2.data_messages);
    assert_eq!(s1.longest_path, s2.longest_path);
    assert_eq!(s1.nodes, s2.nodes);
}

#[test]
fn superpeer_rebroadcast_rewires_topology() {
    // Start with a -> b; rewire to a -> c at runtime.
    let v1 = r#"
        version 1
        node a
        node b
        node c
        schema a: r(int)
        schema b: r(int)
        schema c: r(int)
        data a: r(7).
        rule ab @ a -> b: r(X) <- r(X).
    "#;
    let v2 = r#"
        version 2
        node a
        node b
        node c
        schema a: r(int)
        schema b: r(int)
        schema c: r(int)
        data a: r(7).
        rule ac @ a -> c: r(X) <- r(X).
    "#;
    let mut net =
        CoDbNetwork::build_with_superpeer(NetworkConfig::parse(v1).unwrap(), SimConfig::default())
            .unwrap();
    let (a, b, c) =
        (net.node_id("a").unwrap(), net.node_id("b").unwrap(), net.node_id("c").unwrap());
    net.run_update(a);
    assert_eq!(net.node(b).ldb().get("r").unwrap().len(), 1);
    assert_eq!(net.node(c).ldb().get("r").unwrap().len(), 0);

    net.broadcast_rules(NetworkConfig::parse(v2).unwrap()).unwrap();
    // Pipes rewired: a-b gone, a-c open.
    assert!(!net.sim().has_pipe(a.peer(), b.peer()));
    assert!(net.sim().has_pipe(a.peer(), c.peer()));

    net.run_update(a);
    assert_eq!(net.node(c).ldb().get("r").unwrap().len(), 1);
}

#[test]
fn isolated_node_update_completes_immediately() {
    let src = "node lonely\nschema lonely: r(int)\ndata lonely: r(1).";
    let mut net = build(src);
    let id = net.node_id("lonely").unwrap();
    let outcome = net.run_update(id);
    assert_eq!(outcome.summary.nodes, 1);
    assert_eq!(outcome.summary.tuples_added, 0);
}

#[test]
fn mediator_node_relays_without_local_data() {
    // mid has schema but no data: pure mediator between src and dst.
    let src = r#"
        node src
        node mid
        node dst
        schema src: r(int)
        schema mid: r(int)
        schema dst: r(int)
        data src: r(1). r(2). r(3).
        rule sm @ src -> mid: r(X) <- r(X).
        rule md @ mid -> dst: r(X) <- r(X).
    "#;
    let mut net = build(src);
    let dst = net.node_id("dst").unwrap();
    net.run_update(dst);
    assert_eq!(net.node(dst).ldb().get("r").unwrap().len(), 3);
}

// ---------------------------------------------------------------------
// Query-dependent (scoped) updates — the paper's "query-dependent update
// requests" (§2).
// ---------------------------------------------------------------------

const FORKED: &str = r#"
    node left
    node right
    node hub
    schema left: l(int)
    schema right: r(int)
    schema hub: l_data(int)
    schema hub: r_data(int)
    data left: l(1). l(2).
    data right: r(3). r(4). r(5).
    rule from_l @ left -> hub: l_data(X) <- l(X).
    rule from_r @ right -> hub: r_data(X) <- r(X).
"#;

#[test]
fn scoped_update_materialises_only_the_demanded_branch() {
    let mut net = build(FORKED);
    let hub = net.node_id("hub").unwrap();
    let outcome = net.run_scoped_update(hub, vec!["l_data".to_owned()]);
    let node = net.node(hub);
    assert_eq!(node.ldb().get("l_data").unwrap().len(), 2, "demanded branch");
    assert_eq!(node.ldb().get("r_data").unwrap().len(), 0, "undemanded branch untouched");
    // Fewer messages than a full update would need (no flood, no right
    // branch).
    assert!(outcome.summary.tuples_added == 2);
    let full = {
        let mut net2 = build(FORKED);
        net2.run_update(hub)
    };
    assert!(
        outcome.messages < full.messages,
        "scoped {} !< full {}",
        outcome.messages,
        full.messages
    );
}

#[test]
fn scoped_update_follows_transitive_demand() {
    // chain: node0 -> node1 -> node2; demand at node2 pulls through node1.
    let mut net = build(&chain_config(3, 4));
    let last = net.node_id("node2").unwrap();
    let outcome = net.run_scoped_update(last, vec!["r".to_owned()]);
    assert_eq!(net.node(last).ldb().get("r").unwrap().len(), 4);
    // Intermediate node also materialised (it is on the demand path).
    let mid = net.node_id("node1").unwrap();
    assert_eq!(net.node(mid).ldb().get("r").unwrap().len(), 4);
    assert_eq!(outcome.summary.longest_path, 2);
}

#[test]
fn scoped_update_on_cycle_terminates() {
    let src = r#"
        node a
        node b
        schema a: r(int)
        schema b: r(int)
        data a: r(1).
        data b: r(2).
        rule ab @ a -> b: r(X) <- r(X).
        rule ba @ b -> a: r(X) <- r(X).
    "#;
    let mut net = build(src);
    let a = net.node_id("a").unwrap();
    net.run_scoped_update(a, vec!["r".to_owned()]);
    assert_eq!(net.node(a).ldb().get("r").unwrap().len(), 2);
    // b also reaches the fixpoint: the cycle demands b's r, which demands
    // a's r back.
    let b = net.node_id("b").unwrap();
    assert_eq!(net.node(b).ldb().get("r").unwrap().len(), 2);
}

#[test]
fn scoped_update_with_unknown_relation_is_a_noop() {
    let mut net = build(FORKED);
    let hub = net.node_id("hub").unwrap();
    let outcome = net.run_scoped_update(hub, vec!["nonexistent".to_owned()]);
    assert_eq!(outcome.summary.tuples_added, 0);
    // Only the completion flood and its acks — no demands, no data.
    assert!(outcome.messages <= 6, "got {}", outcome.messages);
}

#[test]
fn scoped_then_local_query_answers_the_scoping_query() {
    let mut net = build(&chain_config(4, 6));
    let last = net.node_id("node3").unwrap();
    net.run_scoped_update(last, vec!["r".to_owned()]);
    let q = net.run_query_text(last, "ans(X) :- r(X).", false).unwrap();
    assert_eq!(q.result.answers.len(), 6);
    assert_eq!(q.messages, 0);
}

// ---------------------------------------------------------------------
// Concurrency: multiple updates and queries in flight simultaneously.
// ---------------------------------------------------------------------

#[test]
fn two_concurrent_updates_from_different_origins_both_complete() {
    let mut net = build(&chain_config(5, 8));
    let n0 = net.node_id("node0").unwrap();
    let n4 = net.node_id("node4").unwrap();
    // Inject both before running: they interleave in the event queue.
    net.sim_mut().inject(
        codb_core::HARNESS_PEER,
        n0.peer(),
        codb_core::Envelope::control(codb_core::Body::StartUpdate),
    );
    net.sim_mut().inject(
        codb_core::HARNESS_PEER,
        n4.peer(),
        codb_core::Envelope::control(codb_core::Body::StartUpdate),
    );
    net.sim_mut().run_until_quiescent();
    let report = net.network_report();
    let ids = report.update_ids();
    assert_eq!(ids.len(), 2, "two distinct update ids");
    for id in ids {
        let s = report.summarise(id).unwrap();
        assert_eq!(s.nodes, 5, "update {id} reached everyone");
    }
    // Data converged exactly once despite double delivery.
    for i in 0..5 {
        let node = net.node_id(&format!("node{i}")).unwrap();
        assert_eq!(net.node(node).ldb().get("r").unwrap().len(), 8);
    }
}

#[test]
fn concurrent_queries_get_distinct_answers() {
    let mut net = build(&chain_config(3, 5));
    let last = net.node_id("node2").unwrap();
    let q1 = codb_relational::parse_query("ans(X) :- r(X).").unwrap();
    let q2 = codb_relational::parse_query("ans(X) :- r(X), X >= 2.").unwrap();
    net.sim_mut().inject(
        codb_core::HARNESS_PEER,
        last.peer(),
        codb_core::Envelope::control(codb_core::Body::StartQuery {
            query: Box::new(q1),
            fetch: true,
        }),
    );
    net.sim_mut().inject(
        codb_core::HARNESS_PEER,
        last.peer(),
        codb_core::Envelope::control(codb_core::Body::StartQuery {
            query: Box::new(q2),
            fetch: true,
        }),
    );
    net.sim_mut().run_until_quiescent();
    let results = &net.node(last).completed_queries;
    assert_eq!(results.len(), 2);
    let mut sizes: Vec<usize> = results.values().map(|r| r.answers.len()).collect();
    sizes.sort();
    assert_eq!(sizes, vec![3, 5]); // {2,3,4} and {0..5}
}

#[test]
fn update_during_query_does_not_corrupt_either() {
    let mut net = build(&chain_config(3, 5));
    let last = net.node_id("node2").unwrap();
    let q = codb_relational::parse_query("ans(X) :- r(X).").unwrap();
    net.sim_mut().inject(
        codb_core::HARNESS_PEER,
        last.peer(),
        codb_core::Envelope::control(codb_core::Body::StartQuery {
            query: Box::new(q),
            fetch: true,
        }),
    );
    net.sim_mut().inject(
        codb_core::HARNESS_PEER,
        last.peer(),
        codb_core::Envelope::control(codb_core::Body::StartUpdate),
    );
    net.sim_mut().run_until_quiescent();
    // The query answered (overlay isolated from the concurrent
    // materialisation — possibly observing it, never corrupting it).
    let results = &net.node(last).completed_queries;
    assert_eq!(results.len(), 1);
    let answers = results.values().next().unwrap().answers.len();
    assert!(answers == 5 || answers == 0 || answers > 0, "query completed");
    // The update fully materialised.
    assert_eq!(net.node(last).ldb().get("r").unwrap().len(), 5);
}

#[test]
fn topology_discovery_finds_non_acquaintances() {
    // Two disjoint two-node networks in one simulator: nodes discover each
    // other through the advertisement board even without pipes or rules.
    let src = r#"
        node a
        node b
        node c
        node d
        schema a: r(int)
        schema b: r(int)
        schema c: s(int)
        schema d: s(int)
        rule ab @ a -> b: r(X) <- r(X).
        rule cd @ c -> d: s(X) <- s(X).
    "#;
    let mut net = build(src);
    let a = net.node_id("a").unwrap();
    net.run_control(a, codb_core::Body::TriggerDiscovery);
    let discovered = &net.node(a).discovered;
    // a discovers b (acquaintance) AND c, d (not acquaintances).
    assert!(discovered.contains(&net.node_id("c").unwrap()));
    assert!(discovered.contains(&net.node_id("d").unwrap()));
    assert!(!discovered.contains(&a), "a does not list itself");
}

// ---------------------------------------------------------------------
// Partition and healing.
// ---------------------------------------------------------------------

#[test]
fn partition_heals_and_next_update_converges() {
    let mut net = build(&chain_config(4, 6));
    let n0 = net.node_id("node0").unwrap();
    let n1 = net.node_id("node1").unwrap();
    let n3 = net.node_id("node3").unwrap();

    // Partition the chain between node1 and node2 before any update.
    let n2 = net.node_id("node2").unwrap();
    net.sim_mut().close_pipe(n1.peer(), n2.peer());

    // An update started at node3 cannot reach across the cut; the run
    // still quiesces (bounded retransmission gives up on the dead pipe).
    net.sim_mut().inject(
        codb_core::HARNESS_PEER,
        n3.peer(),
        codb_core::Envelope::control(codb_core::Body::StartUpdate),
    );
    let mut guard = 0;
    while net.sim_mut().step() {
        guard += 1;
        assert!(guard < 2_000_000, "must quiesce under partition");
    }
    assert_eq!(net.node(n3).ldb().get("r").unwrap().len(), 0, "cut blocks data");

    // Heal the partition and run a fresh update: full convergence.
    net.sim_mut().open_pipe_default(n1.peer(), n2.peer());
    net.run_update(n3);
    assert_eq!(net.node(n3).ldb().get("r").unwrap().len(), 6);
    assert_eq!(net.node(n0).ldb().get("r").unwrap().len(), 6);
}

#[test]
fn node_snapshot_restores_materialised_state() {
    let mut net = build(TWO_NODES);
    let portal = net.node_id("portal").unwrap();
    net.run_update(portal);
    let bytes = net.node(portal).snapshot().to_bytes().unwrap();

    // Fresh network: portal empty; restore the snapshot.
    let mut net2 = build(TWO_NODES);
    let portal2 = net2.node_id("portal").unwrap();
    assert!(net2.node(portal2).ldb().get("person").unwrap().is_empty());
    let snap = codb_relational::Snapshot::from_bytes(&bytes).unwrap();
    net2.sim_mut().peer_mut(portal2.peer()).unwrap().restore(snap);
    let q = net2.run_query_text(portal2, "ans(N) :- person(N, A).", false).unwrap();
    assert_eq!(q.result.answers.len(), 2);
}

// ---------------------------------------------------------------------
// Repeated updates: incremental caches and GLAV re-run semantics.
// ---------------------------------------------------------------------

#[test]
fn repeated_glav_update_does_not_duplicate_nulls() {
    // Without cross-update template dedup, every re-run would invent fresh
    // nulls for the same existential facts and balloon the target.
    let src = r#"
        node s
        node t
        schema s: emp(str)
        schema t: person(str, int)
        data s: emp("ada"). emp("bob").
        rule g @ s -> t: person(N, F) <- emp(N).
    "#;
    let mut net = build(src);
    let t = net.node_id("t").unwrap();
    net.run_update(t);
    assert_eq!(net.node(t).ldb().get("person").unwrap().len(), 2);
    let second = net.run_update(t);
    assert_eq!(second.summary.tuples_added, 0, "re-run must not re-invent nulls");
    assert_eq!(net.node(t).ldb().get("person").unwrap().len(), 2);
}

#[test]
fn incremental_updates_skip_already_sent_data() {
    let mut net = build(&chain_config(3, 10));
    let last = net.node_id("node2").unwrap();
    let first = net.run_update(last);
    assert!(first.summary.data_messages > 0);
    // Second update: sender-side caches persist → no data moves at all.
    let second = net.run_update(last);
    assert_eq!(second.summary.data_messages, 0, "nothing new to ship");
    assert_eq!(second.summary.tuples_added, 0);
}

#[test]
fn incremental_update_ships_only_new_tuples() {
    let mut net = build(&chain_config(3, 10));
    let last = net.node_id("node2").unwrap();
    net.run_update(last);
    // The user inserts two new tuples at the head of the chain.
    let n0 = net.node_id("node0").unwrap();
    let node0 = net.sim_mut().peer_mut(n0.peer()).unwrap();
    node0.insert_local("r", codb_relational::tup![100]).unwrap();
    node0.insert_local("r", codb_relational::tup![101]).unwrap();
    let second = net.run_update(last);
    assert_eq!(second.summary.tuples_added, 4, "2 new tuples × 2 downstream nodes");
    assert_eq!(net.node(last).ldb().get("r").unwrap().len(), 12);
    // Data messages carried only the delta.
    assert_eq!(second.summary.firings, 4);
}

#[test]
fn non_incremental_mode_resends_but_stays_correct() {
    let config = codb_core::NetworkConfig::parse(&chain_config(3, 10)).unwrap();
    let settings = NodeSettings { incremental_updates: false, ..Default::default() };
    let mut net = CoDbNetwork::build_with(config, SimConfig::default(), settings, false).unwrap();
    let last = net.node_id("node2").unwrap();
    let first = net.run_update(last);
    let second = net.run_update(last);
    // Everything is re-sent…
    assert_eq!(second.summary.data_messages, first.summary.data_messages);
    // …but receiver-side template dedup keeps the data exact.
    assert_eq!(second.summary.tuples_added, 0);
    assert_eq!(net.node(last).ldb().get("r").unwrap().len(), 10);
}

#[test]
fn stale_query_rule_gets_empty_answer_not_a_hang() {
    // Query launched against a rule that the source no longer knows (the
    // super-peer rewired mid-flight): the source answers empty so the
    // querying node can finish.
    let v1 = r#"
        version 1
        node a
        node b
        schema a: r(int)
        schema b: r(int)
        data a: r(1).
        rule ab @ a -> b: r(X) <- r(X).
    "#;
    let v2 = r#"
        version 2
        node a
        node b
        schema a: r(int)
        schema b: r(int)
        data a: r(1).
    "#;
    let mut net =
        CoDbNetwork::build_with_superpeer(NetworkConfig::parse(v1).unwrap(), SimConfig::default())
            .unwrap();
    let b = net.node_id("b").unwrap();
    // Rewire away the rule *at the source only* by broadcasting v2... the
    // broadcast reaches everyone, so to create staleness we inject the
    // query while the new rules file is still being distributed: inject
    // both and let the event order interleave.
    let sp = net.superpeer().unwrap();
    net.sim_mut().inject(
        codb_core::HARNESS_PEER,
        sp.peer(),
        codb_core::Envelope::control(codb_core::Body::BroadcastRules),
    );
    // Replace superpeer config first so the broadcast carries v2.
    net.broadcast_rules(NetworkConfig::parse(v2).unwrap()).unwrap();
    let q = net.run_query_text(b, "ans(X) :- r(X).", true).unwrap();
    // The rule is gone: nothing to fetch, query answers from local (empty).
    assert_eq!(q.result.answers.len(), 0);
}

#[test]
fn update_report_duration_fields_are_consistent() {
    let mut net = build(&chain_config(4, 5));
    let outcome = net.run_update(net.node_id("node0").unwrap());
    let report = net.network_report();
    for node in report.nodes.values() {
        let r = &node.updates[&outcome.update];
        let d = r.duration().expect("closed nodes have durations");
        assert!(d <= outcome.summary.total_time);
        assert!(r.started_at >= outcome.summary.started_at);
    }
    // Messages-by-kind account at least the data traffic.
    let kinds: u64 = report.nodes.values().flat_map(|n| n.messages_sent.values()).sum();
    assert!(kinds >= outcome.summary.data_messages);
}

#[test]
fn streaming_queries_deliver_first_answers_before_completion() {
    // On a chain, the immediate local instalment of the first hop arrives
    // well before deep data has travelled the whole chain.
    let mut net = build(&chain_config(6, 4));
    // Seed data at EVERY node so the first instalment is non-empty.
    for i in 1..6 {
        let id = net.node_id(&format!("node{i}")).unwrap();
        let node = net.sim_mut().peer_mut(id.peer()).unwrap();
        for t in 0..4 {
            node.insert_local("r", codb_relational::tup![1000 + i as i64 * 10 + t]).unwrap();
        }
    }
    let last = net.node_id("node5").unwrap();
    let q = net.run_query_text(last, "ans(X) :- r(X).", true).unwrap();
    assert_eq!(q.result.answers.len(), 24);
    let rep = &net.node(last).report().queries[&q.query];
    let first = rep.first_answer_at.expect("streamed");
    let done = rep.finished_at.expect("finished");
    assert!(first < done, "first instalment ({first:?}) must precede completion ({done:?})");
    // Multiple instalments arrived on the single link.
    assert!(rep.answers_received > 1, "got {}", rep.answers_received);
}
