//! Reliable delivery over lossy pipes.
//!
//! JXTA gives coDB reliable pipes; our simulator optionally drops messages
//! (experiment E12), so the node embeds a small ARQ layer: every protocol
//! message carries a transport sequence number, the receiver answers with a
//! transport [`crate::messages::Body::Ack`], duplicates are suppressed by a
//! per-sender seen-set, and unacknowledged messages are retransmitted on a
//! timer. Rule firings and protocol steps are idempotent (firing-level
//! dedup, Dijkstra–Scholten credits counted once), so retransmission is
//! safe.
//!
//! The per-link reliable-send state (`next_seq`, the outstanding set, the
//! per-sender seen-sets) is deliberately **not** persisted: it is
//! epoch-keyed instead. Every sequenced envelope carries the sender's
//! incarnation epoch (`codb-store`'s `codb.epoch`, bumped per recovery);
//! a receiver seeing a grown epoch resets that sender's seen-set, a
//! receiver seeing a stale epoch drops the envelope, and acks echo the
//! epoch so a dead incarnation's ack cannot retire a live one's seq. The
//! protocol-level counters that *must* survive (update/query/fetch ids)
//! are persisted separately as WAL `Counters` records and additionally
//! `(epoch, seq)`-keyed — see [`crate::ids`] and [`crate::rejoin`].

use crate::ids::NodeId;
use crate::messages::{Body, Envelope};
use codb_net::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// An unacknowledged message.
#[derive(Clone, Debug)]
pub struct Outstanding {
    /// Destination node.
    pub to: NodeId,
    /// The body (resent verbatim under the same seq).
    pub body: Body,
    /// Retransmission attempts so far.
    pub attempts: u32,
}

/// Per-node reliable-delivery state.
#[derive(Debug)]
pub struct Reliable {
    next_seq: u64,
    /// This node's incarnation, stamped on every sequenced envelope. Set
    /// once at (re)start — bumping it mid-life would strand in-flight
    /// retransmissions as stale.
    epoch: u64,
    outstanding: BTreeMap<u64, Outstanding>,
    /// Per-sender duplicate suppression: the sender's highest epoch seen
    /// and the seqs processed within it. A higher epoch (the sender was
    /// restarted from its store) resets the seq set; envelopes from lower
    /// epochs are stale and dropped.
    seen: BTreeMap<NodeId, (u64, BTreeSet<u64>)>,
    /// Retransmission interval.
    pub retransmit_after: SimTime,
    /// Give up on a message after this many retransmissions (the peer or
    /// pipe is presumed gone — a crashed JXTA peer). With loss `p` the
    /// residual failure probability is `p^max_attempts`.
    pub max_attempts: u32,
}

impl Reliable {
    /// Creates the layer with the given retransmission interval.
    pub fn new(retransmit_after: SimTime) -> Self {
        Reliable {
            next_seq: 0,
            epoch: 0,
            outstanding: BTreeMap::new(),
            seen: BTreeMap::new(),
            retransmit_after,
            max_attempts: 25,
        }
    }

    /// Sets this node's incarnation (call before any message is sent —
    /// i.e. right after recovering from a store).
    pub fn set_epoch(&mut self, epoch: u64) {
        debug_assert!(self.outstanding.is_empty(), "epoch change with messages in flight");
        self.epoch = epoch;
    }

    /// This node's incarnation, as stamped on its sequenced envelopes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Wraps `body` for `to`: assigns a transport seq and registers the
    /// message for retransmission until acked.
    pub fn wrap(&mut self, to: NodeId, body: Body) -> Envelope {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.outstanding.insert(seq, Outstanding { to, body: body.clone(), attempts: 0 });
        Envelope { seq: Some(seq), epoch: self.epoch, body }
    }

    /// Handles a transport ack; returns `true` if it retired an
    /// outstanding message (duplicate acks return `false`).
    pub fn on_ack(&mut self, seq: u64) -> bool {
        self.outstanding.remove(&seq).is_some()
    }

    /// Receiver-side dedup. Returns `true` when the message should be
    /// processed (first delivery), `false` for duplicates and for stale
    /// envelopes from a previous incarnation of `from`. Unsequenced
    /// envelopes (harness control) are always processed. A grown epoch
    /// resets `from`'s seq set: the node was restarted and its sequence
    /// numbers start over.
    pub fn should_process(&mut self, from: NodeId, epoch: u64, seq: Option<u64>) -> bool {
        match seq {
            None => true,
            Some(s) => {
                let (seen_epoch, seqs) =
                    self.seen.entry(from).or_insert_with(|| (0, BTreeSet::new()));
                if epoch > *seen_epoch {
                    *seen_epoch = epoch;
                    seqs.clear();
                }
                if epoch < *seen_epoch {
                    return false;
                }
                seqs.insert(s)
            }
        }
    }

    /// One retransmission round: bumps attempt counters, drops messages
    /// that exhausted [`Reliable::max_attempts`] (returned separately so
    /// the caller can account for them), and returns what to resend under
    /// the original seqs.
    pub fn retransmission_round(&mut self) -> (Vec<(NodeId, Envelope)>, Vec<Outstanding>) {
        let mut resend = Vec::new();
        let mut abandoned = Vec::new();
        let max = self.max_attempts;
        let epoch = self.epoch;
        self.outstanding.retain(|seq, o| {
            o.attempts += 1;
            if o.attempts > max {
                abandoned.push(o.clone());
                false
            } else {
                resend.push((o.to, Envelope { seq: Some(*seq), epoch, body: o.body.clone() }));
                true
            }
        });
        (resend, abandoned)
    }

    /// All messages currently awaiting acknowledgement, re-wrapped under
    /// their original seqs (inspection; does not bump attempts).
    pub fn pending(&self) -> Vec<(NodeId, Envelope)> {
        self.outstanding
            .iter()
            .map(|(seq, o)| {
                (o.to, Envelope { seq: Some(*seq), epoch: self.epoch, body: o.body.clone() })
            })
            .collect()
    }

    /// True iff any message awaits acknowledgement.
    pub fn has_outstanding(&self) -> bool {
        !self.outstanding.is_empty()
    }

    /// Drops outstanding messages addressed to `node` (it left the
    /// network); returns how many were dropped.
    pub fn forget_peer(&mut self, node: NodeId) -> usize {
        let before = self.outstanding.len();
        self.outstanding.retain(|_, o| o.to != node);
        before - self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body() -> Body {
        Body::StatsRequest
    }

    #[test]
    fn wrap_assigns_increasing_seqs() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        let a = r.wrap(NodeId(1), body());
        let b = r.wrap(NodeId(2), body());
        assert_eq!(a.seq, Some(0));
        assert_eq!(b.seq, Some(1));
        assert!(r.has_outstanding());
    }

    #[test]
    fn ack_retires_exactly_once() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        let e = r.wrap(NodeId(1), body());
        assert!(r.on_ack(e.seq.unwrap()));
        assert!(!r.on_ack(e.seq.unwrap()));
        assert!(!r.has_outstanding());
    }

    #[test]
    fn dedup_is_per_sender() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        assert!(r.should_process(NodeId(1), 0, Some(5)));
        assert!(!r.should_process(NodeId(1), 0, Some(5)));
        assert!(r.should_process(NodeId(2), 0, Some(5)));
        assert!(r.should_process(NodeId(1), 0, None));
        assert!(r.should_process(NodeId(1), 0, None));
    }

    #[test]
    fn grown_epoch_resets_dedup_and_stale_epochs_drop() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        // First incarnation of node 1 sends seqs 0 and 1.
        assert!(r.should_process(NodeId(1), 0, Some(0)));
        assert!(r.should_process(NodeId(1), 0, Some(1)));
        // The node restarts from its store (epoch 1): its restarted seq 0
        // is a fresh message, not a duplicate.
        assert!(r.should_process(NodeId(1), 1, Some(0)));
        assert!(!r.should_process(NodeId(1), 1, Some(0)), "real duplicate still dropped");
        // A straggler from the dead incarnation is stale, not replayed.
        assert!(!r.should_process(NodeId(1), 0, Some(1)));
    }

    #[test]
    fn stale_epoch_ack_must_not_retire_new_incarnation_seq() {
        // The node-level ack handler compares the ack's epoch against
        // Reliable::epoch() before calling on_ack; this pins the pieces
        // that comparison relies on. A restarted node (epoch 1) re-uses
        // seq 0; an ack echoing epoch 0 refers to the dead incarnation's
        // seq 0 and must be distinguishable.
        let mut r = Reliable::new(SimTime::from_millis(10));
        r.set_epoch(1);
        let e = r.wrap(NodeId(2), body());
        assert_eq!((e.seq, e.epoch), (Some(0), 1));
        // The node-level guard: ack epoch != current epoch → ignored.
        assert_ne!(0, r.epoch(), "stale ack epoch must not match");
        assert!(r.has_outstanding(), "seq 0 still awaiting a same-epoch ack");
        assert!(r.on_ack(0), "a same-epoch ack retires it");
    }

    #[test]
    fn epoch_is_stamped_on_envelopes() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        r.set_epoch(7);
        let e = r.wrap(NodeId(1), body());
        assert_eq!(e.epoch, 7);
        let (resend, _) = r.retransmission_round();
        assert_eq!(resend[0].1.epoch, 7);
    }

    #[test]
    fn pending_resends_same_seq() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        let e = r.wrap(NodeId(1), body());
        let p = r.pending();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].0, NodeId(1));
        assert_eq!(p[0].1.seq, e.seq);
        r.on_ack(e.seq.unwrap());
        assert!(r.pending().is_empty());
    }

    #[test]
    fn forget_peer_drops_its_messages() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        r.wrap(NodeId(1), body());
        r.wrap(NodeId(2), body());
        r.wrap(NodeId(1), body());
        assert_eq!(r.forget_peer(NodeId(1)), 2);
        assert_eq!(r.pending().len(), 1);
    }
}
