//! Reliable delivery over lossy pipes.
//!
//! JXTA gives coDB reliable pipes; our simulator optionally drops messages
//! (experiment E12), so the node embeds a small ARQ layer: every protocol
//! message carries a transport sequence number, the receiver answers with a
//! transport [`crate::messages::Body::Ack`], duplicates are suppressed by a
//! per-sender seen-set, and unacknowledged messages are retransmitted on a
//! timer. Rule firings and protocol steps are idempotent (firing-level
//! dedup, Dijkstra–Scholten credits counted once), so retransmission is
//! safe.
//!
//! The per-link reliable-send state (`next_seq`, the outstanding set, the
//! per-sender seen-sets) is deliberately **not** persisted: it is
//! epoch-keyed instead. Every sequenced envelope carries the sender's
//! incarnation epoch (`codb-store`'s `codb.epoch`, bumped per recovery);
//! a receiver seeing a grown epoch resets that sender's seen-set, a
//! receiver seeing a stale epoch drops the envelope, and acks echo the
//! epoch so a dead incarnation's ack cannot retire a live one's seq. The
//! protocol-level counters that *must* survive (update/query/fetch ids)
//! are persisted separately as WAL `Counters` records and additionally
//! `(epoch, seq)`-keyed — see [`crate::ids`] and [`crate::rejoin`].

use crate::ids::NodeId;
use crate::messages::{Body, Envelope};
use codb_net::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// An unacknowledged message.
#[derive(Clone, Debug)]
pub struct Outstanding {
    /// Destination node.
    pub to: NodeId,
    /// The body (resent verbatim under the same seq).
    pub body: Body,
    /// Retransmission attempts so far.
    pub attempts: u32,
    /// Parked behind the rejoin barrier: the destination is presumed
    /// crashed mid-handshake, so this message is held — not retransmitted,
    /// not abandoned — until the peer is heard from again. A late ack can
    /// still retire it.
    pub parked: bool,
}

/// What one retransmission round decided.
#[derive(Debug, Default)]
pub struct RetransmissionRound {
    /// Messages to resend under their original seqs.
    pub resend: Vec<(NodeId, Envelope)>,
    /// Messages dropped after exhausting `max_attempts` (DS credits must
    /// be surrendered by the caller).
    pub abandoned: Vec<Outstanding>,
    /// Peers newly barred this round, with how many outstanding messages
    /// were parked toward each.
    pub barred: Vec<(NodeId, u64)>,
}

/// Per-node reliable-delivery state.
#[derive(Debug)]
pub struct Reliable {
    next_seq: u64,
    /// This node's incarnation, stamped on every sequenced envelope. Set
    /// once at (re)start — bumping it mid-life would strand in-flight
    /// retransmissions as stale.
    epoch: u64,
    outstanding: BTreeMap<u64, Outstanding>,
    /// Peers behind the rejoin barrier: retransmission toward them
    /// exhausted `max_attempts` on a message that must not be abandoned
    /// ([`Body::parks_behind_barrier`]), so the peer is presumed crashed
    /// and every such message parks until the peer is heard from again
    /// ([`Reliable::release_peer`]). Later sends toward a barred peer go
    /// out normally — they double as liveness probes (a silently healed
    /// partition never announces itself with a handshake) — and join the
    /// parked queue only if they exhaust their own budget.
    barred: BTreeSet<NodeId>,
    /// Per-sender duplicate suppression: the sender's highest epoch seen
    /// and the seqs processed within it. A higher epoch (the sender was
    /// restarted from its store) resets the seq set; envelopes from lower
    /// epochs are stale and dropped.
    seen: BTreeMap<NodeId, (u64, BTreeSet<u64>)>,
    /// Retransmission interval.
    pub retransmit_after: SimTime,
    /// Give up on a message after this many retransmissions (the peer or
    /// pipe is presumed gone — a crashed JXTA peer). With loss `p` the
    /// residual failure probability is `p^max_attempts`.
    pub max_attempts: u32,
}

impl Reliable {
    /// Creates the layer with the given retransmission interval.
    pub fn new(retransmit_after: SimTime) -> Self {
        Reliable {
            next_seq: 0,
            epoch: 0,
            outstanding: BTreeMap::new(),
            barred: BTreeSet::new(),
            seen: BTreeMap::new(),
            retransmit_after,
            max_attempts: 25,
        }
    }

    /// Sets this node's incarnation (call before any message is sent —
    /// i.e. right after recovering from a store).
    pub fn set_epoch(&mut self, epoch: u64) {
        debug_assert!(self.outstanding.is_empty(), "epoch change with messages in flight");
        self.epoch = epoch;
    }

    /// This node's incarnation, as stamped on its sequenced envelopes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Wraps `body` for `to`: assigns a transport seq and registers the
    /// message for retransmission until acked.
    pub fn wrap(&mut self, to: NodeId, body: Body) -> Envelope {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.outstanding
            .insert(seq, Outstanding { to, body: body.clone(), attempts: 0, parked: false });
        Envelope { seq: Some(seq), epoch: self.epoch, body }
    }

    /// Handles a transport ack; returns `true` if it retired an
    /// outstanding message (duplicate acks return `false`).
    pub fn on_ack(&mut self, seq: u64) -> bool {
        self.outstanding.remove(&seq).is_some()
    }

    /// Receiver-side dedup. Returns `true` when the message should be
    /// processed (first delivery), `false` for duplicates and for stale
    /// envelopes from a previous incarnation of `from`. Unsequenced
    /// envelopes (harness control) are always processed. A grown epoch
    /// resets `from`'s seq set: the node was restarted and its sequence
    /// numbers start over.
    pub fn should_process(&mut self, from: NodeId, epoch: u64, seq: Option<u64>) -> bool {
        match seq {
            None => true,
            Some(s) => {
                let (seen_epoch, seqs) =
                    self.seen.entry(from).or_insert_with(|| (0, BTreeSet::new()));
                if epoch > *seen_epoch {
                    *seen_epoch = epoch;
                    seqs.clear();
                }
                if epoch < *seen_epoch {
                    return false;
                }
                seqs.insert(s)
            }
        }
    }

    /// One retransmission round: bumps attempt counters and decides, per
    /// message that exhausted [`Reliable::max_attempts`], between the two
    /// give-up semantics. Ordinary traffic is abandoned (returned so the
    /// caller can surrender DS credits). Traffic that must survive a
    /// crashed peer's handshake ([`Body::parks_behind_barrier`]) instead
    /// *bars* the peer: it and every other barrier-eligible message toward
    /// that peer park until [`Reliable::release_peer`]. Parked messages
    /// are skipped entirely — no attempts, no resend.
    pub fn retransmission_round(&mut self) -> RetransmissionRound {
        let mut round = RetransmissionRound::default();
        let mut newly_barred: BTreeSet<NodeId> = BTreeSet::new();
        let max = self.max_attempts;
        self.outstanding.retain(|_, o| {
            if o.parked {
                return true;
            }
            o.attempts += 1;
            if o.attempts > max {
                if o.body.parks_behind_barrier() {
                    newly_barred.insert(o.to);
                    true // parked below, once the peer is barred
                } else {
                    round.abandoned.push(o.clone());
                    false
                }
            } else {
                true
            }
        });
        for peer in newly_barred {
            self.barred.insert(peer);
            let mut parked = 0u64;
            for o in self.outstanding.values_mut() {
                if o.to == peer && !o.parked && o.body.parks_behind_barrier() {
                    o.parked = true;
                    parked += 1;
                }
            }
            round.barred.push((peer, parked));
        }
        let epoch = self.epoch;
        round.resend = self
            .outstanding
            .iter()
            .filter(|(_, o)| !o.parked)
            .map(|(seq, o)| (o.to, Envelope { seq: Some(*seq), epoch, body: o.body.clone() }))
            .collect();
        round
    }

    /// True iff `peer` is behind the rejoin barrier.
    pub fn is_barred(&self, peer: NodeId) -> bool {
        self.barred.contains(&peer)
    }

    /// Messages currently parked toward `peer`.
    pub fn parked_toward(&self, peer: NodeId) -> usize {
        self.outstanding.values().filter(|o| o.parked && o.to == peer).count()
    }

    /// Lifts the barrier toward `peer` (it has been heard from again):
    /// returns every parked message, in seq order under the original seqs,
    /// with attempt counters reset so delivery gets a full retransmission
    /// budget. Returns an empty vec when the peer was not barred.
    pub fn release_peer(&mut self, peer: NodeId) -> Vec<(NodeId, Envelope)> {
        if !self.barred.remove(&peer) {
            return Vec::new();
        }
        let epoch = self.epoch;
        self.outstanding
            .iter_mut()
            .filter(|(_, o)| o.parked && o.to == peer)
            .map(|(seq, o)| {
                o.parked = false;
                o.attempts = 0;
                (o.to, Envelope { seq: Some(*seq), epoch, body: o.body.clone() })
            })
            .collect()
    }

    /// All messages currently awaiting acknowledgement, re-wrapped under
    /// their original seqs (inspection; does not bump attempts).
    pub fn pending(&self) -> Vec<(NodeId, Envelope)> {
        self.outstanding
            .iter()
            .map(|(seq, o)| {
                (o.to, Envelope { seq: Some(*seq), epoch: self.epoch, body: o.body.clone() })
            })
            .collect()
    }

    /// True iff any message awaits acknowledgement (parked or not).
    pub fn has_outstanding(&self) -> bool {
        !self.outstanding.is_empty()
    }

    /// True iff any *unparked* message awaits acknowledgement — the
    /// retransmit timer's arming condition. Parked messages must not keep
    /// the timer alive: they wait for the peer's next incarnation, not for
    /// the clock, and an idle network with only parked traffic must be
    /// able to quiesce.
    pub fn has_retransmittable(&self) -> bool {
        self.outstanding.values().any(|o| !o.parked)
    }

    /// Drops outstanding messages addressed to `node` (it left the
    /// network permanently — reconfiguration, not a crash) and lifts any
    /// barrier toward it; returns how many messages were dropped.
    pub fn forget_peer(&mut self, node: NodeId) -> usize {
        let before = self.outstanding.len();
        self.outstanding.retain(|_, o| o.to != node);
        self.barred.remove(&node);
        before - self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body() -> Body {
        Body::StatsRequest
    }

    #[test]
    fn wrap_assigns_increasing_seqs() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        let a = r.wrap(NodeId(1), body());
        let b = r.wrap(NodeId(2), body());
        assert_eq!(a.seq, Some(0));
        assert_eq!(b.seq, Some(1));
        assert!(r.has_outstanding());
    }

    #[test]
    fn ack_retires_exactly_once() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        let e = r.wrap(NodeId(1), body());
        assert!(r.on_ack(e.seq.unwrap()));
        assert!(!r.on_ack(e.seq.unwrap()));
        assert!(!r.has_outstanding());
    }

    #[test]
    fn dedup_is_per_sender() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        assert!(r.should_process(NodeId(1), 0, Some(5)));
        assert!(!r.should_process(NodeId(1), 0, Some(5)));
        assert!(r.should_process(NodeId(2), 0, Some(5)));
        assert!(r.should_process(NodeId(1), 0, None));
        assert!(r.should_process(NodeId(1), 0, None));
    }

    #[test]
    fn grown_epoch_resets_dedup_and_stale_epochs_drop() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        // First incarnation of node 1 sends seqs 0 and 1.
        assert!(r.should_process(NodeId(1), 0, Some(0)));
        assert!(r.should_process(NodeId(1), 0, Some(1)));
        // The node restarts from its store (epoch 1): its restarted seq 0
        // is a fresh message, not a duplicate.
        assert!(r.should_process(NodeId(1), 1, Some(0)));
        assert!(!r.should_process(NodeId(1), 1, Some(0)), "real duplicate still dropped");
        // A straggler from the dead incarnation is stale, not replayed.
        assert!(!r.should_process(NodeId(1), 0, Some(1)));
    }

    #[test]
    fn stale_epoch_ack_must_not_retire_new_incarnation_seq() {
        // The node-level ack handler compares the ack's epoch against
        // Reliable::epoch() before calling on_ack; this pins the pieces
        // that comparison relies on. A restarted node (epoch 1) re-uses
        // seq 0; an ack echoing epoch 0 refers to the dead incarnation's
        // seq 0 and must be distinguishable.
        let mut r = Reliable::new(SimTime::from_millis(10));
        r.set_epoch(1);
        let e = r.wrap(NodeId(2), body());
        assert_eq!((e.seq, e.epoch), (Some(0), 1));
        // The node-level guard: ack epoch != current epoch → ignored.
        assert_ne!(0, r.epoch(), "stale ack epoch must not match");
        assert!(r.has_outstanding(), "seq 0 still awaiting a same-epoch ack");
        assert!(r.on_ack(0), "a same-epoch ack retires it");
    }

    #[test]
    fn epoch_is_stamped_on_envelopes() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        r.set_epoch(7);
        let e = r.wrap(NodeId(1), body());
        assert_eq!(e.epoch, 7);
        let round = r.retransmission_round();
        assert_eq!(round.resend[0].1.epoch, 7);
    }

    #[test]
    fn pending_resends_same_seq() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        let e = r.wrap(NodeId(1), body());
        let p = r.pending();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].0, NodeId(1));
        assert_eq!(p[0].1.seq, e.seq);
        r.on_ack(e.seq.unwrap());
        assert!(r.pending().is_empty());
    }

    #[test]
    fn forget_peer_drops_its_messages() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        r.wrap(NodeId(1), body());
        r.wrap(NodeId(2), body());
        r.wrap(NodeId(1), body());
        assert_eq!(r.forget_peer(NodeId(1)), 2);
        assert_eq!(r.pending().len(), 1);
    }

    /// Drives `r` through enough rounds to exhaust `max_attempts`,
    /// returning the final round (the one where give-up decisions fall).
    fn exhaust(r: &mut Reliable) -> RetransmissionRound {
        for _ in 0..r.max_attempts {
            r.retransmission_round();
        }
        r.retransmission_round()
    }

    #[test]
    fn exhausted_rejoin_parks_instead_of_abandoning() {
        // Window (b) of the rejoin barrier: a handshake envelope toward a
        // still-dead peer must never be abandoned — back-to-back restarts
        // would strand the handshake forever.
        let mut r = Reliable::new(SimTime::from_millis(10));
        let e = r.wrap(NodeId(1), Body::Rejoin { epoch: 3 });
        let round = exhaust(&mut r);
        assert!(round.abandoned.is_empty(), "handshake traffic must not be abandoned");
        assert_eq!(round.barred, vec![(NodeId(1), 1)]);
        assert!(r.is_barred(NodeId(1)));
        assert_eq!(r.parked_toward(NodeId(1)), 1);
        // Parked: the message survives, but no longer retransmits and no
        // longer arms the timer — a sim with only parked traffic quiesces.
        assert!(r.has_outstanding());
        assert!(!r.has_retransmittable());
        assert!(r.retransmission_round().resend.is_empty());
        // The peer comes back: the envelope flows again under its original
        // seq with a full retransmission budget.
        let released = r.release_peer(NodeId(1));
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].1.seq, e.seq);
        assert!(!r.is_barred(NodeId(1)));
        assert!(r.has_retransmittable());
        // A late ack still retires it.
        assert!(r.on_ack(e.seq.unwrap()));
    }

    #[test]
    fn exhausted_ordinary_traffic_still_abandons() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        r.wrap(NodeId(1), Body::StatsRequest);
        let round = exhaust(&mut r);
        assert_eq!(round.abandoned.len(), 1);
        assert!(round.barred.is_empty());
        assert!(!r.is_barred(NodeId(1)));
        assert!(!r.has_outstanding());
    }

    #[test]
    fn barring_parks_all_eligible_toward_that_peer_only() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        let a = r.wrap(NodeId(1), Body::Rejoin { epoch: 1 });
        r.wrap(NodeId(1), Body::StatsRequest); // ordinary: still abandons
        let b = r.wrap(NodeId(1), Body::RejoinAck { epoch: 1 });
        r.wrap(NodeId(2), Body::StatsRequest); // other peer: untouched
        let round = exhaust(&mut r);
        assert_eq!(round.barred, vec![(NodeId(1), 2)]);
        assert_eq!(round.abandoned.len(), 2, "stats toward both peers abandoned");
        assert!(r.is_barred(NodeId(1)));
        assert!(!r.is_barred(NodeId(2)));
        // Release re-sends in seq order under the original seqs.
        let released = r.release_peer(NodeId(1));
        let seqs: Vec<_> = released.iter().map(|(_, e)| e.seq).collect();
        assert_eq!(seqs, vec![a.seq, b.seq]);
    }

    #[test]
    fn late_traffic_toward_a_barred_peer_probes_then_joins_the_queue() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        let first = r.wrap(NodeId(1), Body::Rejoin { epoch: 1 });
        exhaust(&mut r);
        assert!(r.is_barred(NodeId(1)));
        // New traffic toward the barred peer is still sent — it doubles as
        // a liveness probe (a healed partition never sends a handshake, so
        // holding everything would deadlock) — and gets a full
        // retransmission budget of its own.
        let late = r.wrap(NodeId(1), Body::RejoinAck { epoch: 1 });
        assert_eq!(r.parked_toward(NodeId(1)), 1);
        assert!(r.has_retransmittable());
        // If the peer really is still gone, the probe exhausts too and
        // joins the parked queue behind the earlier message.
        let round = exhaust(&mut r);
        assert_eq!(round.barred, vec![(NodeId(1), 1)], "already-barred peer, one more parked");
        assert_eq!(r.parked_toward(NodeId(1)), 2);
        assert!(!r.has_retransmittable());
        let released = r.release_peer(NodeId(1));
        let seqs: Vec<_> = released.iter().map(|(_, e)| e.seq).collect();
        assert_eq!(seqs, vec![first.seq, late.seq]);
    }

    #[test]
    fn releasing_an_unbarred_peer_is_a_noop() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        r.wrap(NodeId(1), body());
        assert!(r.release_peer(NodeId(1)).is_empty());
        assert!(r.has_retransmittable(), "unparked traffic untouched");
    }

    #[test]
    fn forget_peer_lifts_the_barrier() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        r.wrap(NodeId(1), Body::Rejoin { epoch: 1 });
        exhaust(&mut r);
        assert!(r.is_barred(NodeId(1)));
        assert_eq!(r.forget_peer(NodeId(1)), 1);
        assert!(!r.is_barred(NodeId(1)));
    }
}
