//! Reliable delivery over lossy pipes.
//!
//! JXTA gives coDB reliable pipes; our simulator optionally drops messages
//! (experiment E12), so the node embeds a small ARQ layer: every protocol
//! message carries a transport sequence number, the receiver answers with a
//! transport [`crate::messages::Body::Ack`], duplicates are suppressed by a
//! per-sender seen-set, and unacknowledged messages are retransmitted on a
//! timer. Rule firings and protocol steps are idempotent (firing-level
//! dedup, Dijkstra–Scholten credits counted once), so retransmission is
//! safe.

use crate::ids::NodeId;
use crate::messages::{Body, Envelope};
use codb_net::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// An unacknowledged message.
#[derive(Clone, Debug)]
pub struct Outstanding {
    /// Destination node.
    pub to: NodeId,
    /// The body (resent verbatim under the same seq).
    pub body: Body,
    /// Retransmission attempts so far.
    pub attempts: u32,
}

/// Per-node reliable-delivery state.
#[derive(Debug)]
pub struct Reliable {
    next_seq: u64,
    outstanding: BTreeMap<u64, Outstanding>,
    seen: BTreeMap<NodeId, BTreeSet<u64>>,
    /// Retransmission interval.
    pub retransmit_after: SimTime,
    /// Give up on a message after this many retransmissions (the peer or
    /// pipe is presumed gone — a crashed JXTA peer). With loss `p` the
    /// residual failure probability is `p^max_attempts`.
    pub max_attempts: u32,
}

impl Reliable {
    /// Creates the layer with the given retransmission interval.
    pub fn new(retransmit_after: SimTime) -> Self {
        Reliable {
            next_seq: 0,
            outstanding: BTreeMap::new(),
            seen: BTreeMap::new(),
            retransmit_after,
            max_attempts: 25,
        }
    }

    /// Wraps `body` for `to`: assigns a transport seq and registers the
    /// message for retransmission until acked.
    pub fn wrap(&mut self, to: NodeId, body: Body) -> Envelope {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.outstanding.insert(seq, Outstanding { to, body: body.clone(), attempts: 0 });
        Envelope { seq: Some(seq), body }
    }

    /// Handles a transport ack; returns `true` if it retired an
    /// outstanding message (duplicate acks return `false`).
    pub fn on_ack(&mut self, seq: u64) -> bool {
        self.outstanding.remove(&seq).is_some()
    }

    /// Receiver-side dedup. Returns `true` when the message should be
    /// processed (first delivery), `false` for duplicates. Unsequenced
    /// envelopes (harness control) are always processed.
    pub fn should_process(&mut self, from: NodeId, seq: Option<u64>) -> bool {
        match seq {
            None => true,
            Some(s) => self.seen.entry(from).or_default().insert(s),
        }
    }

    /// One retransmission round: bumps attempt counters, drops messages
    /// that exhausted [`Reliable::max_attempts`] (returned separately so
    /// the caller can account for them), and returns what to resend under
    /// the original seqs.
    pub fn retransmission_round(&mut self) -> (Vec<(NodeId, Envelope)>, Vec<Outstanding>) {
        let mut resend = Vec::new();
        let mut abandoned = Vec::new();
        let max = self.max_attempts;
        self.outstanding.retain(|seq, o| {
            o.attempts += 1;
            if o.attempts > max {
                abandoned.push(o.clone());
                false
            } else {
                resend.push((o.to, Envelope { seq: Some(*seq), body: o.body.clone() }));
                true
            }
        });
        (resend, abandoned)
    }

    /// All messages currently awaiting acknowledgement, re-wrapped under
    /// their original seqs (inspection; does not bump attempts).
    pub fn pending(&self) -> Vec<(NodeId, Envelope)> {
        self.outstanding
            .iter()
            .map(|(seq, o)| (o.to, Envelope { seq: Some(*seq), body: o.body.clone() }))
            .collect()
    }

    /// True iff any message awaits acknowledgement.
    pub fn has_outstanding(&self) -> bool {
        !self.outstanding.is_empty()
    }

    /// Drops outstanding messages addressed to `node` (it left the
    /// network); returns how many were dropped.
    pub fn forget_peer(&mut self, node: NodeId) -> usize {
        let before = self.outstanding.len();
        self.outstanding.retain(|_, o| o.to != node);
        before - self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body() -> Body {
        Body::StatsRequest
    }

    #[test]
    fn wrap_assigns_increasing_seqs() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        let a = r.wrap(NodeId(1), body());
        let b = r.wrap(NodeId(2), body());
        assert_eq!(a.seq, Some(0));
        assert_eq!(b.seq, Some(1));
        assert!(r.has_outstanding());
    }

    #[test]
    fn ack_retires_exactly_once() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        let e = r.wrap(NodeId(1), body());
        assert!(r.on_ack(e.seq.unwrap()));
        assert!(!r.on_ack(e.seq.unwrap()));
        assert!(!r.has_outstanding());
    }

    #[test]
    fn dedup_is_per_sender() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        assert!(r.should_process(NodeId(1), Some(5)));
        assert!(!r.should_process(NodeId(1), Some(5)));
        assert!(r.should_process(NodeId(2), Some(5)));
        assert!(r.should_process(NodeId(1), None));
        assert!(r.should_process(NodeId(1), None));
    }

    #[test]
    fn pending_resends_same_seq() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        let e = r.wrap(NodeId(1), body());
        let p = r.pending();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].0, NodeId(1));
        assert_eq!(p[0].1.seq, e.seq);
        r.on_ack(e.seq.unwrap());
        assert!(r.pending().is_empty());
    }

    #[test]
    fn forget_peer_drops_its_messages() {
        let mut r = Reliable::new(SimTime::from_millis(10));
        r.wrap(NodeId(1), body());
        r.wrap(NodeId(2), body());
        r.wrap(NodeId(1), body());
        assert_eq!(r.forget_peer(NodeId(1)), 2);
        assert_eq!(r.pending().len(), 1);
    }
}
