//! The production network on the sharded threaded runtime.
//!
//! [`ParallelCoDbNet`] is the threaded sibling of [`CoDbNetwork`]: the same
//! [`CoDbNode`] state machines, built from the same [`NetworkConfig`], but
//! scheduled by [`codb_net::ParallelNet`] — N worker threads multiplexing
//! the node population over bounded mailboxes — instead of the
//! discrete-event simulator. Nothing in the node is runtime-specific
//! (`Peer<Envelope>` is the whole contract), so a scenario can be validated
//! under the simulator and then driven at wall-clock speed here, or vice
//! versa, and the fixpoints must agree (pinned by the `system` tests).
//!
//! Ingest flows through the message plane: [`ParallelCoDbNet::ingest`]
//! injects [`Body::IngestLocal`] from [`HARNESS_PEER`] rather than touching
//! the node directly, because under this runtime the workers own the node
//! state — there is no `&mut` access from the harness thread while the
//! pool is live. The same body works under the simulator, which keeps
//! workload drivers runtime-agnostic.
//!
//! Durability mirrors [`CoDbNetwork`]: persistence is opened *before* the
//! node is handed to the pool, and under
//! [`codb_store::SyncPolicy::GroupCommit`] every store joins **one** shared
//! [`codb_store::FsyncScheduler`] so the whole single-host deployment
//! batches its WAL fsyncs through a single host-wide policy.

use crate::config::{ConfigError, NetworkConfig};
use crate::ids::NodeId;
use crate::messages::{Body, Envelope};
use crate::network::{CoDbNetwork, HARNESS_PEER};
use crate::node::{CoDbNode, NodeSettings};
use codb_net::{ParallelNet, RuntimeConfig};
use std::collections::BTreeMap;
use std::time::Duration;

/// Errors from building a [`ParallelCoDbNet`].
#[derive(Debug)]
pub enum ParNetError {
    /// The [`NetworkConfig`] failed validation.
    Config(ConfigError),
    /// Opening a node's persistent store failed.
    Store(codb_store::StoreError),
}

impl std::fmt::Display for ParNetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParNetError::Config(e) => write!(f, "invalid network config: {e}"),
            ParNetError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for ParNetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParNetError::Config(e) => Some(e),
            ParNetError::Store(e) => Some(e),
        }
    }
}

impl From<ConfigError> for ParNetError {
    fn from(e: ConfigError) -> Self {
        ParNetError::Config(e)
    }
}

impl From<codb_store::StoreError> for ParNetError {
    fn from(e: codb_store::StoreError) -> Self {
        ParNetError::Store(e)
    }
}

/// Per-node recovery outcome from [`ParallelCoDbNet::build_persistent`],
/// in configuration order: `Some(stats)` = recovered from disk, `None` =
/// fresh store.
pub type RecoveryOutcomes = Vec<(NodeId, Option<codb_store::RecoveryStats>)>;

/// A coDB network running on the sharded worker pool: the threaded
/// counterpart of [`CoDbNetwork`]. See the [module docs](self) for how the
/// two relate.
pub struct ParallelCoDbNet {
    net: ParallelNet<Envelope, CoDbNode>,
    config: NetworkConfig,
    fsync_sched: Option<codb_store::FsyncScheduler>,
}

impl ParallelCoDbNet {
    /// Builds the network with default node settings. Every configured
    /// node is registered before any `on_start` runs (batch registration),
    /// so start-time traffic cannot race peer registration order.
    pub fn build(config: NetworkConfig, rt: RuntimeConfig) -> Result<Self, ParNetError> {
        Self::build_with(config, rt, NodeSettings::default())
    }

    /// [`ParallelCoDbNet::build`] with explicit [`NodeSettings`].
    pub fn build_with(
        config: NetworkConfig,
        rt: RuntimeConfig,
        settings: NodeSettings,
    ) -> Result<Self, ParNetError> {
        config.validate()?;
        let mut net = ParallelNet::with_config(rt);
        let nodes = config.nodes.iter().map(|nc| {
            let node = CoDbNode::new(
                nc.id,
                &nc.name,
                nc.schema.clone(),
                nc.data.clone(),
                &config.rules,
                settings.clone(),
            );
            (nc.id.peer(), node)
        });
        net.add_peers(nodes.collect::<Vec<_>>());
        let parnet = ParallelCoDbNet { net, config, fsync_sched: None };
        // Let start events (pipe opens, adverts) settle, mirroring the
        // simulator builder's run_until_quiescent.
        parnet.await_quiescence(Duration::from_millis(20), Duration::from_secs(30));
        Ok(parnet)
    }

    /// Builds the network with persistence opened for every node under
    /// `root/<node-name>` *before* the node joins the pool: existing
    /// on-disk state is recovered (the node then announces rejoin from
    /// `on_start` — safe because registration is batched), fresh state is
    /// initialised from the configured seed data.
    ///
    /// Returns the per-node recovery stats in configuration order
    /// (`Some` = recovered from disk, `None` = fresh store). Under
    /// [`codb_store::SyncPolicy::GroupCommit`] all stores share one
    /// [`codb_store::FsyncScheduler`], reachable via
    /// [`ParallelCoDbNet::fsync_scheduler`].
    pub fn build_persistent(
        config: NetworkConfig,
        rt: RuntimeConfig,
        settings: NodeSettings,
        root: &std::path::Path,
        policy: codb_store::SyncPolicy,
        codec: codb_store::Codec,
    ) -> Result<(Self, RecoveryOutcomes), ParNetError> {
        config.validate()?;
        let sched = codb_store::FsyncScheduler::for_policy(policy);
        let mut net = ParallelNet::with_config(rt);
        let mut recovered = Vec::with_capacity(config.nodes.len());
        let mut nodes = Vec::with_capacity(config.nodes.len());
        for nc in &config.nodes {
            let mut node = CoDbNode::new(
                nc.id,
                &nc.name,
                nc.schema.clone(),
                nc.data.clone(),
                &config.rules,
                settings.clone(),
            );
            let dir = CoDbNetwork::node_data_dir(root, &nc.name);
            let stats = node.open_persistence_with(&dir, policy, codec, sched.as_ref())?;
            recovered.push((nc.id, stats));
            nodes.push((nc.id.peer(), node));
        }
        net.add_peers(nodes);
        let parnet = ParallelCoDbNet { net, config, fsync_sched: sched };
        parnet.await_quiescence(Duration::from_millis(20), Duration::from_secs(30));
        Ok((parnet, recovered))
    }

    /// The network configuration this net was built from.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.net.worker_count()
    }

    /// Injects a harness control message to `to` (from [`HARNESS_PEER`]).
    /// Blocks under backpressure if the target's mailbox is full.
    pub fn control(&self, to: NodeId, body: Body) {
        self.net.inject(HARNESS_PEER, to.peer(), Envelope::control(body));
    }

    /// Ingests one tuple at `node` through the message plane
    /// ([`Body::IngestLocal`]): the insert is applied, WAL-logged when
    /// persistent, and becomes visible to the next update round. A
    /// schema-rejected tuple is counted in the node's report
    /// (`ingest_rejected`), not panicked on.
    pub fn ingest(&self, node: NodeId, relation: &str, tuple: codb_relational::Tuple) {
        self.control(node, Body::IngestLocal { relation: relation.to_string(), tuple });
    }

    /// Triggers an update round originating at `origin`. Use
    /// [`ParallelCoDbNet::await_quiescence`] to wait for the fixpoint.
    pub fn start_update(&self, origin: NodeId) {
        self.control(origin, Body::StartUpdate);
    }

    /// Blocks until the network has been idle (zero in-flight work) for a
    /// full `settle` window, or `deadline` elapses. Returns `true` on
    /// quiescence.
    pub fn await_quiescence(&self, settle: Duration, deadline: Duration) -> bool {
        self.net.await_quiescence(settle, deadline)
    }

    /// Total messages delivered to nodes since construction.
    pub fn delivered(&self) -> u64 {
        self.net.delivered()
    }

    /// Messages that could not be delivered (no pipe / unknown or retired
    /// peer). A healthy steady-state network reports zero.
    pub fn undeliverable(&self) -> u64 {
        self.net.undeliverable()
    }

    /// The deepest any node's mailbox has been — bounded by the
    /// configured [`RuntimeConfig::mailbox_depth`].
    pub fn max_mailbox_depth(&self) -> usize {
        self.net.max_mailbox_depth()
    }

    /// The shared group-commit fsync scheduler, if built via
    /// [`ParallelCoDbNet::build_persistent`] under
    /// [`codb_store::SyncPolicy::GroupCommit`].
    pub fn fsync_scheduler(&self) -> Option<&codb_store::FsyncScheduler> {
        self.fsync_sched.as_ref()
    }

    /// Stops the pool and returns every node's final state, keyed by
    /// [`NodeId`]. Outstanding mail is **not** drained — call
    /// [`ParallelCoDbNet::await_quiescence`] first for a graceful stop;
    /// skipping it models a host crash (exactly what the durability
    /// harness wants: only fsynced WAL survives).
    pub fn shutdown(self) -> BTreeMap<NodeId, CoDbNode> {
        self.net.shutdown().into_iter().map(|(pid, node)| (NodeId::from(pid), node)).collect()
    }
}
