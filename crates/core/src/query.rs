//! Query-time distributed answering (paper §1, §3).
//!
//! "When \[a\] node gets a query request, it answers it using local data
//! immediately, and it forwards it through all outgoing links. Each query
//! request is labelled by a sequence of IDs of nodes it passed through. A
//! node does not propagate a query request, if its ID is contained in the
//! label" — a diffusing computation over *simple paths*.
//!
//! Concretely: a user query at node `N` spawns one fetch request per
//! outgoing link whose head feeds a relation the query reads. The source
//! of such a link recursively fetches whatever its own rule body needs
//! (path-labelled, so cycles cut off), evaluates the rule body over its
//! *query-time view* (LDB + fetched data, assembled in a per-request
//! overlay — nothing is materialised permanently), and returns the rule
//! firings in a single `QueryAnswer`. `N` assembles the answers into its
//! own overlay and evaluates the user query there.
//!
//! Query-time answering under cyclic rules is *sound but not complete*
//! w.r.t. the global-update fixpoint (simple paths unroll each cycle at
//! most once) — which is precisely the paper's case for batch updates.

use crate::ids::{NodeId, QueryId, ReqId, RuleName};
use crate::messages::{Body, Envelope};
use crate::node::CoDbNode;
use codb_net::{Context, SimTime};
use codb_relational::{ConjunctiveQuery, Instance, RuleFiring, Tuple};
use std::collections::BTreeSet;

/// A finished query, as handed to the user.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The query id.
    pub query: QueryId,
    /// All answers (may contain marked nulls from existential rules).
    pub answers: Vec<Tuple>,
    /// Answers with no marked nulls (certain answers).
    pub certain: Vec<Tuple>,
    /// When the answer was assembled.
    pub finished_at: SimTime,
    /// Whether the network was consulted.
    pub fetched: bool,
}

/// State of one user query at its origin node.
#[derive(Debug)]
pub(crate) struct QueryExec {
    pub query: ConjunctiveQuery,
    /// Clones of the relations the query reads + the head relations of the
    /// links fetched; never touches the LDB.
    pub overlay: Instance,
    pub pending: BTreeSet<ReqId>,
}

/// State of one fetch request this node is serving for an acquaintance.
#[derive(Debug)]
pub(crate) struct Serving {
    /// The requester's request id (globally unique).
    pub req: ReqId,
    pub requester: NodeId,
    /// The incoming link being executed.
    pub rule: RuleName,
    pub overlay: Instance,
    pub pending: BTreeSet<ReqId>,
    /// Firings already streamed to the requester (instalment diffing).
    pub sent: BTreeSet<codb_relational::RuleFiring>,
}

/// Who a nested fetch request was issued for.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ParentRef {
    /// A user query at this node.
    Query(QueryId),
    /// A fetch request this node is serving (key into `serving`).
    Serving(ReqId),
}

impl CoDbNode {
    /// Builds an overlay instance holding clones of `relations` (those that
    /// exist locally; missing ones are skipped — validation happens at rule
    /// level).
    fn overlay_for(&self, relations: &BTreeSet<String>) -> Instance {
        let mut overlay = Instance::new();
        for name in relations {
            if let Some(rel) = self.ldb.get(name) {
                overlay.insert_relation(rel.clone());
            }
        }
        overlay
    }

    /// Outgoing links whose head writes any of `relations`, excluding links
    /// whose source already appears in `path`.
    fn fetchable_links(
        &self,
        relations: &BTreeSet<String>,
        path: &[NodeId],
    ) -> Vec<(RuleName, NodeId)> {
        self.book
            .outgoing
            .iter()
            .filter(|(_, r)| r.rule.head_relations().iter().any(|h| relations.contains(*h)))
            .filter(|(_, r)| !path.contains(&r.source))
            .map(|(name, r)| (name.clone(), r.source))
            .collect()
    }

    /// Relations an overlay needs: the reader's body relations plus the
    /// head relations of every link fetched into it.
    fn overlay_relations(
        &self,
        base: BTreeSet<String>,
        links: &[(RuleName, NodeId)],
    ) -> BTreeSet<String> {
        let mut rels = base;
        for (name, _) in links {
            for h in self.book.outgoing[name].rule.head_relations() {
                rels.insert(h.to_owned());
            }
        }
        rels
    }

    fn next_req(&mut self) -> ReqId {
        let req = ReqId { node: self.id, epoch: self.epoch(), seq: self.next_req_seq };
        self.next_req_seq += 1;
        self.log_counters();
        req
    }

    /// User entry point: run `query` at this node; `fetch` chooses between
    /// query-time network answering and a purely local answer.
    pub(crate) fn start_query(
        &mut self,
        ctx: &mut Context<Envelope>,
        query: ConjunctiveQuery,
        fetch: bool,
    ) {
        let query_id = QueryId { origin: self.id, epoch: self.epoch(), seq: self.next_query_seq };
        self.next_query_seq += 1;
        self.log_counters();
        let now = ctx.now();
        self.report.queries.insert(query_id, crate::stats::QueryReport::new(query_id, now));

        if !fetch {
            let answers = self.local_answer(&query).unwrap_or_default();
            self.finish_query_with(query_id, answers, now, false);
            return;
        }

        let body_rels: BTreeSet<String> =
            query.body.relations().into_iter().map(str::to_owned).collect();
        let links = self.fetchable_links(&body_rels, &[self.id]);
        let overlay_rels = self.overlay_relations(body_rels, &links);
        let overlay = self.overlay_for(&overlay_rels);

        let mut pending = BTreeSet::new();
        for (rule, source) in links {
            let req = self.next_req();
            pending.insert(req);
            self.nested_parent.insert(req, ParentRef::Query(query_id));
            if let Some(rep) = self.report.queries.get_mut(&query_id) {
                rep.requests_sent += 1;
            }
            self.post(ctx, source, Body::QueryRequest { req, rule, path: vec![self.id] });
        }
        let exec = QueryExec { query, overlay, pending };
        if exec.pending.is_empty() {
            let answers =
                codb_relational::answer_query(&exec.query, &exec.overlay).unwrap_or_default();
            self.finish_query_with(query_id, answers, now, true);
        } else {
            self.queries.insert(query_id, exec);
        }
    }

    fn finish_query_with(
        &mut self,
        query_id: QueryId,
        answers: Vec<Tuple>,
        now: SimTime,
        fetched: bool,
    ) {
        if let Some(rep) = self.report.queries.get_mut(&query_id) {
            rep.finished_at = Some(now);
            rep.answers = answers.len() as u64;
        }
        let certain = answers.iter().filter(|t| !t.has_null()).cloned().collect();
        self.completed_queries.insert(
            query_id,
            QueryResult { query: query_id, answers, certain, finished_at: now, fetched },
        );
    }

    /// Serves a fetch request from an acquaintance: recursively assemble
    /// this node's query-time view, then execute the rule body over it.
    pub(crate) fn handle_query_request(
        &mut self,
        ctx: &mut Context<Envelope>,
        from: NodeId,
        req: ReqId,
        rule: RuleName,
        path: Vec<NodeId>,
    ) {
        let Some(link) = self.book.incoming.get(&rule) else {
            // Stale rule: answer empty so the requester can make progress.
            self.post(ctx, from, Body::QueryAnswer { req, firings: vec![], closed: true });
            return;
        };
        let body_rels: BTreeSet<String> =
            link.rule.body_relations().into_iter().map(str::to_owned).collect();
        let mut path = path;
        path.push(self.id);
        let links = self.fetchable_links(&body_rels, &path);
        let overlay_rels = self.overlay_relations(body_rels, &links);
        let overlay = self.overlay_for(&overlay_rels);

        // The paper: "when node gets a query request, it answers it using
        // local data immediately, and it forwards it through all outgoing
        // links" — stream the local instalment now, nested data later.
        let initial = self.book.incoming[&rule].rule.fire(&overlay).expect("schema-validated rule");
        let done = links.is_empty();
        self.post(ctx, from, Body::QueryAnswer { req, firings: initial.clone(), closed: done });
        if done {
            return;
        }

        let mut pending = BTreeSet::new();
        for (nested_rule, source) in links {
            let nested = self.next_req();
            pending.insert(nested);
            self.nested_parent.insert(nested, ParentRef::Serving(req));
            self.post(
                ctx,
                source,
                Body::QueryRequest { req: nested, rule: nested_rule, path: path.clone() },
            );
        }
        self.serving.insert(
            req,
            Serving {
                req,
                requester: from,
                rule,
                overlay,
                pending,
                sent: initial.into_iter().collect(),
            },
        );
    }

    /// Routes an answer instalment to the query or serving context that
    /// requested it.
    pub(crate) fn handle_query_answer(
        &mut self,
        ctx: &mut Context<Envelope>,
        _from: NodeId,
        req: ReqId,
        firings: Vec<RuleFiring>,
        closed: bool,
    ) {
        let Some(&parent) = self.nested_parent.get(&req) else {
            return; // duplicate/stale answer
        };
        if closed {
            self.nested_parent.remove(&req);
        }
        let bytes: usize = firings.iter().map(RuleFiring::size_bytes).sum();
        match parent {
            ParentRef::Query(query_id) => {
                let Some(exec) = self.queries.get_mut(&query_id) else { return };
                codb_relational::apply_firings(&mut exec.overlay, &firings, &mut self.nulls)
                    .expect("firings validated against schema");
                if closed {
                    exec.pending.remove(&req);
                }
                if let Some(rep) = self.report.queries.get_mut(&query_id) {
                    rep.answers_received += 1;
                    rep.bytes_received += bytes as u64;
                    if rep.first_answer_at.is_none() {
                        rep.first_answer_at = Some(ctx.now());
                    }
                }
                if self.queries[&query_id].pending.is_empty() {
                    let exec = self.queries.remove(&query_id).expect("present");
                    let answers = codb_relational::answer_query(&exec.query, &exec.overlay)
                        .unwrap_or_default();
                    self.finish_query_with(query_id, answers, ctx.now(), true);
                }
            }
            ParentRef::Serving(sreq) => {
                let Some(s) = self.serving.get_mut(&sreq) else { return };
                codb_relational::apply_firings(&mut s.overlay, &firings, &mut self.nulls)
                    .expect("firings validated against schema");
                if closed {
                    s.pending.remove(&req);
                }
                // Stream the increment: everything derivable now minus what
                // was already sent.
                let all = self.book.incoming[&s.rule]
                    .rule
                    .fire(&s.overlay)
                    .expect("schema-validated rule");
                let fresh: Vec<RuleFiring> =
                    all.into_iter().filter(|f| s.sent.insert(f.clone())).collect();
                let finished = s.pending.is_empty();
                let requester = s.requester;
                let original_req = s.req;
                if finished {
                    self.serving.remove(&sreq);
                }
                if !fresh.is_empty() || finished {
                    self.post(
                        ctx,
                        requester,
                        Body::QueryAnswer { req: original_req, firings: fresh, closed: finished },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_ref_is_copy_and_debug() {
        let q = ParentRef::Query(QueryId { origin: NodeId(0), epoch: 0, seq: 1 });
        let s = ParentRef::Serving(ReqId { node: NodeId(1), epoch: 0, seq: 2 });
        let _q2 = q;
        assert!(format!("{q:?}").contains("Query"));
        assert!(format!("{s:?}").contains("Serving"));
    }
}
