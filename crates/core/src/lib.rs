//! # codb-core
//!
//! The coDB peer-to-peer database system (VLDB'04 demo, Franconi, Kuper,
//! Lopatenko, Zaihrayeu), reproduced as a Rust library: a network of
//! autonomous databases with heterogeneous schemas, interconnected by GLAV
//! coordination rules (inclusions of conjunctive queries, possibly with
//! existential head variables, possibly cyclic).
//!
//! * [`node::CoDbNode`] — one database peer: LDB + shared schema + the
//!   Database Manager dispatch.
//! * [`update`] — the **global update algorithm**: flooded update requests,
//!   semi-naive delta propagation with per-link sent caches, the paper's
//!   open/closed link-state protocol for progressive closing, and a
//!   Dijkstra–Scholten diffusing-computation backstop that detects global
//!   quiescence in cyclic rule graphs.
//! * [`query`] — **query-time answering** via path-labelled diffusing
//!   fetches over simple paths (sound, not complete under cycles — the
//!   paper's motivation for batch updates).
//! * [`superpeer`] — rule-file broadcast (dynamic topology reconfiguration)
//!   and network-wide statistics collection.
//! * [`network::CoDbNetwork`] — the harness running everything on the
//!   deterministic `codb-net` simulator.
//!
//! ## Quickstart
//!
//! ```
//! use codb_core::{CoDbNetwork, NetworkConfig};
//! use codb_net::SimConfig;
//!
//! let config = NetworkConfig::parse(r#"
//!     node hr
//!     node portal
//!     schema hr: emp(str, int)
//!     schema portal: person(str, int)
//!     data hr: emp("alice", 30). emp("bob", 17).
//!     rule r1 @ hr -> portal: person(N, A) <- emp(N, A), A >= 18.
//! "#).unwrap();
//!
//! let mut net = CoDbNetwork::build(config, SimConfig::default()).unwrap();
//! let portal = net.node_id("portal").unwrap();
//! let outcome = net.run_update(portal);
//! assert_eq!(outcome.summary.tuples_added, 1); // alice is 18+, bob is not
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod ids;
pub mod messages;
pub mod network;
pub mod node;
pub mod parnet;
pub mod query;
pub mod rejoin;
pub mod reliable;
pub mod rules;
pub mod stats;
pub mod superpeer;
pub mod update;

pub use config::{ConfigError, NetworkConfig, NodeConfig};
pub use ids::{NodeId, QueryId, ReqId, RuleName, UpdateId};
pub use messages::{Body, Envelope};
pub use network::{CoDbNetwork, QueryOutcome, UpdateOutcome, HARNESS_PEER};
pub use node::{CoDbNode, NodeSettings};
pub use parnet::{ParNetError, ParallelCoDbNet};
pub use query::QueryResult;
pub use rules::{link_graph_is_cyclic, rule_graph_is_cyclic, CoordinationRule, RuleBook};
pub use stats::{NetworkReport, NodeReport, QueryReport, RuleTraffic, UpdateReport, UpdateSummary};
