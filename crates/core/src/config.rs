//! Network configuration: the super-peer's "coordination rules file".
//!
//! The paper's super-peer "can read coordination rules for all peers from a
//! file and broadcast this file to all peers on the network"; re-broadcast
//! replaces each node's rules and pipes at runtime. [`NetworkConfig`] is
//! that file: node declarations (with shared schemas and optional seed
//! data) plus the coordination rules.
//!
//! Text format — one directive per line, `%` or `#` comments:
//!
//! ```text
//! node n1
//! node n2
//! schema n1: emp(str, int)
//! schema n2: person(str, int)
//! data n1: emp("alice", 30). emp("bob", 17).
//! rule r1 @ n1 -> n2: person(N, A) <- emp(N, A), A >= 18.
//! ```
//!
//! `rule NAME @ SRC -> TGT: HEAD <- BODY.` — the body is over `SRC`'s
//! schema, the head over `TGT`'s.

use crate::ids::NodeId;
use crate::rules::CoordinationRule;
use codb_relational::{parse_facts, parse_rule, DatabaseSchema, RelationSchema, Tuple, ValueType};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Declaration of one node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Node identifier.
    pub id: NodeId,
    /// Human-readable name (unique).
    pub name: String,
    /// The shared Database Schema (DBS). May describe relations with no
    /// local data — the node then acts as a mediator.
    pub schema: DatabaseSchema,
    /// Seed tuples for the Local Database.
    pub data: Vec<(String, Tuple)>,
}

/// A full network configuration.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Node declarations.
    pub nodes: Vec<NodeConfig>,
    /// Coordination rules.
    pub rules: Vec<CoordinationRule>,
    /// Monotone version; super-peer re-broadcasts bump it so nodes can
    /// ignore stale files.
    pub version: u64,
}

/// Configuration errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// Description.
    pub message: String,
    /// 1-based source line (0 when not positional).
    pub line: usize,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "config error at line {}: {}", self.line, self.message)
        } else {
            write!(f, "config error: {}", self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

impl NetworkConfig {
    /// Looks up a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<&NodeConfig> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Looks up a node by id.
    pub fn node(&self, id: NodeId) -> Option<&NodeConfig> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Node ids in declaration order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id).collect()
    }

    /// Rules with `node` as source or target.
    pub fn rules_of(&self, node: NodeId) -> Vec<&CoordinationRule> {
        self.rules.iter().filter(|r| r.source == node || r.target == node).collect()
    }

    /// Rough wire size of the configuration when broadcast.
    pub fn approx_size_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| 64 + n.schema.relations().map(|r| r.name.len() + r.arity() * 8).sum::<usize>())
            .sum();
        let rule_bytes: usize = self.rules.iter().map(|r| 64 + r.rule.to_string().len()).sum();
        node_bytes + rule_bytes
    }

    /// Validates internal consistency:
    /// * rule endpoints are declared nodes;
    /// * body relations exist in the source schema with matching arity;
    /// * head relations exist in the target schema with matching arity;
    /// * rule names are unique;
    /// * seed data fits the declaring node's schema.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |message: String| ConfigError { message, line: 0 };
        let mut names = std::collections::BTreeSet::new();
        for rule in &self.rules {
            if !names.insert(rule.name().to_owned()) {
                return Err(err(format!("duplicate rule name {}", rule.name())));
            }
            let src = self
                .node(rule.source)
                .ok_or_else(|| err(format!("rule {}: unknown source node", rule.name())))?;
            let tgt = self
                .node(rule.target)
                .ok_or_else(|| err(format!("rule {}: unknown target node", rule.name())))?;
            if rule.source == rule.target {
                return Err(err(format!(
                    "rule {}: source and target must differ (intra-node views are \
                     not coordination rules)",
                    rule.name()
                )));
            }
            for atom in &rule.rule.body.atoms {
                let rs = src.schema.get(&atom.relation).ok_or_else(|| {
                    err(format!(
                        "rule {}: body relation {} not in {}'s schema",
                        rule.name(),
                        atom.relation,
                        src.name
                    ))
                })?;
                if rs.arity() != atom.arity() {
                    return Err(err(format!(
                        "rule {}: body atom {} has arity {}, schema says {}",
                        rule.name(),
                        atom.relation,
                        atom.arity(),
                        rs.arity()
                    )));
                }
            }
            for atom in &rule.rule.head {
                let rs = tgt.schema.get(&atom.relation).ok_or_else(|| {
                    err(format!(
                        "rule {}: head relation {} not in {}'s schema",
                        rule.name(),
                        atom.relation,
                        tgt.name
                    ))
                })?;
                if rs.arity() != atom.arity() {
                    return Err(err(format!(
                        "rule {}: head atom {} has arity {}, schema says {}",
                        rule.name(),
                        atom.relation,
                        atom.arity(),
                        rs.arity()
                    )));
                }
            }
        }
        for node in &self.nodes {
            for (rel, tuple) in &node.data {
                let rs = node.schema.get(rel).ok_or_else(|| {
                    err(format!("node {}: data for undeclared relation {}", node.name, rel))
                })?;
                rs.validate(tuple).map_err(|e| err(format!("node {}: {e}", node.name)))?;
            }
        }
        Ok(())
    }

    /// Renders the configuration in the module-level text format, such
    /// that `NetworkConfig::parse(config.to_text())` round-trips.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "version {}", self.version);
        for node in &self.nodes {
            let _ = writeln!(out, "node {}", node.name);
        }
        for node in &self.nodes {
            for rs in node.schema.relations() {
                let types: Vec<&str> = rs
                    .columns
                    .iter()
                    .map(|c| match c.ty {
                        codb_relational::ValueType::Int => "int",
                        codb_relational::ValueType::Str => "str",
                        codb_relational::ValueType::Bool => "bool",
                    })
                    .collect();
                let _ = writeln!(out, "schema {}: {}({})", node.name, rs.name, types.join(", "));
            }
        }
        for node in &self.nodes {
            for (rel, tuple) in &node.data {
                let values: Vec<String> = tuple.values().map(|v| v.to_string()).collect();
                let _ = writeln!(out, "data {}: {}({}).", node.name, rel, values.join(", "));
            }
        }
        for rule in &self.rules {
            let src = self.node(rule.source).map_or("?", |n| n.name.as_str());
            let tgt = self.node(rule.target).map_or("?", |n| n.name.as_str());
            // GlavRule's Display is `rule NAME: HEAD <- BODY`; strip the
            // prefix so the endpoints slot in.
            let rendered = rule.rule.to_string();
            let body =
                rendered.strip_prefix(&format!("rule {}: ", rule.name())).unwrap_or(&rendered);
            let _ = writeln!(out, "rule {} @ {} -> {}: {}.", rule.name(), src, tgt, body);
        }
        out
    }

    /// Parses the text format described at module level.
    pub fn parse(src: &str) -> Result<NetworkConfig, ConfigError> {
        let mut config = NetworkConfig::default();
        let mut ids: BTreeMap<String, NodeId> = BTreeMap::new();
        let err = |line: usize, message: String| ConfigError { message, line };

        for (lineno, raw) in src.lines().enumerate() {
            let lineno = lineno + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("node ") {
                let name = rest.trim().to_owned();
                if name.is_empty() || name.contains(char::is_whitespace) {
                    return Err(err(lineno, format!("bad node name {name:?}")));
                }
                if ids.contains_key(&name) {
                    return Err(err(lineno, format!("duplicate node {name}")));
                }
                let id = NodeId(config.nodes.len() as u64);
                ids.insert(name.clone(), id);
                config.nodes.push(NodeConfig {
                    id,
                    name,
                    schema: DatabaseSchema::new(),
                    data: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix("schema ") {
                let (node_name, decl) =
                    rest.split_once(':').ok_or_else(|| err(lineno, "schema needs ':'".into()))?;
                let node_name = node_name.trim();
                let id = *ids
                    .get(node_name)
                    .ok_or_else(|| err(lineno, format!("unknown node {node_name}")))?;
                let schema = parse_relation_schema(decl.trim()).map_err(|m| err(lineno, m))?;
                config.nodes[id.0 as usize].schema.add(schema);
            } else if let Some(rest) = line.strip_prefix("data ") {
                let (node_name, facts) =
                    rest.split_once(':').ok_or_else(|| err(lineno, "data needs ':'".into()))?;
                let node_name = node_name.trim();
                let id = *ids
                    .get(node_name)
                    .ok_or_else(|| err(lineno, format!("unknown node {node_name}")))?;
                let parsed =
                    parse_facts(facts).map_err(|e| err(lineno, format!("bad facts: {e}")))?;
                config.nodes[id.0 as usize].data.extend(parsed);
            } else if let Some(rest) = line.strip_prefix("rule ") {
                // rule NAME @ SRC -> TGT: RULE_TEXT
                let (header, rule_text) =
                    rest.split_once(':').ok_or_else(|| err(lineno, "rule needs ':'".into()))?;
                let (name, endpoints) = header
                    .split_once('@')
                    .ok_or_else(|| err(lineno, "rule needs '@ src -> tgt'".into()))?;
                let (src_name, tgt_name) = endpoints
                    .split_once("->")
                    .ok_or_else(|| err(lineno, "rule needs 'src -> tgt'".into()))?;
                let name = name.trim().to_owned();
                let src_name = src_name.trim();
                let tgt_name = tgt_name.trim();
                let source = *ids
                    .get(src_name)
                    .ok_or_else(|| err(lineno, format!("unknown node {src_name}")))?;
                let target = *ids
                    .get(tgt_name)
                    .ok_or_else(|| err(lineno, format!("unknown node {tgt_name}")))?;
                let mut rule = parse_rule(rule_text.trim())
                    .map_err(|e| err(lineno, format!("bad rule: {e}")))?;
                rule.name = name;
                config.rules.push(CoordinationRule { rule, source, target });
            } else if let Some(rest) = line.strip_prefix("version ") {
                config.version =
                    rest.trim().parse().map_err(|_| err(lineno, "bad version".into()))?;
            } else {
                return Err(err(lineno, format!("unrecognised directive: {line}")));
            }
        }
        config.validate()?;
        Ok(config)
    }
}

/// Parses `rel(str, int, bool)` into a [`RelationSchema`].
fn parse_relation_schema(decl: &str) -> Result<RelationSchema, String> {
    let decl = decl.trim().trim_end_matches('.');
    let (name, rest) =
        decl.split_once('(').ok_or_else(|| format!("bad relation declaration {decl:?}"))?;
    let inner = rest.strip_suffix(')').ok_or_else(|| format!("missing ')' in {decl:?}"))?;
    let name = name.trim();
    if name.is_empty() {
        return Err("empty relation name".into());
    }
    let mut types = Vec::new();
    if !inner.trim().is_empty() {
        for part in inner.split(',') {
            let ty = match part.trim() {
                "int" => ValueType::Int,
                "str" => ValueType::Str,
                "bool" => ValueType::Bool,
                other => return Err(format!("unknown column type {other:?}")),
            };
            types.push(ty);
        }
    }
    Ok(RelationSchema::with_types(name, &types))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        % a two-node network
        node n1
        node n2
        schema n1: emp(str, int)
        schema n2: person(str, int)
        data n1: emp("alice", 30). emp("bob", 17).
        rule r1 @ n1 -> n2: person(N, A) <- emp(N, A), A >= 18.
    "#;

    #[test]
    fn parses_sample() {
        let c = NetworkConfig::parse(SAMPLE).unwrap();
        assert_eq!(c.nodes.len(), 2);
        assert_eq!(c.rules.len(), 1);
        assert_eq!(c.nodes[0].data.len(), 2);
        assert_eq!(c.rules[0].source, NodeId(0));
        assert_eq!(c.rules[0].target, NodeId(1));
        assert_eq!(c.rules[0].name(), "r1");
        assert!(c.node_by_name("n2").is_some());
        assert_eq!(c.rules_of(NodeId(0)).len(), 1);
    }

    #[test]
    fn rejects_unknown_node_in_rule() {
        let src = "node a\nschema a: t(int)\nrule r @ a -> b: t(X) <- t(X).";
        let e = NetworkConfig::parse(src).unwrap_err();
        assert!(e.message.contains("unknown node b"), "{e}");
    }

    #[test]
    fn rejects_duplicate_nodes_and_rules() {
        assert!(NetworkConfig::parse("node a\nnode a").is_err());
        let src = "node a\nnode b\nschema a: t(int)\nschema b: u(int)\n\
                   rule r @ a -> b: u(X) <- t(X).\nrule r @ a -> b: u(X) <- t(X).";
        let e = NetworkConfig::parse(src).unwrap_err();
        assert!(e.message.contains("duplicate rule"), "{e}");
    }

    #[test]
    fn rejects_schema_mismatches() {
        // body relation missing from source schema
        let src = "node a\nnode b\nschema b: u(int)\nrule r @ a -> b: u(X) <- t(X).";
        assert!(NetworkConfig::parse(src).is_err());
        // head arity mismatch
        let src2 = "node a\nnode b\nschema a: t(int)\nschema b: u(int, int)\n\
                    rule r @ a -> b: u(X) <- t(X).";
        let e = NetworkConfig::parse(src2).unwrap_err();
        assert!(e.message.contains("arity"), "{e}");
    }

    #[test]
    fn rejects_ill_typed_data() {
        let src = "node a\nschema a: t(int)\ndata a: t(\"x\").";
        assert!(NetworkConfig::parse(src).is_err());
    }

    #[test]
    fn reports_line_numbers() {
        let src = "node a\ngarbage here";
        let e = NetworkConfig::parse(src).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn schema_parser_handles_types_and_empty() {
        let s = parse_relation_schema("r(int, str, bool)").unwrap();
        assert_eq!(s.arity(), 3);
        let empty = parse_relation_schema("marker()").unwrap();
        assert_eq!(empty.arity(), 0);
        assert!(parse_relation_schema("r(float)").is_err());
        assert!(parse_relation_schema("nope").is_err());
    }

    #[test]
    fn version_directive() {
        let c = NetworkConfig::parse("version 7\nnode a").unwrap();
        assert_eq!(c.version, 7);
    }

    #[test]
    fn mediator_node_with_schema_but_no_data_is_fine() {
        let src = "node m\nschema m: t(int)";
        let c = NetworkConfig::parse(src).unwrap();
        assert!(c.nodes[0].data.is_empty());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_bad_rule_syntax() {
        let src = "node a\nnode b\nschema a: t(int)\nschema b: u(int)\n\
                   rule r @ a -> b: u(X <- t(X).";
        let e = NetworkConfig::parse(src).unwrap_err();
        assert!(e.message.contains("bad rule"), "{e}");
        assert_eq!(e.line, 5);
    }

    #[test]
    fn rejects_malformed_rule_headers() {
        // Missing ':' between header and rule text.
        let e = NetworkConfig::parse("node a\nrule r @ a -> a t(X) <- t(X)").unwrap_err();
        assert!(e.message.contains("rule needs ':'"), "{e}");
        // Missing '@ src -> tgt'.
        let e = NetworkConfig::parse("node a\nrule r: t(X) <- t(X).").unwrap_err();
        assert!(e.message.contains("'@ src -> tgt'"), "{e}");
        // Missing '->' between endpoints.
        let e = NetworkConfig::parse("node a\nrule r @ a: t(X) <- t(X).").unwrap_err();
        assert!(e.message.contains("'src -> tgt'"), "{e}");
    }

    #[test]
    fn rejects_unknown_nodes_in_schema_and_data() {
        let e = NetworkConfig::parse("schema ghost: t(int)").unwrap_err();
        assert!(e.message.contains("unknown node ghost"), "{e}");
        assert_eq!(e.line, 1);
        let e = NetworkConfig::parse("node a\nschema a: t(int)\ndata ghost: t(1).").unwrap_err();
        assert!(e.message.contains("unknown node ghost"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn rejects_body_arity_mismatch_naming_the_rule() {
        let src = "node a\nnode b\nschema a: t(int, int)\nschema b: u(int)\n\
                   rule r @ a -> b: u(X) <- t(X).";
        let e = NetworkConfig::parse(src).unwrap_err();
        assert!(e.message.contains("arity"), "{e}");
        assert!(e.message.contains("rule r"), "{e}");
    }

    #[test]
    fn rejects_bad_version_and_bad_node_names() {
        let e = NetworkConfig::parse("version six").unwrap_err();
        assert!(e.message.contains("bad version"), "{e}");
        let e = NetworkConfig::parse("node two words").unwrap_err();
        assert!(e.message.contains("bad node name"), "{e}");
    }

    #[test]
    fn approx_size_is_positive_and_monotone() {
        let small = NetworkConfig::parse("node a\nschema a: t(int)").unwrap();
        let big = NetworkConfig::parse(SAMPLE).unwrap();
        assert!(small.approx_size_bytes() > 0);
        assert!(big.approx_size_bytes() > small.approx_size_bytes());
    }
}

#[cfg(test)]
mod to_text_tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let src = r#"
            version 3
            node n1
            node n2
            schema n1: emp(str, int)
            schema n1: flag(bool)
            schema n2: person(str, int)
            data n1: emp("alice", 30). emp("a\"b", -7). flag(true).
            rule r1 @ n1 -> n2: person(N, A) <- emp(N, A), A >= 18.
            rule r2 @ n1 -> n2: person(N, D) <- emp(N, A).
        "#;
        let config = NetworkConfig::parse(src).unwrap();
        let text = config.to_text();
        let back = NetworkConfig::parse(&text).unwrap();
        assert_eq!(back, config, "to_text/parse round trip:\n{text}");
    }

    #[test]
    fn generated_scenarios_round_trip() {
        // Workload-generated configs (constructed programmatically, never
        // parsed) must also survive the text round trip.
        let mut config = NetworkConfig::default();
        config.nodes.push(NodeConfig {
            id: NodeId(0),
            name: "a".into(),
            schema: codb_relational::DatabaseSchema::new().with(
                codb_relational::RelationSchema::with_types(
                    "r",
                    &[codb_relational::ValueType::Int],
                ),
            ),
            data: vec![("r".into(), codb_relational::tup![5])],
        });
        config.nodes.push(NodeConfig {
            id: NodeId(1),
            name: "b".into(),
            schema: codb_relational::DatabaseSchema::new().with(
                codb_relational::RelationSchema::with_types(
                    "s",
                    &[codb_relational::ValueType::Int],
                ),
            ),
            data: vec![],
        });
        config.rules.push(CoordinationRule {
            rule: codb_relational::parse_rule("rule x: s(X) <- r(X), X > 1.").unwrap(),
            source: NodeId(0),
            target: NodeId(1),
        });
        config.validate().unwrap();
        let back = NetworkConfig::parse(&config.to_text()).unwrap();
        assert_eq!(back.rules.len(), 1);
        assert_eq!(back.nodes[0].data.len(), 1);
        assert_eq!(back, config);
    }
}
