//! Super-peer functionality (paper §4).
//!
//! "We provide some peer (called super-peer) with some additional
//! functionalities. In particular, that peer can read coordination rules
//! for all peers from a file and broadcast this file to all peers on the
//! network. Once received this file, each peer looks for relevant
//! coordination rules and creates necessary pipe connections. If a
//! coordination rules file is received when a peer has already set up
//! coordination rules and pipes, then it drops 'old' rules and pipes, and
//! creates new ones, where necessary. Thus, a super-peer can dynamically
//! change the network topology at runtime." The super-peer also collects
//! every node's statistics and aggregates them into the final report.

use crate::config::NetworkConfig;
use crate::ids::NodeId;
use crate::messages::{Body, Envelope};
use crate::node::CoDbNode;
use crate::rules::RuleBook;
use codb_net::Context;
use std::collections::BTreeSet;

impl CoDbNode {
    /// Harness control: broadcast this super-peer's configuration file to
    /// every declared node.
    pub(crate) fn handle_broadcast_rules(&mut self, ctx: &mut Context<Envelope>) {
        let Some(config) = self.superpeer_config.clone() else {
            return; // not a super-peer
        };
        let ids = config.node_ids();
        for id in ids {
            if id != self.id {
                self.post(ctx, id, Body::RulesFile { config: Box::new(config.clone()) });
            }
        }
        // The super-peer applies the file to itself directly (it may also
        // be an ordinary database node).
        self.handle_rules_file(ctx, config);
    }

    /// Applies a received coordination-rules file: replace the rule book,
    /// drop pipes that no longer carry rules, open missing ones, and adopt
    /// any newly declared relations of this node's schema.
    pub(crate) fn handle_rules_file(&mut self, ctx: &mut Context<Envelope>, config: NetworkConfig) {
        if config.version < self.config_version {
            return; // stale broadcast
        }
        self.config_version = config.version;

        let old_acquaintances = self.book.acquaintances(self.id);
        self.book = RuleBook::for_node(self.id, &config.rules);
        // Rule names may be reused with different endpoints after a
        // reconfiguration: drop the per-link firing caches.
        self.sent_cache.clear();
        self.recv_cache.clear();
        let new_acquaintances = self.book.acquaintances(self.id);

        // "If a coordination rules file is received when a peer has already
        // set up coordination rules and pipes, then it drops old rules and
        // pipes, and creates new ones, where necessary."
        for gone in old_acquaintances.difference(&new_acquaintances) {
            ctx.close_pipe(gone.peer());
        }
        for added in new_acquaintances.difference(&old_acquaintances) {
            ctx.open_pipe(added.peer(), self.settings.pipe);
        }

        // Adopt newly declared relations (schema growth only; existing
        // relations and their data are preserved).
        if let Some(me) = config.node(self.id) {
            for rs in me.schema.relations() {
                if self.schema.get(&rs.name).is_none() {
                    self.schema.add(rs.clone());
                    self.ldb.add_relation(rs.clone());
                }
            }
        }
    }

    /// Harness control: ask every declared node for its statistics.
    pub(crate) fn handle_collect_stats(&mut self, ctx: &mut Context<Envelope>) {
        let Some(config) = &self.superpeer_config else { return };
        let ids: BTreeSet<NodeId> = config.node_ids().into_iter().collect();
        // Include the super-peer's own report directly.
        let mut own = self.report.clone();
        own.ldb_tuples = self.ldb.tuple_count() as u64;
        self.collected.ingest(own);
        for id in ids {
            if id != self.id {
                self.post(ctx, id, Body::StatsRequest);
            }
        }
    }

    /// Answers a statistics request with this node's report.
    pub(crate) fn handle_stats_request(&mut self, ctx: &mut Context<Envelope>, from: NodeId) {
        let mut report = self.report.clone();
        report.ldb_tuples = self.ldb.tuple_count() as u64;
        self.post(ctx, from, Body::StatsReport { report: Box::new(report) });
    }
}
