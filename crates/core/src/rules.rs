//! Coordination rules wired to nodes, and the incoming/outgoing link
//! dependency structure the update algorithm operates on.
//!
//! Terminology (paper §3): a rule whose **target** is node `N` is an
//! *outgoing link at `N`* — `N` uses it to import data. The same rule is an
//! *incoming link at its source*. An incoming link `i` **depends on** an
//! outgoing link `o` (equivalently `o` is *relevant for* `i`) "if the head
//! of the outgoing link reference\[s\] a relation, which is referenced by a
//! body subgoal of the incoming link" — both links considered at the same
//! node.

use crate::ids::{NodeId, RuleName};
use codb_relational::GlavRule;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A GLAV rule plus the pair of nodes it bridges: the body is evaluated at
/// `source`, the head is materialised at `target`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoordinationRule {
    /// The schema-level rule.
    pub rule: GlavRule,
    /// Node that evaluates the body and pushes firings.
    pub source: NodeId,
    /// Node that imports the head tuples.
    pub target: NodeId,
}

impl CoordinationRule {
    /// The rule's name (unique per network configuration).
    pub fn name(&self) -> &str {
        &self.rule.name
    }
}

/// The rule book of one node: the rules it participates in, split by role,
/// plus the intra-node dependency relation between them.
#[derive(Clone, Debug, Default)]
pub struct RuleBook {
    /// Rules with this node as target, by name ("outgoing links").
    pub outgoing: BTreeMap<RuleName, CoordinationRule>,
    /// Rules with this node as source, by name ("incoming links").
    pub incoming: BTreeMap<RuleName, CoordinationRule>,
}

impl RuleBook {
    /// Builds the book for `node` from the full rule list.
    pub fn for_node(node: NodeId, rules: &[CoordinationRule]) -> Self {
        let mut book = RuleBook::default();
        for r in rules {
            if r.target == node {
                book.outgoing.insert(r.name().to_owned(), r.clone());
            }
            if r.source == node {
                book.incoming.insert(r.name().to_owned(), r.clone());
            }
        }
        book
    }

    /// All acquaintances: nodes this node shares a rule with (pipe
    /// endpoints, per the paper's topology discovery: "when a node starts,
    /// it creates pipes with those nodes, w.r.t. which it has coordination
    /// rules, or which have coordination rules w.r.t. the given node").
    pub fn acquaintances(&self, myself: NodeId) -> BTreeSet<NodeId> {
        self.outgoing
            .values()
            .map(|r| r.source)
            .chain(self.incoming.values().map(|r| r.target))
            .filter(|n| *n != myself)
            .collect()
    }

    /// Outgoing links *relevant for* incoming link `i`: those whose head
    /// writes a relation read by `i`'s body.
    pub fn relevant_outgoing(&self, incoming: &RuleName) -> BTreeSet<RuleName> {
        let Some(i) = self.incoming.get(incoming) else {
            return BTreeSet::new();
        };
        let body_rels: BTreeSet<&str> = i.rule.body_relations();
        self.outgoing
            .values()
            .filter(|o| o.rule.head_relations().iter().any(|h| body_rels.contains(h)))
            .map(|o| o.name().to_owned())
            .collect()
    }

    /// Incoming links *dependent on* outgoing link `o` — the links to
    /// re-compute when `o` delivers new data.
    pub fn dependent_incoming(&self, outgoing: &RuleName) -> BTreeSet<RuleName> {
        let Some(o) = self.outgoing.get(outgoing) else {
            return BTreeSet::new();
        };
        let head_rels: BTreeSet<&str> = o.rule.head_relations();
        self.incoming
            .values()
            .filter(|i| i.rule.body_relations().iter().any(|b| head_rels.contains(b)))
            .map(|i| i.name().to_owned())
            .collect()
    }

    /// Incoming links whose body reads any of `relations` — used when a
    /// batch of deltas arrives grouped by relation.
    pub fn incoming_reading(&self, relations: &BTreeSet<String>) -> BTreeSet<RuleName> {
        self.incoming
            .values()
            .filter(|i| i.rule.body_relations().iter().any(|b| relations.contains(*b)))
            .map(|i| i.name().to_owned())
            .collect()
    }

    /// True iff this node has no rules at all (an isolated node).
    pub fn is_empty(&self) -> bool {
        self.outgoing.is_empty() && self.incoming.is_empty()
    }
}

/// Link-level dependency graph cyclicity: the *exact* recursion test.
///
/// There is an edge from rule `r` to rule `r2` iff data imported by `r`
/// (at `r.target`) can feed `r2`'s body — i.e. `r2.source == r.target`
/// and `r`'s head writes a relation `r2`'s body reads. A cycle here means
/// the update fixpoint is genuinely recursive (the paper's "fix-point
/// computation may be needed among the nodes").
pub fn link_graph_is_cyclic(rules: &[CoordinationRule]) -> bool {
    let n = rules.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, r) in rules.iter().enumerate() {
        let heads = r.rule.head_relations();
        for (j, r2) in rules.iter().enumerate() {
            if r2.source == r.target && r2.rule.body_relations().iter().any(|b| heads.contains(b)) {
                adj[i].push(j);
            }
        }
    }
    // Colour-marking DFS over rule indexes.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; n];
    for start in 0..n {
        if marks[start] != Mark::White {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        marks[start] = Mark::Grey;
        while let Some((node, idx)) = stack.pop() {
            if idx < adj[node].len() {
                stack.push((node, idx + 1));
                let child = adj[node][idx];
                match marks[child] {
                    Mark::Grey => return true,
                    Mark::White => {
                        marks[child] = Mark::Grey;
                        stack.push((child, 0));
                    }
                    Mark::Black => {}
                }
            } else {
                marks[node] = Mark::Black;
            }
        }
    }
    false
}

/// Node-level dependency graph over an entire rule set — used by workload
/// generators and tests to predict cyclicity.
///
/// There is an edge `target → source` for every rule (data flows source →
/// target; requests flow target → source). A cycle in this graph together
/// with intra-node relevance means the update fixpoint is genuinely
/// recursive. Coarser than [`link_graph_is_cyclic`] (node-level cycles may
/// not be data cycles).
pub fn rule_graph_is_cyclic(rules: &[CoordinationRule]) -> bool {
    let mut adj: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    for r in rules {
        adj.entry(r.target).or_default().insert(r.source);
        adj.entry(r.source).or_default();
    }
    // Iterative DFS cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: BTreeMap<NodeId, Mark> = adj.keys().map(|n| (*n, Mark::White)).collect();
    for &start in adj.keys() {
        if marks[&start] != Mark::White {
            continue;
        }
        // (node, next-child-index)
        let mut stack = vec![(start, 0usize)];
        marks.insert(start, Mark::Grey);
        while let Some((node, idx)) = stack.pop() {
            let children: Vec<NodeId> = adj[&node].iter().copied().collect();
            if idx < children.len() {
                stack.push((node, idx + 1));
                let child = children[idx];
                match marks[&child] {
                    Mark::Grey => return true,
                    Mark::White => {
                        marks.insert(child, Mark::Grey);
                        stack.push((child, 0));
                    }
                    Mark::Black => {}
                }
            } else {
                marks.insert(node, Mark::Black);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use codb_relational::parse_rule;

    fn rule(name: &str, src: u64, tgt: u64, text: &str) -> CoordinationRule {
        let mut r = parse_rule(text).unwrap();
        r.name = name.to_owned();
        CoordinationRule { rule: r, source: NodeId(src), target: NodeId(tgt) }
    }

    #[test]
    fn book_splits_roles() {
        let rules = vec![rule("a", 1, 2, "t(X) <- s(X)"), rule("b", 2, 3, "u(X) <- t(X)")];
        let book = RuleBook::for_node(NodeId(2), &rules);
        assert!(book.outgoing.contains_key("a")); // node 2 imports via a
        assert!(book.incoming.contains_key("b")); // node 2 serves b
        assert_eq!(book.acquaintances(NodeId(2)), [NodeId(1), NodeId(3)].into());
    }

    #[test]
    fn relevance_follows_relations() {
        // At node 2: outgoing "a" writes t; incoming "b" reads t → relevant.
        let rules = vec![
            rule("a", 1, 2, "t(X) <- s(X)"),
            rule("b", 2, 3, "u(X) <- t(X)"),
            rule("c", 2, 3, "w(X) <- v(X)"), // reads v: independent
        ];
        let book = RuleBook::for_node(NodeId(2), &rules);
        assert_eq!(book.relevant_outgoing(&"b".into()), ["a".to_owned()].into());
        assert!(book.relevant_outgoing(&"c".into()).is_empty());
        assert_eq!(book.dependent_incoming(&"a".into()), ["b".to_owned()].into());
    }

    #[test]
    fn incoming_reading_groups_by_relation() {
        let rules = vec![rule("b", 2, 3, "u(X) <- t(X)"), rule("c", 2, 4, "w(X) <- t(X), v(X)")];
        let book = RuleBook::for_node(NodeId(2), &rules);
        let rels: BTreeSet<String> = ["t".to_owned()].into();
        assert_eq!(book.incoming_reading(&rels), ["b".to_owned(), "c".to_owned()].into());
        let rels2: BTreeSet<String> = ["v".to_owned()].into();
        assert_eq!(book.incoming_reading(&rels2), ["c".to_owned()].into());
    }

    #[test]
    fn unknown_links_yield_empty_sets() {
        let book = RuleBook::default();
        assert!(book.relevant_outgoing(&"zz".into()).is_empty());
        assert!(book.dependent_incoming(&"zz".into()).is_empty());
        assert!(book.is_empty());
    }

    #[test]
    fn link_level_cyclicity_is_exact() {
        // Node-level cycle a<->b, but the relations don't feed each other:
        // a sends t-data to b, b sends u-data (from v) to a — no recursion.
        let rules = vec![rule("ab", 1, 2, "t(X) <- s(X)"), rule("ba", 2, 1, "w(X) <- v(X)")];
        assert!(rule_graph_is_cyclic(&rules), "node-level sees a cycle");
        assert!(!link_graph_is_cyclic(&rules), "link-level knows better");
        // Genuinely recursive: b's export reads what a's export wrote.
        let rec = vec![rule("ab", 1, 2, "t(X) <- s(X)"), rule("ba", 2, 1, "s(X) <- t(X)")];
        assert!(link_graph_is_cyclic(&rec));
        // Chain is acyclic at both levels.
        let chain = vec![rule("a", 1, 2, "t(X) <- s(X)"), rule("b", 2, 3, "u(X) <- t(X)")];
        assert!(!link_graph_is_cyclic(&chain));
    }

    #[test]
    fn cyclicity_detection() {
        let chain = vec![rule("a", 1, 2, "t(X) <- s(X)"), rule("b", 2, 3, "u(X) <- t(X)")];
        assert!(!rule_graph_is_cyclic(&chain));
        let ring = vec![rule("a", 1, 2, "t(X) <- s(X)"), rule("b", 2, 1, "s(X) <- t(X)")];
        assert!(rule_graph_is_cyclic(&ring));
        let self_loop = vec![rule("a", 1, 1, "t(X) <- s(X)")];
        assert!(rule_graph_is_cyclic(&self_loop));
    }
}
