//! The per-node statistics module and the super-peer's aggregated report.
//!
//! Paper §4: "each node has an additional statistical module. This module
//! accumulates various information about global updates such as: total
//! execution time of an update, number of query result messages received
//! per coordination rule and the volume of the data in each message,
//! longest update propagation path, and so on. … a super-peer … collects,
//! at any given time, statistical information from all nodes … aggregates
//! them and creates a final statistical report."

use crate::ids::{NodeId, QueryId, RuleName, UpdateId};
use codb_net::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Serializes maps with non-string keys as sequences of pairs so the
/// reports stay JSON-compatible (JSON object keys must be strings).
/// Written against the vendored serde shim's value-tree API.
mod pairs {
    use serde::de::{Deserialize, Error};
    use serde::ser::Serialize;
    use serde::Value;
    use std::collections::BTreeMap;

    pub fn to_value<K, V>(map: &BTreeMap<K, V>) -> Value
    where
        K: Serialize,
        V: Serialize,
    {
        Value::Array(
            map.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }

    pub fn from_value<K, V>(v: &Value) -> Result<BTreeMap<K, V>, Error>
    where
        K: Deserialize + Ord,
        V: Deserialize,
    {
        let pairs: Vec<(K, V)> = Deserialize::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

/// Message/volume counters for one coordination rule (one direction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleTraffic {
    /// Data messages.
    pub messages: u64,
    /// Rule firings carried.
    pub firings: u64,
    /// Payload bytes carried.
    pub bytes: u64,
}

impl RuleTraffic {
    /// Adds one message carrying `firings` firings of `bytes` bytes.
    pub fn record(&mut self, firings: u64, bytes: u64) {
        self.messages += 1;
        self.firings += firings;
        self.bytes += bytes;
    }
}

/// One node's view of one global update — the paper's "global update
/// processing report … includes information about starting and finishing
/// times of an update, volume of data transferred, which acquaintances
/// have been queried and to which nodes query results have been sent".
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UpdateReport {
    /// The update.
    pub update: UpdateId,
    /// When this node first learnt about the update.
    pub started_at: SimTime,
    /// When all of this node's outgoing links closed (node state
    /// "closed"), if reached.
    pub closed_at: Option<SimTime>,
    /// When the node saw the global `UpdateComplete`, if any.
    pub completed_at: Option<SimTime>,
    /// Data received per outgoing link.
    pub received: BTreeMap<RuleName, RuleTraffic>,
    /// Data sent per incoming link.
    pub sent: BTreeMap<RuleName, RuleTraffic>,
    /// Tuples actually added to the LDB by this update.
    pub tuples_added: u64,
    /// Longest update-propagation path observed (hops of the deepest
    /// `UpdateData` received).
    pub longest_path: u64,
    /// `UpdateRequest` messages received (including duplicates).
    pub requests_received: u64,
    /// True when the chase-depth safety valve dropped data (non-weakly-
    /// acyclic rule sets; see DESIGN.md §3).
    pub truncated: bool,
}

impl UpdateReport {
    /// A fresh report for an update first seen at `started_at`.
    pub fn new(update: UpdateId, started_at: SimTime) -> Self {
        UpdateReport {
            update,
            started_at,
            closed_at: None,
            completed_at: None,
            received: BTreeMap::new(),
            sent: BTreeMap::new(),
            tuples_added: 0,
            longest_path: 0,
            requests_received: 0,
            truncated: false,
        }
    }

    /// Node-local duration from start to close (or completion).
    pub fn duration(&self) -> Option<SimTime> {
        self.closed_at.or(self.completed_at).map(|t| t.saturating_sub(self.started_at))
    }
}

/// One node's view of one query execution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QueryReport {
    /// The query.
    pub query: QueryId,
    /// When the user posed it.
    pub started_at: SimTime,
    /// When the answer was assembled.
    pub finished_at: Option<SimTime>,
    /// When the first (streaming) answer instalment arrived.
    pub first_answer_at: Option<SimTime>,
    /// Fetch requests sent.
    pub requests_sent: u64,
    /// Answers received.
    pub answers_received: u64,
    /// Firing payload bytes received.
    pub bytes_received: u64,
    /// Number of answer tuples.
    pub answers: u64,
}

impl QueryReport {
    /// A fresh report.
    pub fn new(query: QueryId, started_at: SimTime) -> Self {
        QueryReport {
            query,
            started_at,
            finished_at: None,
            first_answer_at: None,
            requests_sent: 0,
            answers_received: 0,
            bytes_received: 0,
            answers: 0,
        }
    }

    /// Wall (simulated) time from request to answer.
    pub fn duration(&self) -> Option<SimTime> {
        self.finished_at.map(|t| t.saturating_sub(self.started_at))
    }
}

/// Everything one node's statistics module has accumulated; the payload of
/// a `StatsReport` message.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NodeReport {
    /// Reporting node.
    pub node: NodeId,
    /// Per-update reports.
    #[serde(with = "pairs")]
    pub updates: BTreeMap<UpdateId, UpdateReport>,
    /// Per-query reports (queries posed at this node).
    #[serde(with = "pairs")]
    pub queries: BTreeMap<QueryId, QueryReport>,
    /// All protocol messages sent, by kind.
    pub messages_sent: BTreeMap<String, u64>,
    /// All protocol messages received, by kind.
    pub messages_received: BTreeMap<String, u64>,
    /// Total LDB tuples at report time.
    pub ldb_tuples: u64,
}

impl NodeReport {
    /// Creates an empty report for `node`.
    pub fn new(node: NodeId) -> Self {
        NodeReport { node, ..Default::default() }
    }

    /// Counts a sent message of `kind`.
    pub fn count_sent(&mut self, kind: &'static str) {
        *self.messages_sent.entry(kind.to_owned()).or_default() += 1;
    }

    /// Counts a received message of `kind`.
    pub fn count_received(&mut self, kind: &'static str) {
        *self.messages_received.entry(kind.to_owned()).or_default() += 1;
    }

    /// The report for `update`, created at `now` on first touch.
    pub fn update_mut(&mut self, update: UpdateId, now: SimTime) -> &mut UpdateReport {
        self.updates.entry(update).or_insert_with(|| UpdateReport::new(update, now))
    }
}

/// Network-wide aggregation of one update — the super-peer's "final
/// statistical report" rows.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct UpdateSummary {
    /// Nodes that participated.
    pub nodes: u64,
    /// Nodes that reached the closed state on their own (before the global
    /// completion flood).
    pub closed_early: u64,
    /// Earliest start across nodes.
    pub started_at: SimTime,
    /// Latest close/completion across nodes.
    pub finished_at: SimTime,
    /// `finished_at - started_at`: the paper's "total execution time of an
    /// update".
    pub total_time: SimTime,
    /// Total data messages.
    pub data_messages: u64,
    /// Total firings moved.
    pub firings: u64,
    /// Total data bytes moved.
    pub data_bytes: u64,
    /// Total tuples materialised network-wide.
    pub tuples_added: u64,
    /// Longest update propagation path anywhere.
    pub longest_path: u64,
    /// Per-rule traffic, aggregated over receivers.
    pub per_rule: BTreeMap<RuleName, RuleTraffic>,
    /// True if any node hit the chase safety valve.
    pub truncated: bool,
}

/// The super-peer's aggregated view over all collected node reports.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Raw node reports, by node.
    #[serde(with = "pairs")]
    pub nodes: BTreeMap<NodeId, NodeReport>,
}

impl NetworkReport {
    /// Ingests one node report (latest wins).
    pub fn ingest(&mut self, report: NodeReport) {
        self.nodes.insert(report.node, report);
    }

    /// Update ids seen anywhere.
    pub fn update_ids(&self) -> Vec<UpdateId> {
        let mut ids: Vec<UpdateId> =
            self.nodes.values().flat_map(|n| n.updates.keys().copied()).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Aggregates one update across all reporting nodes.
    pub fn summarise(&self, update: UpdateId) -> Option<UpdateSummary> {
        let mut summary = UpdateSummary::default();
        let mut started: Option<SimTime> = None;
        let mut finished: Option<SimTime> = None;
        let mut seen = false;
        for node in self.nodes.values() {
            let Some(r) = node.updates.get(&update) else { continue };
            seen = true;
            summary.nodes += 1;
            if r.closed_at.is_some() && (r.completed_at.is_none() || r.closed_at < r.completed_at) {
                summary.closed_early += 1;
            }
            started = Some(started.map_or(r.started_at, |s| s.min(r.started_at)));
            if let Some(f) = r.closed_at.max(r.completed_at) {
                finished = Some(finished.map_or(f, |g| g.max(f)));
            }
            for (rule, t) in &r.received {
                summary.data_messages += t.messages;
                summary.firings += t.firings;
                summary.data_bytes += t.bytes;
                let agg = summary.per_rule.entry(rule.clone()).or_default();
                agg.messages += t.messages;
                agg.firings += t.firings;
                agg.bytes += t.bytes;
            }
            summary.tuples_added += r.tuples_added;
            summary.longest_path = summary.longest_path.max(r.longest_path);
            summary.truncated |= r.truncated;
        }
        if !seen {
            return None;
        }
        summary.started_at = started.unwrap_or(SimTime::ZERO);
        summary.finished_at = finished.unwrap_or(summary.started_at);
        summary.total_time = summary.finished_at.saturating_sub(summary.started_at);
        Some(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd() -> UpdateId {
        UpdateId { origin: NodeId(0), epoch: 0, seq: 0 }
    }

    #[test]
    fn rule_traffic_accumulates() {
        let mut t = RuleTraffic::default();
        t.record(3, 100);
        t.record(2, 50);
        assert_eq!(t, RuleTraffic { messages: 2, firings: 5, bytes: 150 });
    }

    #[test]
    fn update_report_duration() {
        let mut r = UpdateReport::new(upd(), SimTime::from_millis(10));
        assert_eq!(r.duration(), None);
        r.closed_at = Some(SimTime::from_millis(25));
        assert_eq!(r.duration(), Some(SimTime::from_millis(15)));
    }

    #[test]
    fn node_report_counters() {
        let mut n = NodeReport::new(NodeId(3));
        n.count_sent("update_data");
        n.count_sent("update_data");
        n.count_received("ds_ack");
        assert_eq!(n.messages_sent["update_data"], 2);
        assert_eq!(n.messages_received["ds_ack"], 1);
        let r = n.update_mut(upd(), SimTime::from_millis(1));
        r.tuples_added = 4;
        assert_eq!(n.updates[&upd()].tuples_added, 4);
    }

    #[test]
    fn network_report_aggregates() {
        let mut net = NetworkReport::default();
        for i in 0..3u64 {
            let mut n = NodeReport::new(NodeId(i));
            let r = n.update_mut(upd(), SimTime::from_millis(i));
            r.closed_at = Some(SimTime::from_millis(10 + i));
            r.longest_path = i + 1;
            r.tuples_added = 10;
            r.received.entry("r1".into()).or_default().record(2, 100);
            net.ingest(n);
        }
        let s = net.summarise(upd()).unwrap();
        assert_eq!(s.nodes, 3);
        assert_eq!(s.closed_early, 3);
        assert_eq!(s.started_at, SimTime::ZERO);
        assert_eq!(s.finished_at, SimTime::from_millis(12));
        assert_eq!(s.total_time, SimTime::from_millis(12));
        assert_eq!(s.data_messages, 3);
        assert_eq!(s.firings, 6);
        assert_eq!(s.tuples_added, 30);
        assert_eq!(s.longest_path, 3);
        assert_eq!(s.per_rule["r1"].bytes, 300);
        assert!(!s.truncated);
    }

    #[test]
    fn summarise_unknown_update_is_none() {
        let net = NetworkReport::default();
        assert!(net.summarise(upd()).is_none());
    }

    #[test]
    fn ingest_latest_wins() {
        let mut net = NetworkReport::default();
        let mut a = NodeReport::new(NodeId(1));
        a.ldb_tuples = 1;
        net.ingest(a);
        let mut b = NodeReport::new(NodeId(1));
        b.ldb_tuples = 9;
        net.ingest(b);
        assert_eq!(net.nodes[&NodeId(1)].ldb_tuples, 9);
        assert_eq!(net.nodes.len(), 1);
    }

    #[test]
    fn reports_serialise_to_json() {
        let mut n = NodeReport::new(NodeId(0));
        n.update_mut(upd(), SimTime::ZERO);
        let js = serde_json::to_string(&n).unwrap();
        let back: NodeReport = serde_json::from_str(&js).unwrap();
        assert_eq!(back.node, NodeId(0));
        assert!(back.updates.contains_key(&upd()));
    }
}
