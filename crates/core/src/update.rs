//! The global update algorithm (paper §3).
//!
//! A dedicated node starts a global update; the request floods the network
//! with a unique [`UpdateId`]. Every node executes its *incoming links*
//! (the rules other nodes use to import data from it) over its LDB and
//! pushes the resulting firings to the rule targets. When data arrives on
//! an *outgoing link* `o`, the new tuples `T' = T \ R` are materialised
//! (fresh marked nulls for existential placeholders), and every incoming
//! link *dependent on* `o` is re-computed **by substituting `R` with `T'`**
//! (semi-naive delta evaluation); results already sent on a link are
//! removed before sending (the per-link *sent cache*).
//!
//! ## Termination
//!
//! Two cooperating mechanisms (DESIGN.md §3):
//!
//! 1. **The paper's open/closed link states.** An incoming link closes —
//!    and the source notifies the target with `LinkClosed` — once every
//!    outgoing link *relevant for* it is closed (immediately, for links
//!    with no relevant outgoing links). A node is *closed* when all its
//!    outgoing links are closed. In acyclic dependency graphs this closes
//!    everything progressively, with no global coordination.
//! 2. **Dijkstra–Scholten diffusing computation** as the global backstop
//!    for cyclic components (the paper frames its propagation as an
//!    "extension of diffusing computation [Lynch 1996]"). Every
//!    `UpdateRequest` / `UpdateData` / `LinkClosed` message is a DS
//!    message: the first one *engages* a node under its sender (no credit
//!    returned yet); every other one is credited back (`DsAck`) right
//!    after processing. A node returns its engagement credit once its own
//!    deficit is zero. When the initiator's deficit reaches zero the whole
//!    computation is quiescent: it floods `UpdateComplete`, which
//!    force-closes the links cyclic dependencies kept open.

use crate::ids::{NodeId, RuleName, UpdateId};
use crate::messages::{Body, Envelope};
use crate::node::CoDbNode;
use codb_net::{Context, SimTime};
use codb_relational::{RuleFiring, Tuple};
use codb_trace::TraceEvent;
use std::collections::{BTreeMap, BTreeSet};

/// Per-update state at one node.
#[derive(Debug)]
pub struct UpdateState {
    /// The update.
    pub update: UpdateId,
    /// True at the node that started the update.
    pub initiator: bool,
    /// Engaged in the DS tree (initiator: from start to completion).
    pub engaged: bool,
    /// DS parent (the sender of the engaging message).
    pub parent: Option<NodeId>,
    /// Unreturned DS credits for messages this node sent.
    pub deficit: u64,
    /// Whether the flooded `UpdateRequest` has been processed here.
    pub request_seen: bool,
    /// Query-dependent (scoped) mode: only demanded links participate.
    pub scoped: bool,
    /// Scoped mode: incoming links activated by a `DemandLink`.
    pub active_in: BTreeSet<RuleName>,
    /// Scoped mode: outgoing links this node has demanded upstream.
    pub requested_out: BTreeSet<RuleName>,
    /// Outgoing links known closed (`LinkClosed` received, or forced at
    /// completion).
    pub out_closed: BTreeSet<RuleName>,
    /// Incoming links this node has closed (`LinkClosed` sent).
    pub in_closed: BTreeSet<RuleName>,
    /// `UpdateData` messages sent per incoming link (carried in the
    /// link's `LinkClosed`).
    pub data_sent: BTreeMap<RuleName, u64>,
    /// `UpdateData` messages processed per outgoing link.
    pub data_received: BTreeMap<RuleName, u64>,
    /// Close notifications whose data has not fully arrived yet
    /// (`rule → expected data message count`).
    pub pending_close: BTreeMap<RuleName, u64>,
    /// Set once `UpdateComplete` has been processed (or initiated).
    pub complete: bool,
}

impl UpdateState {
    /// Fresh state for an update first seen now.
    pub fn new(update: UpdateId, _now: SimTime) -> Self {
        UpdateState {
            update,
            initiator: false,
            engaged: false,
            parent: None,
            deficit: 0,
            request_seen: false,
            scoped: false,
            active_in: BTreeSet::new(),
            requested_out: BTreeSet::new(),
            out_closed: BTreeSet::new(),
            in_closed: BTreeSet::new(),
            data_sent: BTreeMap::new(),
            data_received: BTreeMap::new(),
            pending_close: BTreeMap::new(),
            complete: false,
        }
    }

    /// True iff the given outgoing link is still open.
    pub fn is_out_open(&self, rule: &RuleName) -> bool {
        !self.out_closed.contains(rule)
    }
}

impl CoDbNode {
    /// Mints the next update id — `(origin, epoch, seq)`, so ids stay
    /// unique across crashes by construction — and WAL-logs the bumped
    /// counter so a recovered incarnation resumes the id space.
    fn mint_update_id(&mut self) -> UpdateId {
        let update = UpdateId { origin: self.id, epoch: self.epoch(), seq: self.next_update_seq };
        self.next_update_seq += 1;
        self.log_counters();
        update
    }

    /// Harness/user entry point: start a global update at this node.
    pub(crate) fn start_update(&mut self, ctx: &mut Context<Envelope>) {
        let update = self.mint_update_id();
        let now = ctx.now();
        let st = self.updates.entry(update).or_insert_with(|| UpdateState::new(update, now));
        st.initiator = true;
        st.engaged = true;
        self.report.update_mut(update, now);
        self.process_update_request(ctx, None, update);
        self.maybe_disengage(ctx, update);
    }

    /// Harness/user entry point: start a query-dependent (scoped) update —
    /// materialise only data feeding `relations` at this node (the paper's
    /// "query-dependent update requests").
    pub(crate) fn start_scoped_update(
        &mut self,
        ctx: &mut Context<Envelope>,
        relations: Vec<String>,
    ) {
        let update = self.mint_update_id();
        let now = ctx.now();
        let st = self.updates.entry(update).or_insert_with(|| UpdateState::new(update, now));
        st.initiator = true;
        st.engaged = true;
        st.scoped = true;
        st.request_seen = true; // scoped mode never floods a request
        self.report.update_mut(update, now);
        let demanded: BTreeSet<String> = relations.into_iter().collect();
        self.demand_relations(ctx, update, &demanded);
        self.check_node_closed(update, now);
        self.maybe_disengage(ctx, update);
    }

    /// Demands every outgoing link whose head writes one of `relations`
    /// (idempotent per link).
    fn demand_relations(
        &mut self,
        ctx: &mut Context<Envelope>,
        update: UpdateId,
        relations: &BTreeSet<String>,
    ) {
        let wanted: Vec<(RuleName, NodeId)> = self
            .book
            .outgoing
            .iter()
            .filter(|(_, r)| r.rule.head_relations().iter().any(|h| relations.contains(*h)))
            .map(|(name, r)| (name.clone(), r.source))
            .collect();
        for (name, source) in wanted {
            let st = self.updates.get_mut(&update).expect("state exists");
            if st.requested_out.insert(name.clone()) {
                self.post(ctx, source, Body::DemandLink { update, rule: name });
            }
        }
    }

    /// Serves a demand: activates the incoming link, ships its current
    /// data, and recursively demands what the rule body reads.
    fn process_demand_link(
        &mut self,
        ctx: &mut Context<Envelope>,
        update: UpdateId,
        rule: RuleName,
    ) {
        let now = ctx.now();
        self.report.update_mut(update, now);
        let st = self.updates.get_mut(&update).expect("state created by caller");
        st.scoped = true;
        st.request_seen = true;
        let Some(link) = self.book.incoming.get(&rule) else {
            return; // stale rule name after a reconfiguration
        };
        let target = link.target;
        let glav = link.rule.clone();
        let st = self.updates.get_mut(&update).expect("state exists");
        if !st.active_in.insert(rule.clone()) {
            return; // already serving this link
        }
        // Initial shipment.
        let firings = glav.fire(&self.ldb).expect("schema-validated rule");
        self.send_link_data(ctx, update, &rule, target, firings, 1);
        // Recursive demand for the body's inputs.
        let body_rels: BTreeSet<String> =
            glav.body_relations().into_iter().map(str::to_owned).collect();
        self.demand_relations(ctx, update, &body_rels);
        self.check_in_link_closes(ctx, update);
        self.check_node_closed(update, now);
    }

    /// DS wrapper: engagement bookkeeping around the three DS-counted
    /// message kinds.
    pub(crate) fn dispatch_ds(&mut self, ctx: &mut Context<Envelope>, from: NodeId, body: Body) {
        let update = body.update_id().expect("DS messages carry an update id");
        let now = ctx.now();
        let st = self.updates.entry(update).or_insert_with(|| UpdateState::new(update, now));
        let engaging = !st.engaged && !st.initiator;
        if engaging {
            st.engaged = true;
            st.parent = Some(from);
        }
        match body {
            Body::UpdateRequest { update } => self.process_update_request(ctx, Some(from), update),
            Body::DemandLink { update, rule } => self.process_demand_link(ctx, update, rule),
            Body::UpdateData { update, rule, firings, hops } => {
                self.process_update_data(ctx, update, rule, firings, hops)
            }
            Body::LinkClosed { update, rule, data_msgs } => {
                self.process_link_closed(ctx, update, rule, data_msgs)
            }
            _ => unreachable!("dispatch_ds called for non-DS body"),
        }
        if !engaging {
            // Non-engaging DS messages are credited back immediately after
            // processing; the engaging credit is held until disengagement.
            self.tracer.emit_with(|| TraceEvent::DsAck { peer: self.id.0, to: from.0, credits: 1 });
            self.post(ctx, from, Body::DsAck { update, credits: 1 });
        }
        self.maybe_disengage(ctx, update);
    }

    /// Handles the flooded update request (first receipt does the work;
    /// duplicates are no-ops beyond DS crediting).
    fn process_update_request(
        &mut self,
        ctx: &mut Context<Envelope>,
        from: Option<NodeId>,
        update: UpdateId,
    ) {
        let now = ctx.now();
        self.report.update_mut(update, now).requests_received += 1;
        let st = self.updates.get_mut(&update).expect("state created by caller");
        if st.request_seen {
            return;
        }
        st.request_seen = true;

        // Initial execution of every incoming link over the current LDB.
        let incoming: Vec<(RuleName, NodeId)> =
            self.book.incoming.iter().map(|(name, r)| (name.clone(), r.target)).collect();
        for (name, target) in &incoming {
            let rule = &self.book.incoming[name].rule;
            let firings = rule.fire(&self.ldb).expect("schema-validated rule");
            self.send_link_data(ctx, update, name, *target, firings, 1);
        }

        // Flood the request to all acquaintances except the sender.
        let acquaintances = self.book.acquaintances(self.id);
        for acq in acquaintances {
            if Some(acq) != from {
                self.post(ctx, acq, Body::UpdateRequest { update });
            }
        }

        self.check_in_link_closes(ctx, update);
        self.check_node_closed(update, now);
    }

    /// Handles a batch of firings arriving on outgoing link `rule`.
    fn process_update_data(
        &mut self,
        ctx: &mut Context<Envelope>,
        update: UpdateId,
        rule: RuleName,
        firings: Vec<RuleFiring>,
        hops: u64,
    ) {
        let now = ctx.now();
        let bytes: usize = firings.iter().map(RuleFiring::size_bytes).sum();
        {
            let rep = self.report.update_mut(update, now);
            rep.received
                .entry(rule.clone())
                .or_default()
                .record(firings.len() as u64, bytes as u64);
            rep.longest_path = rep.longest_path.max(hops);
        }
        if !self.book.outgoing.contains_key(&rule) {
            // Stale rule (configuration changed mid-update): data ignored.
            return;
        }

        // Count the data message and resolve a deferred close whose data
        // has now fully arrived (loss + retransmission can reorder data
        // past the close notification).
        let st = self.updates.get_mut(&update).expect("state created by caller");
        let received = st.data_received.entry(rule.clone()).or_default();
        *received += 1;
        let deferred_close_ready = match st.pending_close.get(&rule) {
            Some(expected) => *received >= *expected,
            None => false,
        };

        // Template-level dedup against everything already received on this
        // link — across updates, not just within one: re-running an update
        // must not re-instantiate existential templates with fresh nulls
        // (that would silently duplicate GLAV data on every run).
        let cache = self.recv_cache.entry(rule.clone()).or_default();
        let fresh: Vec<RuleFiring> =
            firings.into_iter().filter(|f| cache.insert(f.clone())).collect();
        if !fresh.is_empty() {
            // Durability: WAL the applied batch before mutating the LDB.
            // Replay from the snapshot re-runs exactly these applies in
            // order, reproducing instance, null factory and dedup caches.
            if self.persist.is_some() {
                self.log_wal(codb_store::WalRecord::Applied {
                    rule: rule.clone(),
                    firings: fresh.clone(),
                });
            }
            let deltas = codb_relational::apply_firings(&mut self.ldb, &fresh, &mut self.nulls)
                .expect("firings validated against schema");
            let added: u64 = deltas.values().map(|v| v.len() as u64).sum();
            self.report.update_mut(update, now).tuples_added += added;
            if self.tracer.is_enabled() {
                let r = self.tracer.intern(&rule);
                self.tracer.emit(TraceEvent::UpdateApply {
                    peer: self.id.0,
                    rule: r,
                    tuples: added,
                });
            }
            if !deltas.is_empty() {
                if hops >= self.settings.max_hops {
                    // Chase safety valve.
                    self.report.update_mut(update, now).truncated = true;
                } else {
                    // Re-compute dependent incoming links by substituting
                    // R with T'.
                    self.propagate_deltas(ctx, update, &deltas, hops + 1);
                }
            }
        }

        if deferred_close_ready {
            self.commit_link_close(ctx, update, rule);
        }
    }

    /// Marks outgoing link `rule` closed and runs the close cascade.
    fn commit_link_close(&mut self, ctx: &mut Context<Envelope>, update: UpdateId, rule: RuleName) {
        let now = ctx.now();
        let st = self.updates.get_mut(&update).expect("state exists");
        st.pending_close.remove(&rule);
        st.out_closed.insert(rule);
        self.check_in_link_closes(ctx, update);
        self.check_node_closed(update, now);
    }

    /// Semi-naive re-computation of the incoming links that read any of the
    /// changed relations, and transmission of the (sent-cache-filtered)
    /// results.
    pub(crate) fn propagate_deltas(
        &mut self,
        ctx: &mut Context<Envelope>,
        update: UpdateId,
        deltas: &BTreeMap<String, Vec<Tuple>>,
        hops: u64,
    ) {
        let changed: BTreeSet<String> = deltas.keys().cloned().collect();
        let st = self.updates.get(&update).expect("state exists");
        let scoped = st.scoped;
        let active = st.active_in.clone();
        let mut dependents = self.book.incoming_reading(&changed);
        if scoped {
            dependents.retain(|name| active.contains(name));
        }
        for name in dependents {
            let link = &self.book.incoming[&name];
            let target = link.target;
            let rule = link.rule.clone();
            let mut firings: Vec<RuleFiring> = Vec::new();
            for (rel, tuples) in deltas {
                if rule.body_relations().contains(rel.as_str()) {
                    firings.extend(
                        rule.fire_delta(&self.ldb, rel, tuples).expect("schema-validated rule"),
                    );
                }
            }
            self.send_link_data(ctx, update, &name, target, firings, hops);
        }
    }

    /// Filters `firings` against the sent cache for incoming link `name`
    /// and posts the remainder (if any) to `target`.
    fn send_link_data(
        &mut self,
        ctx: &mut Context<Envelope>,
        update: UpdateId,
        name: &RuleName,
        target: NodeId,
        firings: Vec<RuleFiring>,
        hops: u64,
    ) {
        let st = self.updates.get_mut(&update).expect("state exists");
        if st.in_closed.contains(name) {
            // Only reachable once the update has completed (all in-flight
            // messages are processed before DS quiescence, so new data for
            // a link closed by the paper's rule cannot exist).
            debug_assert!(st.complete, "data produced for a closed incoming link {name}");
            return;
        }
        // The paper's sent-side dedup ("we delete from Ri those tuples
        // which have been already sent to the incoming link"). With
        // `incremental_updates` the cache persists across updates, so a
        // re-run only ships genuinely new firings (ablation E15).
        let cache_key = if self.settings.incremental_updates {
            (name.clone(), None)
        } else {
            (name.clone(), Some(update))
        };
        let cache = self.sent_cache.entry(cache_key).or_default();
        let fresh: Vec<RuleFiring> =
            firings.into_iter().filter(|f| cache.insert(f.clone())).collect();
        if fresh.is_empty() {
            return;
        }
        let bytes: usize = fresh.iter().map(RuleFiring::size_bytes).sum();
        let st = self.updates.get_mut(&update).expect("state exists");
        *st.data_sent.entry(name.clone()).or_default() += 1;
        self.report
            .update_mut(update, ctx.now())
            .sent
            .entry(name.clone())
            .or_default()
            .record(fresh.len() as u64, bytes as u64);
        self.tracer.emit_with(|| TraceEvent::RuleFire {
            peer: self.id.0,
            link: target.0,
            firings: fresh.len() as u64,
        });
        self.post(
            ctx,
            target,
            Body::UpdateData { update, rule: name.clone(), firings: fresh, hops },
        );
    }

    /// Handles the source-side close notification for outgoing link `rule`.
    fn process_link_closed(
        &mut self,
        ctx: &mut Context<Envelope>,
        update: UpdateId,
        rule: RuleName,
        data_msgs: u64,
    ) {
        let st = self.updates.get_mut(&update).expect("state created by caller");
        let received = st.data_received.get(&rule).copied().unwrap_or(0);
        if received < data_msgs {
            // Data still in flight (lost + pending retransmission): defer
            // the close until the last data message is processed.
            st.pending_close.insert(rule, data_msgs);
            return;
        }
        self.commit_link_close(ctx, update, rule);
    }

    /// The paper's close rule: "an acquaintance closes an incoming link …
    /// if all its outgoing links which are relevant for this incoming link
    /// are in the state closed". Requires the request to have been seen
    /// (otherwise the link set is not yet initialised).
    fn check_in_link_closes(&mut self, ctx: &mut Context<Envelope>, update: UpdateId) {
        let st = self.updates.get(&update).expect("state exists");
        if !st.request_seen || st.complete {
            return;
        }
        let candidates: Vec<(RuleName, NodeId)> = self
            .book
            .incoming
            .iter()
            .filter(|(name, _)| !st.scoped || st.active_in.contains(*name))
            .filter(|(name, _)| !st.in_closed.contains(*name))
            .filter(|(name, _)| {
                self.book.relevant_outgoing(name).iter().all(|o| st.out_closed.contains(o))
            })
            .map(|(name, r)| (name.clone(), r.target))
            .collect();
        for (name, target) in candidates {
            let st = self.updates.get_mut(&update).expect("state exists");
            st.in_closed.insert(name.clone());
            let data_msgs = st.data_sent.get(&name).copied().unwrap_or(0);
            self.post(ctx, target, Body::LinkClosed { update, rule: name, data_msgs });
        }
    }

    /// "When all outgoing links of a node are in the state closed, then the
    /// node is also in the state closed."
    fn check_node_closed(&mut self, update: UpdateId, now: SimTime) {
        let st = self.updates.get(&update).expect("state exists");
        if !st.request_seen {
            return;
        }
        let closed = if st.scoped {
            st.requested_out.iter().all(|name| st.out_closed.contains(name))
        } else {
            self.book.outgoing.keys().all(|name| st.out_closed.contains(name))
        };
        if closed {
            let rep = self.report.update_mut(update, now);
            if rep.closed_at.is_none() {
                rep.closed_at = Some(now);
            }
        }
    }

    /// Handles a DS credit return. The deficit is an *aggregate* counter,
    /// and under loss + crashes a credit can be returned twice for one
    /// message: the receiver's `DsAck` arrives but the transport ack for
    /// the DS message is lost, the sender keeps retransmitting, the
    /// receiver then dies, and the retransmission is eventually abandoned
    /// — surrendering a credit that already came back. The subtraction
    /// therefore saturates: the surplus only ever *accelerates*
    /// disengagement toward a presumed-dead subtree, which is the
    /// documented crash semantics (the update completes without it).
    pub(crate) fn handle_ds_ack(
        &mut self,
        ctx: &mut Context<Envelope>,
        update: UpdateId,
        credits: u64,
    ) {
        let now = ctx.now();
        let st = self.updates.entry(update).or_insert_with(|| UpdateState::new(update, now));
        st.deficit = st.deficit.saturating_sub(credits);
        let deficit = st.deficit;
        self.tracer.emit_with(|| TraceEvent::DsCredit { peer: self.id.0, credits, deficit });
        self.maybe_disengage(ctx, update);
    }

    /// DS disengagement / termination detection.
    fn maybe_disengage(&mut self, ctx: &mut Context<Envelope>, update: UpdateId) {
        let st = self.updates.get_mut(&update).expect("state exists");
        if !st.engaged || st.deficit != 0 {
            return;
        }
        if st.initiator {
            if !st.complete {
                self.on_global_quiescence(ctx, update);
            }
        } else {
            let parent = st.parent.expect("engaged non-initiator has a parent");
            st.engaged = false;
            st.parent = None;
            self.tracer.emit_with(|| TraceEvent::DsAck {
                peer: self.id.0,
                to: parent.0,
                credits: 1,
            });
            self.post(ctx, parent, Body::DsAck { update, credits: 1 });
        }
    }

    /// The initiator detected global quiescence: flood `UpdateComplete`.
    fn on_global_quiescence(&mut self, ctx: &mut Context<Envelope>, update: UpdateId) {
        self.finish_update(update, ctx.now());
        let acquaintances = self.book.acquaintances(self.id);
        for acq in acquaintances {
            self.post(ctx, acq, Body::UpdateComplete { update });
        }
    }

    /// Handles (and relays) the completion flood.
    pub(crate) fn handle_update_complete(
        &mut self,
        ctx: &mut Context<Envelope>,
        from: NodeId,
        update: UpdateId,
    ) {
        let now = ctx.now();
        let st = self.updates.entry(update).or_insert_with(|| UpdateState::new(update, now));
        if st.complete {
            return;
        }
        self.finish_update(update, now);
        let acquaintances = self.book.acquaintances(self.id);
        for acq in acquaintances {
            if acq != from {
                self.post(ctx, acq, Body::UpdateComplete { update });
            }
        }
    }

    /// Force-closes whatever cyclic dependencies kept open and stamps the
    /// completion time.
    fn finish_update(&mut self, update: UpdateId, now: SimTime) {
        let st = self.updates.get_mut(&update).expect("state exists");
        st.complete = true;
        for name in self.book.outgoing.keys() {
            st.out_closed.insert(name.clone());
        }
        for name in self.book.incoming.keys() {
            st.in_closed.insert(name.clone());
        }
        let rep = self.report.update_mut(update, now);
        if rep.closed_at.is_none() {
            rep.closed_at = Some(now);
        }
        rep.completed_at = Some(now);
        self.report.ldb_tuples = self.ldb.tuple_count() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_state_defaults() {
        let u = UpdateId { origin: NodeId(0), epoch: 0, seq: 0 };
        let st = UpdateState::new(u, SimTime::ZERO);
        assert!(!st.initiator);
        assert!(!st.engaged);
        assert_eq!(st.deficit, 0);
        assert!(st.is_out_open(&"r".to_owned()));
    }
}
