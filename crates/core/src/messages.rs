//! The coDB wire protocol.
//!
//! Every message is an [`Envelope`]: an optional transport sequence number
//! (present on all protocol messages; used by the reliable-delivery layer)
//! plus a [`Body`]. Transport acknowledgements themselves are unsequenced.

use crate::config::NetworkConfig;
use crate::ids::{NodeId, ReqId, RuleName, UpdateId};
use crate::stats::NodeReport;
use codb_net::Payload;
use codb_relational::{ConjunctiveQuery, RuleFiring};
use serde::{Deserialize, Serialize};

/// Message body.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Body {
    // ---- transport ----
    /// Acknowledges receipt of the envelope with transport seq `seq`
    /// (reliable-delivery layer; not a Dijkstra–Scholten signal).
    Ack {
        /// Acknowledged transport sequence number.
        seq: u64,
    },

    // ---- global update (paper §2–3) ----
    /// Flooded request starting / propagating a global update.
    UpdateRequest {
        /// The update.
        update: UpdateId,
    },
    /// Query-dependent (scoped) update: the sender *demands* the data of
    /// one coordination rule — the receiver activates that incoming link
    /// and recursively demands what the rule's body needs. Unlike
    /// [`Body::UpdateRequest`] this is not flooded; it follows the demand.
    DemandLink {
        /// The update.
        update: UpdateId,
        /// The demanded rule (an incoming link at the receiver).
        rule: RuleName,
    },
    /// Rule firings pushed from a rule's source to its target.
    UpdateData {
        /// The update.
        update: UpdateId,
        /// The coordination rule (an outgoing link at the receiver).
        rule: RuleName,
        /// New firings (already deduplicated against the sender's
        /// sent-cache for this link).
        firings: Vec<RuleFiring>,
        /// Length of the update propagation path that produced this batch
        /// (the statistics module reports the longest such path).
        hops: u64,
    },
    /// The source of `rule` tells the target that the incoming link is
    /// closed: no further `UpdateData` will arrive on it.
    LinkClosed {
        /// The update.
        update: UpdateId,
        /// The rule whose link closed.
        rule: RuleName,
        /// How many `UpdateData` messages the source sent on this link.
        /// Retransmission can deliver a lost data message *after* the
        /// close notification; the target treats the link as closed only
        /// once it has processed this many data messages.
        data_msgs: u64,
    },
    /// Dijkstra–Scholten credit: the receiver's deficit for `update`
    /// decreases by `credits`.
    DsAck {
        /// The update.
        update: UpdateId,
        /// Number of messages acknowledged.
        credits: u64,
    },
    /// Flooded by the initiator once global quiescence is detected; forces
    /// links still open (cyclic components) closed.
    UpdateComplete {
        /// The update.
        update: UpdateId,
    },

    // ---- crash rejoin ----
    /// A node restarted from its durable store announces its new
    /// incarnation to an acquaintance. The receiver invalidates every
    /// per-link incremental sent-cache pointed at the sender (the crashed
    /// incarnation may have lost data those caches assume it holds), so
    /// the next update falls back to one full re-send on those links and
    /// then resumes incremental deltas.
    Rejoin {
        /// The sender's new incarnation epoch (explicit, so the handshake
        /// survives relaying/inspection independent of the envelope).
        epoch: u64,
    },
    /// Confirms a [`Body::Rejoin`]: the receiver has invalidated its
    /// sent-caches toward the rejoined node for the given epoch. A stale
    /// ack (from an earlier incarnation's handshake) carries the old epoch
    /// and is ignored by the rejoined node.
    RejoinAck {
        /// The epoch being acknowledged.
        epoch: u64,
    },
    /// Repair data pushed at barrier release: when a neighbor processes a
    /// strictly newer [`Body::Rejoin`] it re-fires every link targeting
    /// the rejoined node over its full LDB and ships the result
    /// immediately, instead of waiting for the next organic update to
    /// re-send what the crashed incarnation lost (ROADMAP window (a)).
    /// Unlike [`Body::UpdateData`] this carries no update id and is not
    /// Dijkstra–Scholten counted — repair is a standalone push, dedup'd
    /// by the receiver's cross-update template caches, which also bound
    /// the cascade of further `RejoinRepair` hops it may trigger.
    RejoinRepair {
        /// The coordination rule (an outgoing link at the receiver).
        rule: RuleName,
        /// Re-fired rule firings (already filtered through the sender's
        /// freshly invalidated sent-cache for this link).
        firings: Vec<RuleFiring>,
    },

    // ---- query-time answering (paper §1, §3) ----
    /// Ask an acquaintance to execute `rule`'s body on behalf of a query.
    /// `path` is the label of node ids the request has passed through; a
    /// node does not extend the diffusion past nodes already in the label.
    QueryRequest {
        /// Fetch request id (unique per requester).
        req: ReqId,
        /// Rule to execute (an incoming link at the receiver).
        rule: RuleName,
        /// Diffusing-computation label.
        path: Vec<NodeId>,
    },
    /// A (streaming) answer to a [`Body::QueryRequest`]: the paper's node
    /// "answers it using local data immediately" and keeps streaming as
    /// its own fetches return; `closed` marks the final instalment.
    QueryAnswer {
        /// The request being answered.
        req: ReqId,
        /// New rule firings since the previous instalment.
        firings: Vec<RuleFiring>,
        /// True on the final instalment for this request.
        closed: bool,
    },

    // ---- super-peer administration (paper §4) ----
    /// Super-peer broadcast of a (new) network configuration: each node
    /// picks out its own rules, drops stale pipes, opens new ones.
    RulesFile {
        /// The configuration.
        config: Box<NetworkConfig>,
    },
    /// Super-peer asks a node for its statistics.
    StatsRequest,
    /// A node's statistics report.
    StatsReport {
        /// The report.
        report: Box<NodeReport>,
    },

    // ---- harness-injected control (the demo UI's buttons) ----
    /// Start a global update at the receiving node.
    StartUpdate,
    /// Start a query-dependent (scoped) update at the receiving node,
    /// materialising only data feeding the given relations.
    StartScopedUpdate {
        /// The relations the user's query reads.
        relations: Vec<String>,
    },
    /// Run a network query at the receiving node.
    StartQuery {
        /// The user query (over the receiving node's schema).
        query: Box<ConjunctiveQuery>,
        /// Whether to fetch from acquaintances (query-time answering) or
        /// answer purely locally.
        fetch: bool,
    },
    /// Ask the receiving super-peer to collect statistics from all nodes.
    CollectStats,
    /// Ask the receiving super-peer to broadcast its configuration.
    BroadcastRules,
    /// Trigger the topology discovery procedure at the receiving node
    /// (the demo UI's "start topology discovery"): refresh the node's view
    /// of advertised peers, acquaintances or not.
    TriggerDiscovery,
    /// Insert a tuple into the receiving node's local database, exactly as
    /// [`crate::node::CoDbNode::insert_local`] would. Exists so sustained
    /// ingest flows through the message plane on *both* runtimes — under
    /// the sharded threaded runtime node state lives on worker threads, so
    /// the harness cannot call `insert_local` directly.
    IngestLocal {
        /// Target relation (must exist in the node's schema).
        relation: String,
        /// The tuple (arity-checked against the schema on arrival).
        tuple: codb_relational::Tuple,
    },
}

impl Body {
    /// Approximate serialized size, for the simulator's bandwidth model and
    /// the statistics module. Firing payloads dominate; control messages
    /// are costed at small constants.
    pub fn size_bytes(&self) -> usize {
        match self {
            Body::Ack { .. } => 16,
            Body::UpdateRequest { .. } => 32,
            Body::DemandLink { .. } => 40,
            Body::UpdateData { firings, .. } => {
                48 + firings.iter().map(RuleFiring::size_bytes).sum::<usize>()
            }
            Body::LinkClosed { .. } => 40,
            Body::DsAck { .. } => 32,
            Body::UpdateComplete { .. } => 32,
            Body::Rejoin { .. } | Body::RejoinAck { .. } => 24,
            Body::RejoinRepair { firings, .. } => {
                40 + firings.iter().map(RuleFiring::size_bytes).sum::<usize>()
            }
            Body::QueryRequest { path, .. } => 48 + path.len() * 8,
            Body::QueryAnswer { firings, .. } => {
                32 + firings.iter().map(RuleFiring::size_bytes).sum::<usize>()
            }
            Body::RulesFile { config } => config.approx_size_bytes(),
            Body::StatsRequest => 16,
            Body::StatsReport { .. } => 256,
            Body::StartUpdate
            | Body::StartScopedUpdate { .. }
            | Body::StartQuery { .. }
            | Body::CollectStats
            | Body::BroadcastRules
            | Body::TriggerDiscovery => 16,
            Body::IngestLocal { relation, tuple } => 24 + relation.len() + tuple.size_bytes(),
        }
    }

    /// The update this message belongs to, if any.
    pub fn update_id(&self) -> Option<UpdateId> {
        match self {
            Body::UpdateRequest { update }
            | Body::DemandLink { update, .. }
            | Body::UpdateData { update, .. }
            | Body::LinkClosed { update, .. }
            | Body::DsAck { update, .. }
            | Body::UpdateComplete { update } => Some(*update),
            _ => None,
        }
    }

    /// True for messages counted by the Dijkstra–Scholten deficit: the
    /// update messages that can trigger further work at the receiver.
    pub fn is_ds_counted(&self) -> bool {
        matches!(
            self,
            Body::UpdateRequest { .. }
                | Body::DemandLink { .. }
                | Body::UpdateData { .. }
                | Body::LinkClosed { .. }
        )
    }

    /// True for messages the rejoin barrier parks instead of abandoning
    /// when retransmission toward a peer exhausts
    /// [`crate::reliable::Reliable::max_attempts`]: the peer is presumed
    /// crashed and mid-handshake, so data and handshake traffic must wait
    /// for its new incarnation rather than be dropped. DS credit returns,
    /// completion floods, query traffic and stats keep the old
    /// abandonment semantics — they are either re-derivable or meaningless
    /// to a dead incarnation.
    pub fn parks_behind_barrier(&self) -> bool {
        self.is_ds_counted()
            || matches!(
                self,
                Body::Rejoin { .. } | Body::RejoinAck { .. } | Body::RejoinRepair { .. }
            )
    }

    /// Short tag for per-kind statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Body::Ack { .. } => "ack",
            Body::UpdateRequest { .. } => "update_request",
            Body::DemandLink { .. } => "demand_link",
            Body::UpdateData { .. } => "update_data",
            Body::LinkClosed { .. } => "link_closed",
            Body::DsAck { .. } => "ds_ack",
            Body::UpdateComplete { .. } => "update_complete",
            Body::Rejoin { .. } => "rejoin",
            Body::RejoinAck { .. } => "rejoin_ack",
            Body::RejoinRepair { .. } => "rejoin_repair",
            Body::QueryRequest { .. } => "query_request",
            Body::QueryAnswer { .. } => "query_answer",
            Body::RulesFile { .. } => "rules_file",
            Body::StatsRequest => "stats_request",
            Body::StatsReport { .. } => "stats_report",
            Body::StartUpdate => "start_update",
            Body::StartScopedUpdate { .. } => "start_scoped_update",
            Body::StartQuery { .. } => "start_query",
            Body::CollectStats => "collect_stats",
            Body::BroadcastRules => "broadcast_rules",
            Body::TriggerDiscovery => "trigger_discovery",
            Body::IngestLocal { .. } => "ingest_local",
        }
    }
}

/// A protocol message: transport header + body.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Envelope {
    /// Transport sequence number; `None` only for [`Body::Ack`] and
    /// harness-injected control messages.
    pub seq: Option<u64>,
    /// Sender incarnation. A node restarted from its durable store rejoins
    /// with a higher epoch (the JXTA stand-in: a restarted peer opens new
    /// transport sessions); receivers reset their per-sender duplicate
    /// state when they see the epoch grow, so the fresh incarnation's
    /// restarted sequence numbers are not mistaken for duplicates.
    pub epoch: u64,
    /// The payload.
    pub body: Body,
}

impl Envelope {
    /// An unsequenced control envelope (harness injection / acks).
    pub fn control(body: Body) -> Self {
        Envelope { seq: None, epoch: 0, body }
    }
}

impl Payload for Envelope {
    fn size_bytes(&self) -> usize {
        16 + self.body.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd() -> UpdateId {
        UpdateId { origin: NodeId(1), epoch: 0, seq: 0 }
    }

    #[test]
    fn ds_counting_covers_work_messages() {
        assert!(Body::UpdateRequest { update: upd() }.is_ds_counted());
        assert!(Body::UpdateData { update: upd(), rule: "r".into(), firings: vec![], hops: 1 }
            .is_ds_counted());
        assert!(Body::LinkClosed { update: upd(), rule: "r".into(), data_msgs: 0 }.is_ds_counted());
        assert!(!Body::DsAck { update: upd(), credits: 1 }.is_ds_counted());
        assert!(!Body::UpdateComplete { update: upd() }.is_ds_counted());
        assert!(!Body::Ack { seq: 3 }.is_ds_counted());
        assert!(!Body::StatsRequest.is_ds_counted());
        assert!(!Body::Rejoin { epoch: 1 }.is_ds_counted());
        assert!(!Body::RejoinAck { epoch: 1 }.is_ds_counted());
        assert!(!Body::RejoinRepair { rule: "r".into(), firings: vec![] }.is_ds_counted());
    }

    #[test]
    fn barrier_parks_data_and_handshake_but_not_bookkeeping() {
        // Everything DS-counted is real work the rejoined peer must
        // eventually see.
        assert!(Body::UpdateRequest { update: upd() }.parks_behind_barrier());
        assert!(Body::UpdateData { update: upd(), rule: "r".into(), firings: vec![], hops: 1 }
            .parks_behind_barrier());
        assert!(Body::LinkClosed { update: upd(), rule: "r".into(), data_msgs: 0 }
            .parks_behind_barrier());
        assert!(Body::DemandLink { update: upd(), rule: "r".into() }.parks_behind_barrier());
        // The handshake itself parks: abandoning a Rejoin toward a
        // still-dead peer strands the handshake forever (window (b)).
        assert!(Body::Rejoin { epoch: 1 }.parks_behind_barrier());
        assert!(Body::RejoinAck { epoch: 1 }.parks_behind_barrier());
        assert!(Body::RejoinRepair { rule: "r".into(), firings: vec![] }.parks_behind_barrier());
        // Bookkeeping keeps the abandonment semantics.
        assert!(!Body::DsAck { update: upd(), credits: 1 }.parks_behind_barrier());
        assert!(!Body::UpdateComplete { update: upd() }.parks_behind_barrier());
        assert!(!Body::Ack { seq: 0 }.parks_behind_barrier());
        assert!(!Body::StatsRequest.parks_behind_barrier());
        let req = crate::ids::ReqId { node: NodeId(1), epoch: 0, seq: 0 };
        assert!(!Body::QueryAnswer { req, firings: vec![], closed: true }.parks_behind_barrier());
    }

    #[test]
    fn update_id_extraction() {
        assert_eq!(Body::UpdateComplete { update: upd() }.update_id(), Some(upd()));
        assert_eq!(Body::StatsRequest.update_id(), None);
    }

    #[test]
    fn sizes_scale_with_firings() {
        let small = Body::UpdateData { update: upd(), rule: "r".into(), firings: vec![], hops: 1 };
        let firing = codb_relational::RuleFiring {
            atoms: vec![(
                "t".into(),
                vec![codb_relational::TField::Const(codb_relational::Value::Int(1))],
            )],
        };
        let big =
            Body::UpdateData { update: upd(), rule: "r".into(), firings: vec![firing], hops: 1 };
        assert!(big.size_bytes() > small.size_bytes());
        assert!(Envelope::control(Body::StatsRequest).size_bytes() >= 16);
    }

    #[test]
    fn kinds_are_distinct_for_update_protocol() {
        let kinds = [
            Body::UpdateRequest { update: upd() }.kind(),
            Body::UpdateData { update: upd(), rule: "r".into(), firings: vec![], hops: 0 }.kind(),
            Body::LinkClosed { update: upd(), rule: "r".into(), data_msgs: 0 }.kind(),
            Body::DsAck { update: upd(), credits: 1 }.kind(),
            Body::UpdateComplete { update: upd() }.kind(),
        ];
        let set: std::collections::BTreeSet<_> = kinds.into_iter().collect();
        assert_eq!(set.len(), 5);
    }
}
